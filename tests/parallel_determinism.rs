//! The parallel batch engine's determinism contract, checked end to end:
//! `ParallelSampler::sample_batch(n, seed)` must reproduce the serial
//! `WitnessSampler::sample_batch` witness sequence bit for bit at every
//! worker count, and the witnesses flowing through the parallel path must
//! stay (almost) uniform.

use std::collections::HashMap;

use proptest::prelude::*;

use unigen::{
    ParallelSampler, PreparedMode, SampleOutcome, SampleRequest, SampleStats, SamplerService,
    ServiceConfig, UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler,
};
use unigen_cnf::{CnfFormula, Var, XorClause};

/// A formula with `2^bits` witnesses over a `bits`-variable sampling set plus
/// `extra` dependent (Tseitin-style) variables.
fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
    let mut f = CnfFormula::new(bits + extra);
    for i in 0..extra {
        f.add_xor_clause(XorClause::new(
            [Var::new(i % bits), Var::new(bits + i)],
            false,
        ))
        .unwrap();
    }
    f.set_sampling_set((0..bits).map(Var::new)).unwrap();
    f
}

/// Projects a batch down to the part the contract speaks about: the witness
/// value vectors, in batch order.
fn witness_sequence(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
    outcomes
        .iter()
        .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random formula shapes, batch sizes and master seeds, worker
    /// counts 1, 2 and 8 all reproduce the serial witness sequence exactly —
    /// the identity holds in both prepared modes (enumerated and hashed).
    #[test]
    fn parallel_batches_equal_serial_batches(
        bits in 3usize..8,
        extra in 0usize..4,
        count in 1usize..10,
        master_seed in 0u64..1_000_000,
    ) {
        let f = formula_with_count(bits, extra);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(count, master_seed);
        for jobs in [1usize, 2, 8] {
            let pool = ParallelSampler::new(prepared.clone()).with_jobs(jobs);
            let batch = pool.sample_batch(count, master_seed);
            prop_assert_eq!(
                witness_sequence(&batch),
                witness_sequence(&serial),
                "jobs = {} diverged from the serial reference",
                jobs
            );
        }
    }

    /// The contract is not UniGen-specific: UniWit's per-sample width search
    /// rides the same per-index streams and canonical cell ordering.
    #[test]
    fn uniwit_parallel_batches_equal_serial_batches(
        bits in 4usize..9,
        count in 1usize..8,
        master_seed in 0u64..1_000_000,
    ) {
        let mut f = CnfFormula::new(bits);
        f.add_clause([Var::new(0).positive(), Var::new(1).positive()]).unwrap();
        let prepared = UniWit::new(&f, UniWitConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(count, master_seed);
        for jobs in [2usize, 8] {
            let pool = ParallelSampler::new(prepared.clone()).with_jobs(jobs);
            prop_assert_eq!(
                witness_sequence(&pool.sample_batch(count, master_seed)),
                witness_sequence(&serial)
            );
        }
    }

    /// The service path honours the same contract under *concurrent
    /// interleaved* requests: two requests with distinct master seeds and
    /// different counts, submitted before either is collected, each
    /// reproduce their own `sample_batch` reference bit for bit — at 1, 2
    /// and 8 workers, through the work-stealing deque scheduler, on one
    /// persistent pool per worker count. The response's aggregate statistics
    /// must equal folding the outcomes with `SampleStats::accumulate`.
    #[test]
    fn service_requests_reproduce_sample_batch(
        bits in 3usize..8,
        extra in 0usize..4,
        count in 1usize..10,
        master_seed in 0u64..1_000_000,
        seed_gap in 1u64..1_000,
    ) {
        let f = formula_with_count(bits, extra);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let seed_b = master_seed.wrapping_add(seed_gap);
        let serial_a = prepared.clone().sample_batch(count, master_seed);
        let serial_b = prepared.clone().sample_batch(count + 2, seed_b);
        for workers in [1usize, 2, 8] {
            let service = SamplerService::new(
                prepared.clone(),
                ServiceConfig::default().with_workers(workers).with_queue_capacity(4),
            );
            // Interleave: both requests live in the pool at once.
            let handle_a = service.submit(SampleRequest::new(count, master_seed));
            let handle_b = service.submit(SampleRequest::new(count + 2, seed_b));
            let response_b = handle_b.wait();
            let response_a = handle_a.wait();
            prop_assert_eq!(
                witness_sequence(&response_a.outcomes),
                witness_sequence(&serial_a),
                "request A diverged at {} workers",
                workers
            );
            prop_assert_eq!(
                witness_sequence(&response_b.outcomes),
                witness_sequence(&serial_b),
                "request B diverged at {} workers",
                workers
            );
            let mut folded = SampleStats::default();
            for outcome in &response_a.outcomes {
                folded.accumulate(&outcome.stats);
            }
            prop_assert_eq!(response_a.aggregate_stats, folded);
        }
    }

    /// Streaming changes *when* outcomes are seen, never *what* they are: a
    /// consumer that takes the first k outcomes off the iterator has
    /// consumed exactly a prefix of the deterministic reference sequence.
    #[test]
    fn streamed_prefixes_are_prefixes_of_the_reference(
        bits in 3usize..7,
        count in 2usize..9,
        master_seed in 0u64..1_000_000,
    ) {
        let f = formula_with_count(bits, 1);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(count, master_seed);
        let service = SamplerService::new(
            prepared,
            ServiceConfig::default().with_workers(3),
        );
        let prefix_len = count / 2;
        let mut handle = service.submit(SampleRequest::new(count, master_seed));
        let prefix: Vec<SampleOutcome> = handle.by_ref().take(prefix_len).collect();
        prop_assert_eq!(
            witness_sequence(&prefix),
            witness_sequence(&serial[..prefix_len])
        );
        // Collecting the rest afterwards completes the same sequence.
        let response = handle.wait();
        prop_assert_eq!(
            witness_sequence(&response.outcomes),
            witness_sequence(&serial)
        );
    }
}

/// Witnesses produced through the parallel path stay almost uniform: a
/// chi-square smoke test over a hashed-mode formula (2^6 = 64 witnesses,
/// just above hiThresh = 62 for ε = 6, so every sample runs the real
/// hash-and-enumerate pipeline on a worker solver).
#[test]
fn parallel_path_is_almost_uniform_chi_square() {
    let f = formula_with_count(6, 2);
    let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
    assert!(
        matches!(prepared.prepared_mode(), PreparedMode::Hashed { .. }),
        "the smoke test must exercise the hashed pipeline"
    );
    let sampling = f.sampling_set().unwrap().to_vec();

    let pool = ParallelSampler::new(prepared).with_jobs(8);
    let batch = pool.sample_batch(1200, 0x5eed);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut successes = 0u64;
    for outcome in &batch {
        if let Some(witness) = &outcome.witness {
            assert!(f.evaluate(witness), "non-witness escaped the pipeline");
            *counts
                .entry(witness.project(&sampling).as_index())
                .or_insert(0) += 1;
            successes += 1;
        }
    }
    // Theorem 1: success probability ≥ 0.62; empirically close to 1.
    assert!(
        successes >= 700,
        "only {successes}/1200 parallel samples succeeded"
    );
    assert_eq!(counts.len(), 64, "not every witness was reachable");

    // Chi-square statistic against the uniform distribution over 64 cells.
    // 63 degrees of freedom put the 99.9th percentile near 104; UniGen is
    // (1+ε)-almost-uniform rather than exactly uniform, so allow a further
    // cushion — far below the statistic of a genuinely skewed sampler, and
    // deterministic anyway because every seed above is fixed.
    let expected = successes as f64 / 64.0;
    let chi2: f64 = counts
        .values()
        .map(|&observed| {
            let d = observed as f64 - expected;
            d * d / expected
        })
        .sum();
    eprintln!("chi-square statistic: {chi2:.1} over 63 degrees of freedom");
    assert!(
        chi2 < 160.0,
        "chi-square statistic {chi2:.1} is far from uniform"
    );
}

/// The partitioning edge cases: empty batches, more workers than samples,
/// and a worker count of zero all behave.
#[test]
fn parallel_batch_edge_cases() {
    let f = formula_with_count(4, 1);
    let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
    let pool = ParallelSampler::new(prepared.clone());
    assert!(pool.sample_batch(0, 3).is_empty());

    let pool = ParallelSampler::new(prepared.clone()).with_jobs(0);
    assert_eq!(pool.jobs(), 1);

    let pool = ParallelSampler::new(prepared.clone()).with_jobs(64);
    let batch = pool.sample_batch(3, 9);
    assert_eq!(batch.len(), 3);
    assert_eq!(
        witness_sequence(&batch),
        witness_sequence(&prepared.clone().sample_batch(3, 9))
    );
}
