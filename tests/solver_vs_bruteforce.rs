//! Cross-validation of the SAT solver and the bounded enumerator against
//! brute-force evaluation on random CNF+XOR formulas.

use proptest::prelude::*;

use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
use unigen_satsolver::{bounded_solutions, Budget, SolveResult, Solver};

/// Strategy producing small random formulas with both clause kinds.
fn small_formula() -> impl Strategy<Value = CnfFormula> {
    let num_vars = 3usize..9;
    num_vars.prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 1..4);
        let clauses = proptest::collection::vec(clause, 0..12);
        let xor = (proptest::collection::vec(0..n, 1..4), proptest::bool::ANY);
        let xors = proptest::collection::vec(xor, 0..4);
        (Just(n), clauses, xors).prop_map(|(n, clauses, xors)| {
            let mut f = CnfFormula::new(n);
            for clause in clauses {
                let lits: Vec<Lit> = clause
                    .into_iter()
                    .map(|(v, sign)| Var::new(v).lit(sign))
                    .collect();
                f.add_clause(lits).unwrap();
            }
            for (vars, rhs) in xors {
                let vars: Vec<Var> = vars.into_iter().map(Var::new).collect();
                f.add_xor_clause(XorClause::new(vars, rhs)).unwrap();
            }
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solver's SAT/UNSAT verdict agrees with brute force, and any model
    /// it returns really satisfies the formula.
    #[test]
    fn solver_verdict_matches_brute_force(formula in small_formula()) {
        let brute = formula.enumerate_models_brute_force();
        let mut solver = Solver::from_formula(&formula);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(formula.evaluate(&model));
                prop_assert!(!brute.is_empty());
            }
            SolveResult::Unsat => prop_assert!(brute.is_empty()),
            SolveResult::Unknown | SolveResult::Interrupted(_) => {
                prop_assert!(false, "unlimited budget must not time out")
            }
        }
    }

    /// Bounded enumeration over the full support finds exactly the
    /// brute-force model count.
    #[test]
    fn enumeration_counts_match_brute_force(formula in small_formula()) {
        let brute = formula.enumerate_models_brute_force();
        let all_vars: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();
        let outcome = bounded_solutions(
            &mut Solver::from_formula(&formula),
            &all_vars,
            brute.len() + 5,
            &Budget::new(),
        );
        prop_assert_eq!(outcome.len(), brute.len());
        prop_assert!(outcome.is_exhaustive());
        for witness in &outcome.witnesses {
            prop_assert!(formula.evaluate(witness));
        }
    }

    /// Enumeration projected on a subset of the variables finds exactly the
    /// number of distinct projections of the brute-force models.
    #[test]
    fn projected_enumeration_matches_brute_force(formula in small_formula(), split in 1usize..4) {
        let k = split.min(formula.num_vars() - 1).max(1);
        let sampling: Vec<Var> = (0..k).map(Var::new).collect();
        let brute = formula.enumerate_models_brute_force();
        let distinct: std::collections::HashSet<_> =
            brute.iter().map(|m| m.project(&sampling)).collect();
        let outcome = bounded_solutions(
            &mut Solver::from_formula(&formula),
            &sampling,
            brute.len() + 5,
            &Budget::new(),
        );
        prop_assert_eq!(outcome.len(), distinct.len());
    }
}

#[test]
fn solver_handles_xor_heavy_formula() {
    // A dense xor system with a unique solution: x_i ⊕ x_{i+1} = 1 plus x_1 = 1.
    let n = 24;
    let mut f = CnfFormula::new(n);
    f.add_xor_clause(XorClause::new([Var::new(0)], true))
        .unwrap();
    for i in 0..n - 1 {
        f.add_xor_clause(XorClause::new([Var::new(i), Var::new(i + 1)], true))
            .unwrap();
    }
    let mut solver = Solver::from_formula(&f);
    let model = solver.solve().model().cloned().expect("satisfiable");
    for i in 0..n {
        assert_eq!(model.value(Var::new(i)), i % 2 == 0);
    }
}

#[test]
fn solver_agrees_with_itself_across_seeds() {
    // Different decision orders must not change the verdict.
    use unigen_satsolver::SolverConfig;
    let mut f = CnfFormula::new(12);
    for i in 0..11 {
        f.add_clause([
            Lit::new(Var::new(i), i % 2 == 0),
            Lit::new(Var::new(i + 1), i % 3 == 0),
        ])
        .unwrap();
    }
    f.add_xor_clause(XorClause::new((0..12).map(Var::new), true))
        .unwrap();
    let verdicts: Vec<bool> = (0..5)
        .map(|seed| {
            let config = SolverConfig {
                seed,
                ..SolverConfig::default()
            };
            Solver::from_formula_with_config(&f, config)
                .solve()
                .is_sat()
        })
        .collect();
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
}
