//! Statistical check of Theorem 1: the probability of generating each
//! witness lies within the `(1 + ε)` envelope of uniform, and the success
//! probability is at least 0.62.
//!
//! The check is necessarily statistical (the theorem bounds probabilities),
//! so the assertions use generous slack and fixed seeds; a genuinely broken
//! sampler (for example one that ignores the hash and always returns the
//! solver's first model) fails them by a wide margin.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::stats::WitnessFrequencies;
use unigen::{PreparedMode, UniGen, UniGenConfig, UniformSampler, WitnessSampler};
use unigen_cnf::{CnfFormula, Var, XorClause};

/// A formula with exactly `2^bits` witnesses over its sampling set, plus
/// `extra` dependent (Tseitin-like) variables.
fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
    let mut f = CnfFormula::new(bits + extra);
    for i in 0..extra {
        f.add_xor_clause(XorClause::new(
            [
                Var::new(i % bits),
                Var::new((i + 1) % bits),
                Var::new(bits + i),
            ],
            false,
        ))
        .unwrap();
    }
    f.set_sampling_set((0..bits).map(Var::new)).unwrap();
    f
}

#[test]
fn success_probability_exceeds_the_guarantee() {
    // 2^9 witnesses forces the hashed code path.
    let f = formula_with_count(9, 3);
    let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
    assert!(matches!(
        sampler.prepared_mode(),
        PreparedMode::Hashed { .. }
    ));
    let mut rng = StdRng::seed_from_u64(100);
    let attempts = 60;
    let successes = (0..attempts)
        .filter(|_| sampler.sample(&mut rng).is_success())
        .count();
    let observed = successes as f64 / attempts as f64;
    // Theorem 1 guarantees ≥ 0.62; the paper observes ≈ 1.0. Allow noise.
    assert!(
        observed >= 0.62,
        "observed success probability {observed} below the theoretical bound"
    );
}

#[test]
fn per_witness_frequencies_respect_the_envelope() {
    // Small enough to visit every witness many times, large enough to use
    // hashing: 2^7 = 128 witnesses, ~40 samples each on average.
    let f = formula_with_count(7, 2);
    let sampling = f.sampling_set().unwrap().to_vec();
    let us = UniformSampler::new(&f).unwrap();
    let witness_count = us.count();
    assert_eq!(witness_count, 128);

    let epsilon = 6.0;
    let config = UniGenConfig::default().with_epsilon(epsilon);
    let mut sampler = UniGen::new(&f, config).unwrap();
    let mut rng = StdRng::seed_from_u64(2024);
    let samples = 5_000usize;
    let mut freq = WitnessFrequencies::new();
    for _ in 0..samples {
        if let Some(w) = sampler.sample(&mut rng).witness {
            freq.record(w.project(&sampling).as_index());
        }
    }
    let n = freq.num_samples() as f64;
    assert!(n > 0.8 * samples as f64, "too many failures: {n} successes");

    // Theorem 1: 1/((1+ε)(|R_F|−1)) ≤ Pr[witness] ≤ (1+ε)/(|R_F|−1).
    // Empirically we check the per-witness frequency against the envelope
    // with a ±50% statistical cushion (each witness expects ≈ n/128 ≈ 39
    // hits, so sampling noise alone stays far inside the 7× envelope).
    let lo = n / ((1.0 + epsilon) * (witness_count as f64 - 1.0)) * 0.5;
    let hi = n * (1.0 + epsilon) / (witness_count as f64 - 1.0) * 1.5;
    assert_eq!(
        freq.num_distinct() as u128,
        witness_count,
        "every witness should be observed at least once at this sample size"
    );
    for id in 0..witness_count as u64 {
        let count = freq.count(id) as f64;
        assert!(
            count >= lo && count <= hi,
            "witness {id} observed {count} times, outside [{lo:.1}, {hi:.1}]"
        );
    }

    // And the overall distribution should be close to uniform in total
    // variation — far closer than the worst case the theorem allows.
    let tv = freq.total_variation_from_uniform(witness_count);
    assert!(tv < 0.25, "total variation {tv} unexpectedly large");
}

#[test]
fn unigen_and_ideal_sampler_are_statistically_close() {
    // The Figure 1 claim in miniature: the count-of-counts histograms of
    // UniGen and US overlap heavily.
    let f = formula_with_count(6, 2);
    let sampling = f.sampling_set().unwrap().to_vec();
    let us = UniformSampler::new(&f).unwrap();
    let witness_count = us.count();

    let mut unigen = UniGen::new(&f, UniGenConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let samples = 3_000usize;

    let mut unigen_freq = WitnessFrequencies::new();
    for _ in 0..samples {
        if let Some(w) = unigen.sample(&mut rng).witness {
            unigen_freq.record(w.project(&sampling).as_index());
        }
    }
    let mut us_freq = WitnessFrequencies::new();
    for _ in 0..samples {
        us_freq.record(us.sample_index(&mut rng) as u64);
    }

    let tv_unigen = unigen_freq.total_variation_from_uniform(witness_count);
    let tv_us = us_freq.total_variation_from_uniform(witness_count);
    // Both are "close to uniform"; UniGen may be somewhat farther but must be
    // in the same regime (a broken sampler lands near 0.9).
    assert!(tv_us < 0.2, "ideal sampler TV {tv_us}");
    assert!(tv_unigen < 0.35, "UniGen TV {tv_unigen}");
}
