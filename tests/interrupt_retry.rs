//! Property: interrupting a hash-cell enumeration and retrying it on the
//! **same** persistent solver converges to exactly the witness set an
//! uninterrupted enumeration finds — across the adversarial `instgen`
//! families, XOR layer widths 1–3, and both Gauss-engine modes.
//!
//! The retry loop starts with a 1-step budget (guaranteed to interrupt on
//! any non-trivial cell) and doubles it until the call completes, so every
//! case exercises the interrupt → consistent-solver → retry path several
//! times before the final, authoritative call. The solver's activation-guard
//! counters must balance afterwards: an interrupted `enumerate_cell` may not
//! leak its cell guard.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen_hashing::XorHashFamily;
use unigen_instgen::strategy::{scale_free, sgen_sat, Instance};
use unigen_instgen::{InstanceGenerator, ScaleFreeConfig};
use unigen_satsolver::{enumerate_cell, Budget, GaussMode, Solver, SolverConfig};

const BOUND: usize = 64;

fn solver_for(formula: &unigen_cnf::CnfFormula, gauss: GaussMode) -> Solver {
    Solver::from_formula_with_config(
        formula,
        SolverConfig {
            gauss,
            ..SolverConfig::default()
        },
    )
}

/// Projects an enumeration outcome to the comparable facts: the distinct
/// witness set on the sampling set plus the exhaustive verdict.
fn digest(
    outcome: &unigen_satsolver::EnumerationOutcome,
    sampling_set: &[unigen_cnf::Var],
) -> (BTreeSet<Vec<bool>>, bool) {
    let set = outcome
        .witnesses
        .iter()
        .map(|w| {
            sampling_set
                .iter()
                .map(|v| w.values()[v.index()])
                .collect::<Vec<bool>>()
        })
        .collect();
    (set, outcome.is_exhaustive())
}

/// Drives one (formula, width, gauss) case and returns an error description
/// on the first violated invariant.
fn check_case(
    formula: &unigen_cnf::CnfFormula,
    width: usize,
    gauss: GaussMode,
    seed: u64,
) -> Result<(), String> {
    let sampling_set = formula.sampling_set_or_all();
    let width = width.min(sampling_set.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let xors = XorHashFamily::new(sampling_set.clone())
        .sample(width, &mut rng)
        .to_xor_clauses();

    // The uninterrupted reference, from a pristine solver.
    let mut reference_solver = solver_for(formula, gauss);
    let reference = enumerate_cell(
        &mut reference_solver,
        &sampling_set,
        &xors,
        BOUND,
        &Budget::new(),
    );
    if reference.interrupted.is_some() {
        return Err("unlimited budget must not interrupt".to_string());
    }

    // The interrupt-retry lane: same cell, same solver, budget doubling
    // from 1 step until the call runs to completion.
    let mut retried_solver = solver_for(formula, gauss);
    let mut step_limit = 1u64;
    let mut interruptions = 0usize;
    let final_outcome = loop {
        let outcome = enumerate_cell(
            &mut retried_solver,
            &sampling_set,
            &xors,
            BOUND,
            &Budget::new().with_step_limit(step_limit),
        );
        if outcome.interrupted.is_none() {
            break outcome;
        }
        interruptions += 1;
        if interruptions > 60 {
            return Err(format!(
                "cell still interrupted after {interruptions} doublings \
                 (step limit {step_limit})"
            ));
        }
        step_limit *= 2;
    };

    // The comparison follows the workspace determinism contract: an
    // exhaustive cell's witness set is solver-state independent, so it must
    // match exactly; a bound-reached cell legally returns any bound-sized
    // subset in search order, so only the count and verdict are comparable.
    let (final_set, final_exhaustive) = digest(&final_outcome, &sampling_set);
    let (reference_set, reference_exhaustive) = digest(&reference, &sampling_set);
    let agree = final_exhaustive == reference_exhaustive
        && final_set.len() == reference_set.len()
        && (!reference_exhaustive || final_set == reference_set);
    if !agree {
        return Err(format!(
            "after {interruptions} interruptions the retried enumeration \
             found {} witnesses (exhaustive: {}) but the uninterrupted \
             reference found {} (exhaustive: {})",
            final_outcome.len(),
            final_outcome.is_exhaustive(),
            reference.len(),
            reference.is_exhaustive(),
        ));
    }
    let stats = retried_solver.stats();
    if stats.guards_created != stats.guards_retired {
        return Err(format!(
            "interrupted enumerations leaked guards: {} created, {} retired",
            stats.guards_created, stats.guards_retired
        ));
    }
    Ok(())
}

fn instances() -> impl Strategy<Value = Instance<ScaleFreeConfig>> {
    scale_free(6usize..12, 1.5f64..3.5, 0u32..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Widths 1–3, Gauss on and off, over scale-free instances.
    #[test]
    fn interrupted_enumeration_retries_to_the_uninterrupted_witness_set(
        instance in instances(),
        width in 1usize..4,
        seed in 0u64..1 << 32,
    ) {
        for gauss in [GaussMode::On, GaussMode::Off] {
            if let Err(divergence) =
                check_case(&instance.formula, width, gauss, seed)
            {
                prop_assert!(
                    false,
                    "{} seed {:#x} width {} gauss {:?}: {}",
                    instance.config.name(),
                    instance.seed,
                    width,
                    gauss,
                    divergence
                );
            }
        }
    }

    /// The sgen-sat family drives the same property through block-structured
    /// counting constraints (a very different propagation profile).
    #[test]
    fn interrupt_retry_holds_on_sgen_blocks(
        instance in sgen_sat(1usize..3),
        width in 1usize..4,
        seed in 0u64..1 << 32,
    ) {
        for gauss in [GaussMode::On, GaussMode::Off] {
            if let Err(divergence) =
                check_case(&instance.formula, width, gauss, seed)
            {
                prop_assert!(
                    false,
                    "{} seed {:#x} width {} gauss {:?}: {}",
                    instance.config.name(),
                    instance.seed,
                    width,
                    gauss,
                    divergence
                );
            }
        }
    }
}
