//! Equivalence of the incremental guard-scoped solver against a fresh
//! scratch solver: for random base formulas and random sequences of XOR hash
//! layers, solving/enumerating each layer on one persistent solver (via
//! guards and assumptions) must agree exactly with building a throwaway
//! solver per layer — the property the samplers' correctness rests on.

use std::collections::HashSet;

use proptest::prelude::*;

use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
use unigen_satsolver::{
    bounded_solutions, enumerate_cell, Budget, GaussMode, SolveResult, Solver, SolverConfig,
};

/// Strategy producing small random formulas with both clause kinds.
fn small_formula() -> impl Strategy<Value = CnfFormula> {
    let num_vars = 3usize..8;
    num_vars.prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 1..4);
        let clauses = proptest::collection::vec(clause, 0..10);
        (Just(n), clauses).prop_map(|(n, clauses)| {
            let mut f = CnfFormula::new(n);
            for clause in clauses {
                let lits: Vec<Lit> = clause
                    .into_iter()
                    .map(|(v, sign)| Var::new(v).lit(sign))
                    .collect();
                f.add_clause(lits).unwrap();
            }
            f
        })
    })
}

/// Strategy producing a sequence of random XOR hash layers over `n` vars.
fn hash_layers(n: usize) -> impl Strategy<Value = Vec<Vec<XorClause>>> {
    let xor = (proptest::collection::vec(0..n, 1..4), proptest::bool::ANY);
    let layer = proptest::collection::vec(xor, 1..4);
    proptest::collection::vec(layer, 1..5).prop_map(|layers| {
        layers
            .into_iter()
            .map(|layer| {
                layer
                    .into_iter()
                    .map(|(vars, rhs)| {
                        XorClause::new(vars.into_iter().map(Var::new).collect::<Vec<_>>(), rhs)
                    })
                    .collect()
            })
            .collect()
    })
}

/// Formula together with a layer sequence.
fn formula_with_layers() -> impl Strategy<Value = (CnfFormula, Vec<Vec<XorClause>>)> {
    small_formula().prop_flat_map(|f| {
        let n = f.num_vars();
        (Just(f), hash_layers(n))
    })
}

fn projections(models: &[unigen_cnf::Model], vars: &[Var]) -> HashSet<Vec<bool>> {
    models
        .iter()
        .map(|m| vars.iter().map(|&v| m.value(v)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `enumerate_cell` on one persistent solver yields, for every layer of
    /// a random sequence, exactly the model set a scratch solver finds for
    /// the conjoined formula — and the persistent solver is unharmed by all
    /// the layers that came before.
    #[test]
    fn guarded_cells_match_scratch_enumeration(
        (formula, layers) in formula_with_layers()
    ) {
        let all_vars: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();
        let budget = Budget::new();
        let mut persistent = Solver::from_formula(&formula);
        for layer in &layers {
            let cell = enumerate_cell(&mut persistent, &all_vars, layer, 1 << 12, &budget);
            prop_assert!(cell.is_exhaustive());

            let mut hashed = formula.clone();
            for xor in layer {
                hashed.add_xor_clause(xor.clone()).unwrap();
            }
            let mut scratch = Solver::from_formula(&hashed);
            let reference = bounded_solutions(&mut scratch, &all_vars, 1 << 12, &budget);
            prop_assert!(reference.is_exhaustive());

            prop_assert_eq!(
                projections(&cell.witnesses, &all_vars),
                projections(&reference.witnesses, &all_vars)
            );
            for w in &cell.witnesses {
                prop_assert!(hashed.evaluate(w));
            }
        }
        // After every guard has been retired the base formula's model set is
        // fully intact.
        let base = enumerate_cell(&mut persistent, &all_vars, &[], 1 << 12, &budget);
        let brute = formula.enumerate_models_brute_force();
        prop_assert_eq!(base.len(), brute.len());
    }

    /// Gauss–Jordan-on and Gauss–Jordan-off enumeration produce identical
    /// witness sets for every cell of a random layer sequence — including
    /// degenerate rows (duplicate variables cancel to empty/unit rows) and
    /// guard retire/re-add cycles over the same variables (`enumerate_cell`
    /// cycles one guard per layer) — and both agree with a scratch solver
    /// on the conjoined formula.
    #[test]
    fn gauss_on_and_off_enumerate_identical_cells(
        (formula, layers) in formula_with_layers()
    ) {
        let all_vars: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();
        let budget = Budget::new();
        let on = SolverConfig {
            gauss: GaussMode::On,
            gauss_auto_threshold: 1,
            ..SolverConfig::default()
        };
        let off = SolverConfig {
            gauss: GaussMode::Off,
            ..SolverConfig::default()
        };
        let mut gauss_solver = Solver::from_formula_with_config(&formula, on);
        let mut watched_solver = Solver::from_formula_with_config(&formula, off);
        for layer in &layers {
            let gauss_cell =
                enumerate_cell(&mut gauss_solver, &all_vars, layer, 1 << 12, &budget);
            let watched_cell =
                enumerate_cell(&mut watched_solver, &all_vars, layer, 1 << 12, &budget);
            prop_assert!(gauss_cell.is_exhaustive());
            prop_assert!(watched_cell.is_exhaustive());
            prop_assert_eq!(
                projections(&gauss_cell.witnesses, &all_vars),
                projections(&watched_cell.witnesses, &all_vars)
            );

            let mut hashed = formula.clone();
            let mut layer_unsat = false;
            for xor in layer {
                layer_unsat |= xor.is_trivially_false();
                hashed.add_xor_clause(xor.clone()).unwrap();
            }
            let reference = if layer_unsat {
                HashSet::new()
            } else {
                let mut scratch = Solver::from_formula(&hashed);
                let outcome = bounded_solutions(&mut scratch, &all_vars, 1 << 12, &budget);
                prop_assert!(outcome.is_exhaustive());
                projections(&outcome.witnesses, &all_vars)
            };
            prop_assert_eq!(projections(&gauss_cell.witnesses, &all_vars), reference);
            for w in &gauss_cell.witnesses {
                prop_assert!(hashed.evaluate(w));
            }
        }
        // Both persistent solvers end the run unharmed.
        let brute = formula.enumerate_models_brute_force().len();
        for solver in [&mut gauss_solver, &mut watched_solver] {
            let base = enumerate_cell(solver, &all_vars, &[], 1 << 12, &budget);
            prop_assert_eq!(base.len(), brute);
        }
    }

    /// Solving under assumptions agrees with a scratch solver that has the
    /// assumptions added as unit clauses, and never poisons the solver.
    #[test]
    fn assumptions_match_scratch_units(
        formula in small_formula(),
        pattern in proptest::collection::vec((0usize..8, proptest::bool::ANY), 1..4)
    ) {
        let assumptions: Vec<Lit> = {
            let mut seen = HashSet::new();
            pattern
                .into_iter()
                .map(|(v, sign)| Var::new(v % formula.num_vars()).lit(sign))
                .filter(|l| seen.insert(l.var()))
                .collect()
        };
        let mut incremental = Solver::from_formula(&formula);
        let result = incremental.solve_under_assumptions(&assumptions);

        let mut with_units = formula.clone();
        for &a in &assumptions {
            with_units.add_clause([a]).unwrap();
        }
        let mut scratch = Solver::from_formula(&with_units);
        let reference = scratch.solve();

        match (&result, &reference) {
            (SolveResult::Sat(model), SolveResult::Sat(_)) => {
                prop_assert!(with_units.evaluate(model));
                for &a in &assumptions {
                    prop_assert!(model.lit_value(a));
                }
            }
            (SolveResult::Unsat, SolveResult::Unsat) => {}
            other => prop_assert!(false, "verdicts diverge: {other:?}"),
        }
        // Unsat-under-assumptions must not poison the incremental solver:
        // it still agrees with brute force on the bare formula.
        let brute_sat = !formula.enumerate_models_brute_force().is_empty();
        prop_assert_eq!(incremental.solve().is_sat(), brute_sat);
    }
}
