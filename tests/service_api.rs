//! End-to-end coverage of the service-oriented sampling API: the unified
//! [`SamplerBuilder`], typed request/response messages, streaming handles,
//! bounded queueing with backpressure, and — for **every** sampler family —
//! the bit-identical-to-`sample_batch` determinism contract at 1, 2 and 8
//! workers.

use proptest::prelude::*;

use rand::RngCore;

use unigen::{
    AnySampler, BuildError, SampleOutcome, SampleRequest, SampleStats, SamplerBuilder,
    SamplerService, ServiceConfig, TrySubmitError, WitnessSampler,
};
use unigen_cnf::{CnfFormula, Var, XorClause};

/// A formula with `2^bits` witnesses over a `bits`-variable sampling set plus
/// `extra` dependent (Tseitin-style) variables.
fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
    let mut f = CnfFormula::new(bits + extra);
    for i in 0..extra {
        f.add_xor_clause(XorClause::new(
            [Var::new(i % bits), Var::new(bits + i)],
            false,
        ))
        .unwrap();
    }
    f.set_sampling_set((0..bits).map(Var::new)).unwrap();
    f
}

fn witness_sequence(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
    outcomes
        .iter()
        .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
        .collect()
}

/// Builds one prepared sampler of each family over the same formula.
fn all_families(f: &CnfFormula) -> Vec<AnySampler> {
    vec![
        SamplerBuilder::unigen(f).build().unwrap(),
        SamplerBuilder::uniwit(f).build().unwrap(),
        SamplerBuilder::xorsample(f)
            .num_constraints(2)
            .build()
            .unwrap(),
        SamplerBuilder::uniform(f).build().unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance criterion: for every sampler family, the service output is
    /// bit-identical to `WitnessSampler::sample_batch` at 1, 2 and 8
    /// workers.
    #[test]
    fn every_family_is_bit_identical_through_the_service(
        count in 1usize..9,
        master_seed in 0u64..1_000_000,
    ) {
        let f = formula_with_count(6, 2);
        for prepared in all_families(&f) {
            let name = prepared.name();
            let serial = prepared.clone().sample_batch(count, master_seed);
            for workers in [1usize, 2, 8] {
                let service = SamplerService::new(
                    prepared.clone(),
                    ServiceConfig::default().with_workers(workers),
                );
                let response = service.submit(SampleRequest::new(count, master_seed)).wait();
                prop_assert_eq!(
                    witness_sequence(&response.outcomes),
                    witness_sequence(&serial),
                    "{} diverged from its serial reference at {} workers",
                    name,
                    workers
                );
            }
        }
    }
}

/// The builder rejects misapplied options with a typed prepare-time error
/// instead of silently ignoring them.
#[test]
fn builder_rejects_misapplied_options_at_build_time() {
    let f = formula_with_count(4, 0);
    let err = SamplerBuilder::uniwit(&f).epsilon(6.0).build().unwrap_err();
    assert!(matches!(
        err,
        BuildError::UnsupportedOption {
            option: "epsilon",
            sampler: "UniWit"
        }
    ));
    let err = SamplerBuilder::uniform(&f)
        .num_constraints(3)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        BuildError::UnsupportedOption {
            option: "num_constraints",
            sampler: "US"
        }
    ));
}

/// Bounded queueing: `try_submit` rejects with the request handed back once
/// the queue is at capacity, and capacity frees as requests complete. The
/// blocking window is made deterministic with a gated sampler rather than
/// timing.
#[test]
fn bounded_queue_backpressure_round_trip() {
    use conc::sync::{Condvar, Mutex};
    use std::sync::Arc;

    #[derive(Clone)]
    struct Gated {
        gate: Arc<(Mutex<bool>, Condvar)>,
    }
    impl WitnessSampler for Gated {
        fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
            let (lock, condvar) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = condvar.wait(open).unwrap();
            }
            SampleOutcome::bottom(SampleStats::default())
        }
        fn name(&self) -> &'static str {
            "Gated"
        }
    }

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let service = SamplerService::new(
        Gated {
            gate: Arc::clone(&gate),
        },
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(2),
    );
    let first = service.submit(SampleRequest::new(3, 1));
    let second = service.submit(SampleRequest::new(3, 2));
    let rejected = service.try_submit(SampleRequest::new(3, 3));
    match rejected {
        Err(TrySubmitError::QueueFull { request }) => {
            // The rejected request comes back verbatim: the idempotent-retry
            // token for an RPC front end.
            assert_eq!(request, SampleRequest::new(3, 3));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    {
        let (lock, condvar) = &*gate;
        *lock.lock().unwrap() = true;
        condvar.notify_all();
    }
    assert_eq!(first.wait().outcomes.len(), 3);
    assert_eq!(second.wait().outcomes.len(), 3);
    let retried = service.try_submit(SampleRequest::new(3, 3)).unwrap();
    assert_eq!(retried.wait().outcomes.len(), 3);
}

/// Regression (handle lifecycle audit): a `ResponseHandle` dropped
/// mid-stream — while workers are still blocked *executing* that request's
/// items — must not wedge or panic the service. The request's board simply
/// loses its reader; workers keep posting outcomes into it and release the
/// queue slot on completion, so the service stays usable and drains cleanly
/// on drop.
#[test]
fn handle_dropped_mid_stream_leaves_service_usable() {
    use conc::sync::{Condvar, Mutex};
    use std::sync::Arc;

    #[derive(Clone)]
    struct Gated {
        gate: Arc<(Mutex<bool>, Condvar)>,
    }
    impl WitnessSampler for Gated {
        fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
            let (lock, condvar) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = condvar.wait(open).unwrap();
            }
            SampleOutcome::bottom(SampleStats::default())
        }
        fn name(&self) -> &'static str {
            "Gated"
        }
    }

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let service = SamplerService::new(
        Gated {
            gate: Arc::clone(&gate),
        },
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(1),
    );
    let mut abandoned = service.submit(SampleRequest::new(4, 1));
    // The workers are (or will shortly be) parked inside `sample` on the
    // closed gate; the stream has produced nothing yet.
    assert_eq!(abandoned.completed(), 0);
    assert!(abandoned.try_next().is_none());
    drop(abandoned);
    {
        let (lock, condvar) = &*gate;
        *lock.lock().unwrap() = true;
        condvar.notify_all();
    }
    // The orphaned request still completes and frees its queue slot, so a
    // follow-up submission is admitted and answered in full.
    let follow_up = service.submit(SampleRequest::new(3, 2)).wait();
    assert_eq!(follow_up.outcomes.len(), 3);
    service.shutdown();
}

/// `SampleResponse::aggregate_stats` is exactly the `accumulate` fold of the
/// per-outcome statistics, scheduler counters included.
#[test]
fn aggregate_stats_is_the_accumulate_fold() {
    let f = formula_with_count(7, 2);
    let service = SamplerBuilder::unigen(&f)
        .into_service(ServiceConfig::default().with_workers(3))
        .unwrap();
    let response = service.submit(SampleRequest::new(10, 5)).wait();
    let mut folded = SampleStats::default();
    for outcome in &response.outcomes {
        folded.accumulate(&outcome.stats);
    }
    assert_eq!(response.aggregate_stats, folded);
    // Real solver work flowed through the pool and was accounted.
    assert!(response.aggregate_stats.bsat_calls >= 10);
    assert!(response.round_trip.as_nanos() > 0);
}

/// The compatibility wrapper and the service agree: `ParallelSampler` (now a
/// thin wrapper over a single-request service) matches a directly-driven
/// service and the static-chunk ablation scheduler.
#[test]
fn parallel_sampler_wrapper_matches_direct_service_use() {
    use unigen::ParallelSampler;
    let f = formula_with_count(8, 2);
    let prepared = SamplerBuilder::unigen(&f).build().unwrap();
    let pool = ParallelSampler::new(prepared.clone()).with_jobs(4);
    let via_wrapper = pool.sample_batch(12, 0xdac2014);
    let via_static = pool.sample_batch_static_chunks(12, 0xdac2014);
    let service = SamplerService::new(prepared, ServiceConfig::default().with_workers(4));
    let via_service = service.submit(SampleRequest::new(12, 0xdac2014)).wait();
    assert_eq!(
        witness_sequence(&via_wrapper),
        witness_sequence(&via_service.outcomes)
    );
    assert_eq!(
        witness_sequence(&via_static),
        witness_sequence(&via_service.outcomes)
    );
}
