//! The chaos sweep over the adversarial generator corpus: each case draws
//! an instance from one of the `instgen` families (the same rotation as the
//! differential fuzz sweep) and runs
//! [`unigen_instgen::chaos::chaos_case`] — a fault-free reference batch,
//! two serial lanes under bit-identical seeded [`unigen::FaultPlan`]
//! schedules (replay equivalence + balanced solver guards), and a service
//! lane with a scheduled worker panic (respawn + bit-identical batch).
//! Zero divergence is the pass condition, and the sweep as a whole must
//! have actually injected faults — a sweep that never fired a fault proves
//! nothing.
//!
//! The sweep is fully seeded. Knobs (also documented in the README):
//!
//! * `CHAOS_FUZZ_CASES` — number of cases (default 100, CI runs the
//!   default; crank it locally for a deeper soak).
//! * `CHAOS_FUZZ_START` — first case index (default 0). A failure report
//!   prints the case index, instance name and seed; rerunning with
//!   `CHAOS_FUZZ_START=<index> CHAOS_FUZZ_CASES=1` replays exactly the
//!   failing case, and `config.generate(seed)` rebuilds its formula.

use unigen_instgen::chaos::chaos_case;
use unigen_instgen::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

/// SplitMix64: the per-case seed stream (independent of the vendored RNG so
/// case derivation can never drift with shim changes). Identical to the
/// differential fuzz sweep's, so both sweeps cover the same corpus.
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives case `index`: a generator config (rotating over the four
/// families, with shape knobs drawn from the case's seed stream) plus the
/// instance seed and the per-case batch size.
fn case(index: u64) -> (Box<dyn InstanceGenerator>, u64, usize) {
    let s = splitmix64(index);
    let seed = splitmix64(s);
    let count = 2 + (s >> 24) as usize % 3; // 2..=4 samples per lane
    let generator: Box<dyn InstanceGenerator> = match index % 4 {
        0 => {
            let num_vars = 8 + (s % 9) as usize; // 8..=16
            Box::new(ScaleFreeConfig {
                num_vars,
                num_clauses: num_vars * (2 + ((s >> 8) % 3) as usize),
                clause_len: 3,
                exponent_quarters: ((s >> 16) % 7) as u32,
            })
        }
        1 => {
            let csp_vars = 4 + (s % 3) as usize; // 4..=6, ≤ 18 bools
            Box::new(TriangleFreeConfig {
                csp_vars,
                domain: 3,
                edges: csp_vars + ((s >> 8) as usize % csp_vars),
                forbidden_per_edge: 2 + ((s >> 16) % 3) as usize,
            })
        }
        2 => Box::new(SgenConfig {
            blocks: 1 + (s % 2) as usize,
            unsat: true,
        }),
        _ => Box::new(SgenConfig {
            blocks: 1 + (s % 3) as usize,
            unsat: false,
        }),
    };
    (generator, seed, count)
}

fn env_usize(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn chaos_sweep_has_zero_divergence_and_injects_faults() {
    let start = env_usize("CHAOS_FUZZ_START", 0);
    let cases = env_usize("CHAOS_FUZZ_CASES", 100);

    let mut faults = 0u64;
    let mut retries = 0usize;
    let mut degradations = 0usize;
    let mut respawns = 0u64;
    let mut sat_cases = 0usize;
    for index in start..start + cases {
        let (generator, seed, count) = case(index);
        let name = generator.name();
        let formula = generator.generate(seed);

        let report = chaos_case(&name, &formula, seed, count);
        assert!(
            report.divergence.is_none(),
            "case {index}: {name} seed {seed:#x} under schedule `{}` diverged: {}\n\
             reproduce with: CHAOS_FUZZ_START={index} CHAOS_FUZZ_CASES=1 \
             cargo test --test chaos_differential",
            report.schedule,
            report.divergence.as_deref().unwrap_or_default()
        );
        faults += report.faults_injected;
        retries += report.retries;
        degradations += report.degradations;
        respawns += report.service_respawns;
        if report.service_respawns > 0 {
            sat_cases += 1;
        }
    }

    eprintln!(
        "chaos sweep: {cases} cases ({sat_cases} sat), {faults} solver faults \
         injected, {retries} ladder retries, {degradations} degradations, \
         {respawns} worker respawns, zero divergence"
    );
    // A sweep long enough to cover all four families must have genuinely
    // exercised the fault paths: solver-level injections that the ladder
    // absorbed, and a worker panic per satisfiable case that the service
    // absorbed by respawning.
    if cases >= 8 {
        assert!(faults > 0, "sweep never injected a solver-level fault");
        assert!(
            retries + degradations > 0,
            "sweep never observed a ladder recovery"
        );
        assert!(sat_cases > 0, "sweep never reached the service lane");
        assert_eq!(
            respawns, sat_cases as u64,
            "every satisfiable case must absorb exactly one worker panic"
        );
    }
}

/// The case derivation itself is pinned: shuffling it silently re-rolls the
/// whole sweep, so treat it like the golden corpus. The generator rotation
/// and seed stream deliberately match the differential fuzz sweep's.
#[test]
fn case_derivation_is_stable() {
    let (g0, s0, c0) = case(0);
    assert_eq!(g0.name(), "scale-free-n15-m30-k3-b1.00");
    assert_eq!(s0, 0xa706_dd2f_4d19_7e6f);
    assert!((2..=4).contains(&c0));
    let (g2, _, _) = case(2);
    assert_eq!(g2.name(), "sgen-unsat-b1");
}
