//! Uniformity smoke studies across the adversarial generator families:
//! Theorem 1's almost-uniformity claim is measured not just on circuit
//! encodings but on structurally different instances — scale-free random
//! 3-SAT, triangle-free CSP encodings, and satisfiable sgen blocks. Each
//! study is bounded and fully seeded so it runs inside `cargo test -q`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use unigen::stats::WitnessFrequencies;
use unigen::{UniGen, UniGenConfig, UniformSampler, WitnessSampler};
use unigen_cnf::CnfFormula;
use unigen_instgen::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

/// Samples UniGen on `formula` and checks the observed frequencies against
/// the uniform distribution over the exact witness count: success rate,
/// full support coverage, and a chi-square statistic within an
/// almost-uniform envelope (≈ 2.5σ above the degrees of freedom, the same
/// cushion the circuit-family smoke test uses).
fn uniformity_study(name: &str, formula: &CnfFormula, samples: usize) {
    let sampling_set = formula.sampling_set_or_all();
    let witness_count = UniformSampler::new(formula)
        .expect("study instances are satisfiable")
        .count();
    assert!(
        (16..=512).contains(&(witness_count as usize)),
        "{name}: witness count {witness_count} outside the calibrated study range"
    );

    let mut sampler =
        UniGen::new(formula, UniGenConfig::default()).expect("study instances prepare");
    let mut rng = StdRng::seed_from_u64(0x5eed_0000 + samples as u64);
    let mut freq = WitnessFrequencies::new();
    let mut successes = 0usize;
    for _ in 0..samples {
        if let Some(witness) = sampler.sample(&mut rng).witness {
            assert!(formula.evaluate(&witness), "{name}: non-witness sampled");
            freq.record(witness.project(&sampling_set).as_index());
            successes += 1;
        }
    }
    // Theorem 1 guarantees success probability ≥ 0.62; empirically much
    // higher, and deterministic here because every seed is fixed.
    assert!(
        successes * 3 >= samples * 2,
        "{name}: only {successes}/{samples} samples succeeded"
    );
    assert_eq!(
        freq.num_distinct() as u128,
        witness_count,
        "{name}: support not fully covered at this sample size"
    );

    let df = witness_count as f64 - 1.0;
    let chi2 = freq.chi_square_against_uniform(witness_count);
    // For a uniform sampler chi² concentrates at df with variance 2·df; an
    // almost-uniform sampler stays within a few σ. 2.5σ plus a small
    // absolute cushion is far below a genuinely skewed sampler's statistic.
    let limit = df + 2.5 * (2.0 * df).sqrt() + 20.0;
    eprintln!("{name}: chi² {chi2:.1} over {df:.0} degrees of freedom (limit {limit:.1})");
    assert!(chi2 < limit, "{name}: chi² {chi2:.1} exceeds {limit:.1}");
}

#[test]
fn scale_free_family_is_almost_uniform() {
    // 41 witnesses at this config/seed (pinned by the golden corpus test's
    // determinism guarantees).
    let config = ScaleFreeConfig {
        num_vars: 12,
        num_clauses: 36,
        clause_len: 3,
        exponent_quarters: 3,
    };
    uniformity_study(&config.name(), &config.generate(0), 1600);
}

#[test]
fn triangle_free_family_is_almost_uniform() {
    // 48 witnesses: 5 CSP variables over domain 3 with 6 triangle-free
    // constraint edges.
    let config = TriangleFreeConfig {
        csp_vars: 5,
        domain: 3,
        edges: 6,
        forbidden_per_edge: 3,
    };
    uniformity_study(&config.name(), &config.generate(5), 1800);
}

#[test]
fn sgen_sat_family_is_almost_uniform() {
    // 176 witnesses: two satisfiable sgen blocks (the count is a structural
    // constant of the single-pass construction).
    let config = SgenConfig {
        blocks: 2,
        unsat: false,
    };
    uniformity_study(&config.name(), &config.generate(1), 3600);
}
