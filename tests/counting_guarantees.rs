//! Validation of the exact and approximate model counters, including the
//! `(ε, δ)` guarantee ApproxMC must provide for UniGen's Lemma 3 to hold.

use proptest::prelude::*;

use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
use unigen_counting::{ApproxMc, ApproxMcConfig, CountingError, ExactCounter};

fn random_formula() -> impl Strategy<Value = CnfFormula> {
    let num_vars = 4usize..10;
    num_vars.prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 1..4);
        let clauses = proptest::collection::vec(clause, 0..10);
        let xor = (proptest::collection::vec(0..n, 1..5), proptest::bool::ANY);
        let xors = proptest::collection::vec(xor, 0..3);
        (Just(n), clauses, xors).prop_map(|(n, clauses, xors)| {
            let mut f = CnfFormula::new(n);
            for clause in clauses {
                f.add_clause(clause.into_iter().map(|(v, s)| Var::new(v).lit(s)))
                    .unwrap();
            }
            for (vars, rhs) in xors {
                f.add_xor_clause(XorClause::new(vars.into_iter().map(Var::new), rhs))
                    .unwrap();
            }
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The exact counter agrees with brute force on arbitrary small formulas.
    #[test]
    fn exact_counter_matches_brute_force(formula in random_formula()) {
        let expected = formula.enumerate_models_brute_force().len() as u128;
        prop_assert_eq!(ExactCounter::new().count(&formula).unwrap(), expected);
    }

    /// Adding a clause can never increase the model count (monotonicity).
    #[test]
    fn counting_is_monotone_under_clause_addition(
        formula in random_formula(),
        extra in proptest::collection::vec((0usize..4, proptest::bool::ANY), 1..3),
    ) {
        let before = ExactCounter::new().count(&formula).unwrap();
        let mut extended = formula.clone();
        let lits: Vec<Lit> = extra
            .into_iter()
            .map(|(v, s)| Var::new(v.min(extended.num_vars() - 1)).lit(s))
            .collect();
        extended.add_clause(lits).unwrap();
        let after = ExactCounter::new().count(&extended).unwrap();
        prop_assert!(after <= before);
    }
}

#[test]
fn exact_counter_scales_beyond_brute_force() {
    // 40 variables: far outside the 24-variable brute-force range, but easy
    // for component decomposition (20 independent "x ∨ y" components,
    // 3^20 models).
    let mut f = CnfFormula::new(40);
    for i in 0..20 {
        f.add_clause([
            Lit::positive(Var::new(2 * i)),
            Lit::positive(Var::new(2 * i + 1)),
        ])
        .unwrap();
    }
    let count = ExactCounter::new().count(&f).unwrap();
    assert_eq!(count, 3u128.pow(20));
}

#[test]
fn approxmc_estimate_lands_in_the_guarantee_band() {
    // A formula with exactly 2^14 witnesses over the sampling set: the first
    // 14 variables are free, each of the remaining 6 is an xor of two of
    // them.
    let bits = 14usize;
    let extra = 6usize;
    let mut f = CnfFormula::new(bits + extra);
    for i in 0..extra {
        f.add_xor_clause(XorClause::new(
            [
                Var::new(i % bits),
                Var::new((i + 3) % bits),
                Var::new(bits + i),
            ],
            false,
        ))
        .unwrap();
    }
    f.set_sampling_set((0..bits).map(Var::new)).unwrap();

    let truth = 1u128 << bits;
    let config = ApproxMcConfig::default();
    let tolerance_factor = 1.0 + config.tolerance;
    let mut hits = 0;
    let runs = 5;
    for seed in 0..runs {
        let result = ApproxMc::new(config.clone()).count(&f, seed).unwrap();
        let ratio = result.estimate as f64 / truth as f64;
        if ratio >= 1.0 / tolerance_factor && ratio <= tolerance_factor {
            hits += 1;
        }
    }
    // The guarantee is per-run with confidence 0.8; across 5 runs, requiring
    // at least 3 in-band estimates keeps the test robust while still
    // detecting a broken counter.
    assert!(
        hits >= 3,
        "only {hits}/{runs} estimates within the 1.8x band"
    );
}

#[test]
fn approxmc_counts_small_formulas_exactly() {
    let mut f = CnfFormula::new(5);
    f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
        .unwrap();
    f.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(3)])
        .unwrap();
    let expected = f.enumerate_models_brute_force().len() as u128;
    let result = ApproxMc::new(ApproxMcConfig::default())
        .count(&f, 1)
        .unwrap();
    assert_eq!(result.estimate, expected);
}

#[test]
fn exact_counter_rejects_unexpandable_xors() {
    let mut f = CnfFormula::new(30);
    f.add_xor_clause(XorClause::new((0..30).map(Var::new), true))
        .unwrap();
    assert!(matches!(
        ExactCounter::new().count(&f),
        Err(CountingError::XorTooLong { len: 30 })
    ));
}
