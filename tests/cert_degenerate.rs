//! Degenerate-certificate coverage: the edges where proof logging could
//! plausibly emit nothing, emit garbage, or claim too much.
//!
//! * An **empty cell** (the first `BSAT` call is immediately Unsat) must
//!   still produce a complete certificate: zero witnesses backed by a
//!   checked refutation of the cell.
//! * An **unsatisfiable base formula** must yield the same typed
//!   [`SamplerError::Unsatisfiable`] through both preparation entry points
//!   with certification on — the refutation is proof-checked in passing,
//!   never surfaced as a certification failure.
//! * An **interrupted** enumeration must never be certifiable as
//!   exhaustive: the stream checks as far as it goes, and
//!   [`unigen_cert::Report::require_complete`] returns the typed
//!   [`CheckError::CertIncomplete`] — a bogus exhaustion proof is the one
//!   thing the checker exists to make impossible.

use unigen::{cert_formula, SamplerError, UniGen, UniGenConfig};
use unigen_cert::{CheckError, Checker};
use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
use unigen_satsolver::{enumerate_cell, Budget, ProofLog, Solver, SolverConfig};

fn proof_solver(f: &CnfFormula) -> Solver {
    Solver::from_formula_with_config(
        f,
        SolverConfig {
            proof: Some(ProofLog::new()),
            ..SolverConfig::default()
        },
    )
}

#[test]
fn an_empty_cell_certifies_as_zero_witnesses_with_a_refutation() {
    // The formula is satisfiable, but the cell's two xor rows contradict
    // each other (x1 = 1 and x1 = 0): the first solve under the guard is
    // immediately Unsat and the witness list is empty.
    let mut f = CnfFormula::new(2);
    f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
        .unwrap();
    let sampling = f.sampling_set_or_all();
    let mut solver = proof_solver(&f);
    let xors = vec![
        XorClause::new([Var::from_dimacs(1)], true),
        XorClause::new([Var::from_dimacs(1)], false),
    ];
    let outcome = enumerate_cell(&mut solver, &sampling, &xors, 8, &Budget::new());
    assert!(outcome.is_exhaustive());
    assert!(outcome.is_empty());

    let bytes = solver.proof_bytes().expect("proof sink installed").to_vec();
    let report = Checker::check(&cert_formula(&f), &bytes).expect("the empty cell checks");
    report.require_complete().expect("the cell closed properly");
    assert_eq!(report.cells.len(), 1);
    assert!(report.cells[0].exhaustive());
    assert!(report.cells[0].witnesses.is_empty());
}

#[test]
fn unsat_base_formula_is_typed_through_both_prepare_entry_points() {
    let mut f = CnfFormula::new(2);
    f.add_clause([Lit::from_dimacs(1)]).unwrap();
    f.add_clause([Lit::from_dimacs(-1)]).unwrap();

    let config = UniGenConfig::default().with_certify(true);
    match UniGen::new(&f, config.clone()) {
        Err(SamplerError::Unsatisfiable) => {}
        other => panic!("UniGen::new: expected Unsatisfiable, got {other:?}"),
    }
    match UniGen::with_sampling_set(&f, &[Var::from_dimacs(1)], config) {
        Err(SamplerError::Unsatisfiable) => {}
        other => panic!("with_sampling_set: expected Unsatisfiable, got {other:?}"),
    }
}

#[test]
fn an_unsat_preparation_stream_checks_as_a_refutation() {
    // The same degenerate input, certified at the solver layer: the
    // enumeration of the preparation cell refutes the base formula, and
    // the checker's report says so in as many words.
    let mut f = CnfFormula::new(2);
    f.add_clause([Lit::from_dimacs(1)]).unwrap();
    f.add_clause([Lit::from_dimacs(-1)]).unwrap();
    let sampling = f.sampling_set_or_all();
    let mut solver = proof_solver(&f);
    let outcome = enumerate_cell(&mut solver, &sampling, &[], 8, &Budget::new());
    assert!(outcome.is_exhaustive() && outcome.is_empty());

    let bytes = solver.proof_bytes().expect("proof sink installed").to_vec();
    let report = Checker::check(&cert_formula(&f), &bytes).expect("the refutation checks");
    report.require_complete().expect("the cell closed properly");
}

#[test]
fn an_interrupted_enumeration_is_typed_incomplete_never_exhaustive() {
    // A conflict budget of zero interrupts the first solve call inside the
    // cell: whatever was logged up to that point must check, and the cell
    // certificate must be *typed* incomplete rather than silently (or
    // bogusly) exhaustive.
    let mut f = CnfFormula::new(3);
    f.add_clause([
        Lit::from_dimacs(1),
        Lit::from_dimacs(2),
        Lit::from_dimacs(3),
    ])
    .unwrap();
    let sampling = f.sampling_set_or_all();
    let mut solver = proof_solver(&f);
    let budget = Budget::new().with_step_limit(0);
    let outcome = enumerate_cell(&mut solver, &sampling, &[], 8, &budget);
    assert!(
        outcome.interrupted.is_some(),
        "a zero step budget interrupts the first solve: {outcome:?}"
    );
    assert!(!outcome.is_exhaustive());

    let bytes = solver.proof_bytes().expect("proof sink installed").to_vec();
    let report =
        Checker::check(&cert_formula(&f), &bytes).expect("the interrupted prefix still checks");
    let err = report
        .require_complete()
        .expect_err("an interrupted cell is not a complete certificate");
    assert!(
        matches!(err, CheckError::CertIncomplete { .. }),
        "expected the typed CertIncomplete, got {err:?}"
    );
    assert!(
        report.cells.iter().all(|c| !c.exhaustive()),
        "an interrupted cell must never certify as exhaustive: {report:?}"
    );
}
