//! Regression tests for degenerate xor constraints under activation guards.
//!
//! `XorClause::new` normalises rows (sorts, cancels duplicate variables), so
//! a hash row drawn from `H_xor` can legitimately arrive as the empty
//! constraint (all-zero coefficient row) or as a unit (single coefficient).
//! Under a guard `g` the semantics are `g ∨ (xor)`:
//!
//! * empty with rhs = 1 (`0 = 1`) must become the **unit clause `g`** — the
//!   guarded layer is unsatisfiable, the solver is not;
//! * a unit row `v = b` must become the **binary clause `g ∨ v^b`** — the
//!   value is forced only while the guard is assumed.
//!
//! Both must hold on every route a guarded xor can take into the solver:
//! the watched-variable engine and the Gauss–Jordan matrix path.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen_cnf::{dimacs, Var, XorClause};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{
    bounded_solutions, enumerate_cell, Budget, GaussMode, Solver, SolverConfig,
};

fn config(gauss: GaussMode) -> SolverConfig {
    SolverConfig {
        gauss,
        // Force the matrix path for arbitrarily small layers in On mode.
        gauss_auto_threshold: 1,
        ..SolverConfig::default()
    }
}

fn both_modes() -> [SolverConfig; 2] {
    [config(GaussMode::Off), config(GaussMode::On)]
}

#[test]
fn guarded_empty_unsat_xor_is_unit_guard_not_global_unsat() {
    for cfg in both_modes() {
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, cfg.clone());
        let guard = solver.new_guard();
        // All-zero coefficient row with target ⊕ constant = 1: `0 = 1`.
        solver.add_xor_under(XorClause::new([], true), guard);
        assert!(
            solver
                .solve_under_assumptions(&[guard.assumption()])
                .is_unsat(),
            "the guarded layer is unsatisfiable ({cfg:?})"
        );
        assert!(
            solver.is_consistent(),
            "an unsatisfiable layer must not poison the solver ({cfg:?})"
        );
        assert!(solver.solve().is_sat(), "base formula unharmed ({cfg:?})");
        solver.retire_guard(guard);
        assert!(solver.solve().is_sat());
    }
}

#[test]
fn guarded_empty_tautological_xor_is_dropped() {
    for cfg in both_modes() {
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, cfg);
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::new([], false), guard);
        let cell = {
            let sampling: Vec<Var> = (0..2).map(Var::new).collect();
            let mut models = HashSet::new();
            loop {
                match solver.solve_under_assumptions(&[guard.assumption()]) {
                    unigen_satsolver::SolveResult::Sat(m) => {
                        let blocking: Vec<_> = m.to_lits().iter().map(|&l| !l).collect();
                        solver.add_clause_under(unigen_cnf::Clause::new(blocking), guard);
                        models.insert(sampling.iter().map(|&v| m.value(v)).collect::<Vec<_>>());
                    }
                    unigen_satsolver::SolveResult::Unsat => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            models
        };
        assert_eq!(cell.len(), 3, "0 = 0 must not constrain anything");
        solver.retire_guard(guard);
    }
}

#[test]
fn guarded_unit_xor_is_a_binary_clause_not_an_unconditional_unit() {
    for cfg in both_modes() {
        let f = dimacs::parse("p cnf 2 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, cfg.clone());
        let guard = solver.new_guard();
        // Single-coefficient row: x1 = 1, guarded.
        solver.add_xor_under(XorClause::from_dimacs([1], true), guard);

        // Under the guard the unit binds…
        let model = solver
            .solve_under_assumptions(&[guard.assumption()])
            .model()
            .cloned()
            .expect("satisfiable under the guard");
        assert!(model.value(Var::from_dimacs(1)), "unit binds in-cell");

        // …but without the assumption both polarities of x1 remain
        // reachable: the constraint is `g ∨ x1`, not the unit `x1`.
        for polarity in [true, false] {
            let assumption = Var::from_dimacs(1).lit(polarity);
            assert!(
                solver.solve_under_assumptions(&[assumption]).is_sat(),
                "x1 = {polarity} must stay reachable outside the cell ({cfg:?})"
            );
        }
        solver.retire_guard(guard);
        assert!(solver
            .solve_under_assumptions(&[Var::from_dimacs(1).negative()])
            .is_sat());
    }
}

/// Draws hash layers from `XorHashFamily` with adversarial seeds until the
/// layer contains a degenerate row of the requested kind, then checks the
/// guarded cell against a scratch enumeration of the conjoined formula.
fn degenerate_layer_roundtrip(want_empty: bool) {
    let f = dimacs::parse("p cnf 3 1\n1 2 3 0\n").unwrap();
    let sampling: Vec<Var> = (0..3).map(Var::new).collect();
    let family = XorHashFamily::new(sampling.clone());

    let mut found = 0usize;
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = family.sample(2, &mut rng).to_xor_clauses();
        let hit = layer.iter().any(|xor| {
            if want_empty {
                xor.is_empty()
            } else {
                xor.len() == 1
            }
        });
        if !hit {
            continue;
        }
        found += 1;

        for cfg in both_modes() {
            let mut solver = Solver::from_formula_with_config(&f, cfg.clone());
            let cell = enumerate_cell(&mut solver, &sampling, &layer, 1 << 8, &Budget::new());
            assert!(cell.is_exhaustive());
            assert!(
                solver.is_consistent(),
                "degenerate hash layer poisoned the solver (seed {seed}, {cfg:?})"
            );

            // Reference: a throwaway solver over the conjoined formula.
            let mut hashed = f.clone();
            let mut layer_unsat = false;
            for xor in &layer {
                if hashed.add_xor_clause(xor.clone()).is_err() || xor.is_trivially_false() {
                    layer_unsat = true;
                }
            }
            let reference: HashSet<Vec<bool>> = if layer_unsat {
                HashSet::new()
            } else {
                let mut scratch = Solver::from_formula(&hashed);
                bounded_solutions(&mut scratch, &sampling, 1 << 8, &Budget::new())
                    .witnesses
                    .iter()
                    .map(|m| sampling.iter().map(|&v| m.value(v)).collect())
                    .collect()
            };
            let got: HashSet<Vec<bool>> = cell
                .witnesses
                .iter()
                .map(|m| sampling.iter().map(|&v| m.value(v)).collect())
                .collect();
            assert_eq!(got, reference, "seed {seed}, {cfg:?}");

            // The solver survives the degenerate layer: the base formula's
            // 7 models are all still reachable afterwards.
            let after = enumerate_cell(&mut solver, &sampling, &[], 1 << 8, &Budget::new());
            assert_eq!(after.len(), 7, "seed {seed}, {cfg:?}");
        }
        if found >= 5 {
            return;
        }
    }
    assert!(
        found > 0,
        "no adversarial draw found; widen the seed search"
    );
}

#[test]
fn all_zero_coefficient_hash_rows_roundtrip() {
    degenerate_layer_roundtrip(true);
}

#[test]
fn single_coefficient_hash_rows_roundtrip() {
    degenerate_layer_roundtrip(false);
}
