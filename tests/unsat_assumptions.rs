//! Unsat-under-assumptions regressions, driven by the sgen hard-unsat
//! family: guarded cells that are unsatisfiable must leave the persistent
//! solver fully consistent once their guard is retired, and the sampler
//! layer must answer requests on unsat formulas with typed errors (UniGen
//! preparation) or clean ⊥ outcomes (UniWit/XorSample' sampling) without
//! wedging a service worker.

use std::collections::BTreeSet;

use unigen::{
    BuildError, SampleRequest, SamplerBuilder, SamplerError, SamplerService, ServiceConfig, UniGen,
    UniGenConfig, UniWit, UniWitConfig, WitnessSampler, XorSamplePrime, XorSamplePrimeConfig,
};
use unigen_cnf::{CnfFormula, Var};
use unigen_instgen::{InstanceGenerator, SgenConfig};
use unigen_satsolver::{enumerate_cell, Budget, SolveResult, Solver};

fn sgen(blocks: usize, unsat: bool, seed: u64) -> CnfFormula {
    SgenConfig { blocks, unsat }.generate(seed)
}

fn witness_set(
    solver: &mut Solver,
    sampling_set: &[Var],
    bound: usize,
) -> (BTreeSet<Vec<bool>>, bool) {
    let outcome = enumerate_cell(solver, sampling_set, &[], bound, &Budget::new());
    let set = outcome
        .witnesses
        .iter()
        .map(|w| sampling_set.iter().map(|v| w.values()[v.index()]).collect())
        .collect();
    (set, outcome.is_exhaustive())
}

/// A guarded overlay of hard-unsat clauses on a satisfiable base yields
/// Unsat under the guard's assumption, and retiring the guard restores the
/// solver exactly: same witness set as before, balanced guard accounting.
#[test]
fn guarded_unsat_overlay_leaves_the_persistent_solver_consistent() {
    // Both variants at the same block count share a variable range, so the
    // unsat clauses overlay the sat base directly.
    let base = sgen(2, false, 11);
    let overlay = sgen(2, true, 12);
    assert_eq!(base.num_vars(), overlay.num_vars());
    let sampling_set = base.sampling_set_or_all();

    let mut solver = Solver::from_formula(&base);
    let (before, exhaustive) = witness_set(&mut solver, &sampling_set, 512);
    assert!(exhaustive, "the sat base must enumerate exhaustively");
    assert!(!before.is_empty());

    let guard = solver.new_guard();
    for clause in overlay.clauses() {
        solver.add_clause_under(clause.clone(), guard);
    }
    assert!(
        matches!(
            solver.solve_under_assumptions(&[guard.assumption()]),
            SolveResult::Unsat
        ),
        "the guarded hard-unsat overlay must refute under its assumption"
    );
    // Without the assumption, the base formula is still satisfiable.
    assert!(matches!(solver.solve(), SolveResult::Sat(_)));
    solver.retire_guard(guard);

    let (after, exhaustive) = witness_set(&mut solver, &sampling_set, 512);
    assert!(exhaustive);
    assert_eq!(
        before, after,
        "retired unsat overlay changed the base witness set"
    );
    let stats = solver.stats();
    assert_eq!(stats.guards_created, stats.guards_retired, "guard leak");
}

/// Repeated guarded cells directly on a hard-unsat base: every cell is
/// exhaustively empty, the solver survives an arbitrary number of them, and
/// guard accounting stays balanced throughout.
#[test]
fn repeated_unsat_cells_keep_the_solver_reusable() {
    let formula = sgen(2, true, 5);
    let sampling_set = formula.sampling_set_or_all();
    let mut solver = Solver::from_formula(&formula);
    for round in 0..8 {
        let outcome = enumerate_cell(&mut solver, &sampling_set, &[], 16, &Budget::new());
        assert!(
            outcome.is_exhaustive() && outcome.is_empty(),
            "round {round}: unsat base must enumerate exhaustively empty"
        );
    }
    let stats = solver.stats();
    assert_eq!(stats.guards_created, stats.guards_retired);
    assert!(stats.solve_calls >= 8);
}

/// UniGen preparation on an unsat formula fails with the typed
/// `Unsatisfiable` error — through the direct constructor and the builder.
#[test]
fn unigen_preparation_reports_unsatisfiable() {
    let formula = sgen(2, true, 3);
    assert!(matches!(
        UniGen::new(&formula, UniGenConfig::default()),
        Err(SamplerError::Unsatisfiable)
    ));
    assert!(matches!(
        SamplerBuilder::unigen(&formula).build(),
        Err(BuildError::Prepare(SamplerError::Unsatisfiable))
    ));
}

/// UniWit and XorSample' prepare on unsat input (their width scan is
/// per-sample) and answer every request with ⊥ — and through the service,
/// a follow-up request still completes, proving no worker wedged.
#[test]
fn service_answers_unsat_requests_with_clean_bottoms() {
    let formula = sgen(2, true, 7);

    let uniwit = UniWit::new(&formula, UniWitConfig::default()).expect("UniWit prepares on unsat");
    let serial = uniwit.clone().sample_batch(6, 0x5eed);
    assert!(serial.iter().all(|o| o.witness.is_none()));

    let service = SamplerService::new(
        uniwit,
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(4),
    );
    for round in 0u64..3 {
        let response = service.submit(SampleRequest::new(6, 0x5eed + round)).wait();
        assert_eq!(response.outcomes.len(), 6, "round {round} lost outcomes");
        assert_eq!(response.successes(), 0, "round {round} found a witness");
        assert!(response.outcomes.iter().all(|o| o.witness.is_none()));
    }

    let xorsample = XorSamplePrime::new(&formula, XorSamplePrimeConfig::default())
        .expect("XorSample' prepares on unsat");
    let batch = xorsample.clone().sample_batch(4, 1);
    assert!(batch.iter().all(|o| o.witness.is_none()));
}
