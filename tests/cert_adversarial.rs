//! Adversarial proof-mutation tests: the `unigen-cert` checker must accept
//! a solver-produced proof stream verbatim and reject every seeded
//! mutation of it — a checker that accepts a doctored certificate is worse
//! than no checker, because it launders the very verdicts it exists to
//! audit.
//!
//! Mutations are spliced at step granularity using
//! [`unigen_cert::step_spans`] (drop a step, swap two steps, truncate at a
//! step boundary) or at byte granularity inside a step (corrupt one
//! literal). Step kinds are identified by their leading tag byte — the
//! binary format encodes tags as single-byte varints, so `bytes[offset]`
//! *is* the tag.

use unigen::cert_formula;
use unigen_cert::{step_spans, CheckError, Checker};
use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
use unigen_satsolver::{enumerate_cell, Budget, ProofLog, Solver, SolverConfig};

/// Step tags of the binary proof format (see `unigen_satsolver::proof`).
const TAG_AXIOM: u8 = 6;
const TAG_CELL_BEGIN: u8 = 8;
const TAG_WITNESS: u8 = 9;
const TAG_BLOCK: u8 = 10;
const TAG_UNSAT_UNDER: u8 = 11;

/// A satisfiable formula with an xor-hashed cell that enumerates
/// exhaustively: the stream then contains axioms, xor rows, witnesses,
/// blocking clauses, and the residue refutation — every step kind the
/// mutations below target.
fn certified_stream() -> (unigen_cert::Formula, Vec<u8>) {
    let mut f = CnfFormula::new(4);
    f.add_clause([
        Lit::from_dimacs(1),
        Lit::from_dimacs(2),
        Lit::from_dimacs(3),
    ])
    .unwrap();
    f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(4)])
        .unwrap();
    f.set_sampling_set([
        Var::from_dimacs(1),
        Var::from_dimacs(2),
        Var::from_dimacs(3),
    ])
    .unwrap();
    let sampling = f.sampling_set_or_all();

    let mut solver = Solver::from_formula_with_config(
        &f,
        SolverConfig {
            proof: Some(ProofLog::new()),
            ..SolverConfig::default()
        },
    );
    let xors = vec![XorClause::from_dimacs([1, 2], true)];
    let outcome = enumerate_cell(&mut solver, &sampling, &xors, 64, &Budget::new());
    assert!(outcome.is_exhaustive(), "the cell must enumerate fully");
    assert!(!outcome.witnesses.is_empty(), "the cell must be non-empty");

    let bytes = solver.proof_bytes().expect("proof sink installed").to_vec();
    (cert_formula(&f), bytes)
}

/// Returns the spans whose step has the given tag byte.
fn spans_of(bytes: &[u8], spans: &[(usize, usize)], tag: u8) -> Vec<(usize, usize)> {
    spans
        .iter()
        .copied()
        .filter(|&(off, _)| bytes[off] == tag)
        .collect()
}

/// Rebuilds a stream from `spans` with the steps at indices `a` and `b`
/// exchanged.
fn swap_steps(bytes: &[u8], spans: &[(usize, usize)], a: usize, b: usize) -> Vec<u8> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.swap(a, b);
    let mut out = Vec::with_capacity(bytes.len());
    for i in order {
        let (off, len) = spans[i];
        out.extend_from_slice(&bytes[off..off + len]);
    }
    out
}

fn splice_out(bytes: &[u8], span: (usize, usize)) -> Vec<u8> {
    let mut out = bytes[..span.0].to_vec();
    out.extend_from_slice(&bytes[span.0 + span.1..]);
    out
}

#[test]
fn the_unmutated_stream_is_accepted_and_complete() {
    let (f, bytes) = certified_stream();
    let report = Checker::check(&f, &bytes).expect("the original stream checks");
    report.require_complete().expect("every cell closed");
    assert_eq!(report.cells.len(), 1);
    assert!(report.cells[0].exhaustive());
}

#[test]
fn dropping_a_witness_step_is_rejected() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let witnesses = spans_of(&bytes, &spans, TAG_WITNESS);
    assert!(!witnesses.is_empty());
    // The orphaned blocking clause no longer matches a pending witness.
    let mutated = splice_out(&bytes, witnesses[0]);
    Checker::check(&f, &mutated).expect_err("a dropped witness must be caught");
}

#[test]
fn dropping_the_unsat_verdict_makes_exhaustion_bogus() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let verdicts = spans_of(&bytes, &spans, TAG_UNSAT_UNDER);
    assert!(!verdicts.is_empty());
    let mutated = splice_out(&bytes, verdicts[0]);
    let err = Checker::check(&f, &mutated).expect_err("exhaustion now lacks its refutation");
    assert!(
        matches!(&err, CheckError::Rejected { .. }),
        "expected a rejected step, got {err:?}"
    );
}

#[test]
fn corrupting_a_blocking_literal_is_rejected() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let blocks = spans_of(&bytes, &spans, TAG_BLOCK);
    assert!(!blocks.is_empty());
    // The last byte of a block step is its final zigzag literal (all vars
    // here fit single-byte varints); xor 1 flips that literal's sign, so
    // the clause is no longer the negated projection of its witness.
    let (off, len) = blocks[0];
    let mut mutated = bytes.clone();
    mutated[off + len - 1] ^= 1;
    Checker::check(&f, &mutated).expect_err("a corrupted blocking literal must be caught");
}

#[test]
fn corrupting_an_axiom_literal_is_rejected() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let axioms = spans_of(&bytes, &spans, TAG_AXIOM);
    assert!(!axioms.is_empty(), "base clauses are logged as axioms");
    let (off, len) = axioms[0];
    let mut mutated = bytes.clone();
    mutated[off + len - 1] ^= 1;
    Checker::check(&f, &mutated).expect_err("the clause is no longer in the base formula");
}

#[test]
fn permuting_witness_and_block_is_rejected() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let witness_idx = spans
        .iter()
        .position(|&(off, _)| bytes[off] == TAG_WITNESS)
        .unwrap();
    let block_idx = spans
        .iter()
        .position(|&(off, _)| bytes[off] == TAG_BLOCK)
        .unwrap();
    let mutated = swap_steps(&bytes, &spans, witness_idx, block_idx);
    Checker::check(&f, &mutated).expect_err("a block may not precede its witness");
}

#[test]
fn permuting_cell_begin_into_the_cell_is_rejected() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let begin_idx = spans
        .iter()
        .position(|&(off, _)| bytes[off] == TAG_CELL_BEGIN)
        .unwrap();
    let witness_idx = spans
        .iter()
        .position(|&(off, _)| bytes[off] == TAG_WITNESS)
        .unwrap();
    assert!(begin_idx < witness_idx);
    let mutated = swap_steps(&bytes, &spans, begin_idx, witness_idx);
    Checker::check(&f, &mutated).expect_err("a witness outside its cell must be caught");
}

#[test]
fn truncating_the_residue_proof_never_claims_exhaustion() {
    let (f, bytes) = certified_stream();
    let spans = step_spans(&bytes).unwrap();
    let verdicts = spans_of(&bytes, &spans, TAG_UNSAT_UNDER);
    let cut = verdicts[0].0;

    // Truncation at a step boundary leaves a well-formed stream whose cell
    // never closes: the verified prefix is usable, but the typed
    // incompleteness error forbids treating it as an exhaustive cell.
    let report = Checker::check(&f, &bytes[..cut]).expect("the prefix itself is valid");
    let err = report
        .require_complete()
        .expect_err("an unclosed cell is incomplete");
    assert!(
        matches!(err, CheckError::CertIncomplete { .. }),
        "expected CertIncomplete, got {err:?}"
    );
    assert!(
        report.cells.iter().all(|c| !c.exhaustive()),
        "no truncated cell may claim exhaustion"
    );

    // Truncation inside a step is flagged as such.
    let err = Checker::check(&f, &bytes[..cut + 1]).expect_err("a torn step cannot check");
    assert!(
        matches!(err, CheckError::Truncated { .. }),
        "expected Truncated, got {err:?}"
    );
}
