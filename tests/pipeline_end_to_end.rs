//! End-to-end pipeline tests: circuit generation → Tseitin encoding →
//! independent-support validation → UniGen sampling → witness checking.
//!
//! These tests exercise the same path as the benchmark harness, on smaller
//! instances, and pin down the cross-crate contracts (sampling sets are
//! independent supports, witnesses satisfy the original formula, UniWit and
//! UniGen sample from the same witness space).

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::{UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler};
use unigen_circuit::benchmarks;
use unigen_counting::ExactCounter;
use unigen_satsolver::support::{verify_independent_support, SupportCheck};
use unigen_satsolver::Budget;

#[test]
fn generated_benchmarks_have_independent_sampling_sets() {
    // The Tseitin encoder promises that the primary inputs form an
    // independent support; verify it with the Padoa-style check for one
    // instance per family (kept small so the self-composition stays cheap).
    let instances = vec![
        benchmarks::parity_chain("ind-case", 8, 2, 2, 21),
        benchmarks::iscas_like("ind-iscas", 8, 40, 2, 22),
        benchmarks::squaring("ind-squaring", 4, 2, 23),
        benchmarks::login_like("ind-login", 2, 4, 24),
        benchmarks::long_chain("ind-chain", 6, 10, 2, 25),
    ];
    for benchmark in instances {
        let sampling = benchmark.formula.sampling_set().unwrap();
        let verdict = verify_independent_support(&benchmark.formula, sampling, &Budget::new());
        assert_eq!(
            verdict,
            SupportCheck::Independent,
            "{}: sampling set is not an independent support",
            benchmark.name
        );
    }
}

#[test]
fn unigen_witnesses_satisfy_every_family() {
    let mut rng = StdRng::seed_from_u64(31);
    let instances = vec![
        benchmarks::parity_chain("e2e-case", 10, 3, 3, 41),
        benchmarks::iscas_like("e2e-iscas", 10, 70, 3, 42),
        benchmarks::squaring("e2e-squaring", 5, 3, 43),
        benchmarks::sorter("e2e-sort", 3, 3, 4, 44),
        benchmarks::long_chain("e2e-chain", 8, 15, 3, 45),
    ];
    for benchmark in instances {
        let mut sampler = UniGen::new(&benchmark.formula, UniGenConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.name));
        let mut successes = 0;
        for _ in 0..8 {
            if let Some(witness) = sampler.sample(&mut rng).witness {
                assert!(
                    benchmark.formula.evaluate(&witness),
                    "{}: invalid witness",
                    benchmark.name
                );
                successes += 1;
            }
        }
        assert!(
            successes >= 4,
            "{}: only {successes}/8 samples succeeded",
            benchmark.name
        );
    }
}

#[test]
fn unigen_and_uniwit_sample_the_same_witness_space() {
    let benchmark = benchmarks::parity_chain("space-check", 8, 2, 2, 51);
    let formula = &benchmark.formula;
    let mut rng = StdRng::seed_from_u64(52);

    let mut unigen = UniGen::new(formula, UniGenConfig::default()).unwrap();
    let mut uniwit = UniWit::new(formula, UniWitConfig::default()).unwrap();
    for _ in 0..5 {
        if let Some(w) = unigen.sample(&mut rng).witness {
            assert!(formula.evaluate(&w));
        }
        if let Some(w) = uniwit.sample(&mut rng).witness {
            assert!(formula.evaluate(&w));
        }
    }
}

#[test]
fn sampling_set_projection_counts_match_exact_counts() {
    // Because the sampling set is an independent support, the number of
    // distinct projections equals |R_F|; UniGen's Enumerated mode exposes
    // exactly that set for small formulas.
    let benchmark = benchmarks::parity_chain("proj-count", 6, 2, 3, 61);
    let formula = &benchmark.formula;
    let exact = ExactCounter::new().count(formula).unwrap();

    let sampler = UniGen::new(formula, UniGenConfig::default()).unwrap();
    match sampler.prepared_mode() {
        unigen::PreparedMode::Enumerated { witnesses } => {
            assert_eq!(witnesses.len() as u128, exact);
        }
        unigen::PreparedMode::Hashed { approx_count, .. } => {
            // If the instance turned out larger than hiThresh, at least check
            // the approximate count is in the right ballpark.
            let ratio = *approx_count as f64 / exact as f64;
            assert!(
                ratio > 0.4 && ratio < 2.5,
                "approx {approx_count} vs exact {exact}"
            );
        }
    }
}

#[test]
fn xor_length_gap_between_unigen_and_uniwit_matches_the_paper() {
    // The structural claim behind Table 1's "Avg XOR len" columns: UniGen's
    // xor clauses average about |S|/2 variables, UniWit's about |X|/2.
    let benchmark = benchmarks::long_chain("xorlen-check", 10, 25, 4, 71);
    let formula = &benchmark.formula;
    let s = formula.sampling_set().unwrap().len() as f64;
    let x = formula.num_vars() as f64;
    let mut rng = StdRng::seed_from_u64(72);

    let mut unigen = UniGen::new(formula, UniGenConfig::default()).unwrap();
    let mut unigen_stats = unigen::SampleStats::default();
    for _ in 0..5 {
        unigen_stats.accumulate(&unigen.sample(&mut rng).stats);
    }

    let mut uniwit = UniWit::new(formula, UniWitConfig::default()).unwrap();
    let mut uniwit_stats = unigen::SampleStats::default();
    for _ in 0..3 {
        uniwit_stats.accumulate(&uniwit.sample(&mut rng).stats);
    }

    if unigen_stats.xor_clauses_added > 0 {
        let avg = unigen_stats.average_xor_length();
        assert!(
            avg < s * 0.9,
            "UniGen xor length {avg} not consistent with |S|/2 = {}",
            s / 2.0
        );
    }
    if uniwit_stats.xor_clauses_added > 0 {
        let avg = uniwit_stats.average_xor_length();
        assert!(
            avg > x * 0.25,
            "UniWit xor length {avg} not consistent with |X|/2 = {}",
            x / 2.0
        );
    }
}
