//! The differential fuzz sweep over the adversarial generator corpus: each
//! case draws an instance from one of the `instgen` families (rotating
//! through scale-free, triangle-free, sgen-unsat and sgen-sat) and runs
//! [`unigen_instgen::fuzz::differential_case`] — incremental Gauss-on vs
//! Gauss-off vs scratch enumeration over the same XOR hash cells, with a
//! brute-force oracle on small instances and the Gauss-on lane's proof
//! stream verified by the independent `unigen-cert` checker — plus the
//! sampler-service check (uncertified and certified sampling lanes) on
//! every third case. Zero divergence is the pass condition.
//!
//! The sweep is fully seeded. Knobs (also documented in the README):
//!
//! * `INSTGEN_FUZZ_CASES` — number of cases (default 100, CI runs the
//!   default; crank it locally for a deeper soak).
//! * `INSTGEN_FUZZ_START` — first case index (default 0). A failure report
//!   prints the case index, instance name and seed; rerunning with
//!   `INSTGEN_FUZZ_START=<index> INSTGEN_FUZZ_CASES=1` replays exactly the
//!   failing case, and `config.generate(seed)` rebuilds its formula.

use unigen_instgen::fuzz::{differential_case, service_case, FuzzConfig};
use unigen_instgen::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

/// SplitMix64: the per-case seed stream (independent of the vendored RNG so
/// case derivation can never drift with shim changes).
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives case `index`: a generator config (rotating over the four
/// families, with shape knobs drawn from the case's seed stream) plus the
/// instance seed.
fn case(index: u64) -> (Box<dyn InstanceGenerator>, u64) {
    let s = splitmix64(index);
    let seed = splitmix64(s);
    let generator: Box<dyn InstanceGenerator> = match index % 4 {
        0 => {
            let num_vars = 8 + (s % 9) as usize; // 8..=16
            Box::new(ScaleFreeConfig {
                num_vars,
                num_clauses: num_vars * (2 + ((s >> 8) % 3) as usize),
                clause_len: 3,
                exponent_quarters: ((s >> 16) % 7) as u32,
            })
        }
        1 => {
            let csp_vars = 4 + (s % 3) as usize; // 4..=6, ≤ 18 bools
            Box::new(TriangleFreeConfig {
                csp_vars,
                domain: 3,
                edges: csp_vars + ((s >> 8) as usize % csp_vars),
                forbidden_per_edge: 2 + ((s >> 16) % 3) as usize,
            })
        }
        2 => Box::new(SgenConfig {
            blocks: 1 + (s % 2) as usize,
            unsat: true,
        }),
        _ => Box::new(SgenConfig {
            blocks: 1 + (s % 3) as usize,
            unsat: false,
        }),
    };
    (generator, seed)
}

fn env_usize(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn differential_sweep_has_zero_divergence() {
    let start = env_usize("INSTGEN_FUZZ_START", 0);
    let cases = env_usize("INSTGEN_FUZZ_CASES", 100);
    let config = FuzzConfig::default();

    let mut checked_cells = 0usize;
    let mut unsat_cells = 0usize;
    let mut service_checks = 0usize;
    let mut certified_steps = 0u64;
    for index in start..start + cases {
        let (generator, seed) = case(index);
        let name = generator.name();
        let formula = generator.generate(seed);

        let report = differential_case(&name, &formula, seed, &config);
        assert!(
            report.divergence.is_none(),
            "case {index}: {name} seed {seed:#x} diverged: {}\n\
             reproduce with: INSTGEN_FUZZ_START={index} INSTGEN_FUZZ_CASES=1 \
             cargo test --test fuzz_differential",
            report.divergence.as_deref().unwrap_or_default()
        );
        checked_cells += report.cells;
        unsat_cells += report.unsat_cells;
        assert!(
            report.certified_steps > 0,
            "case {index}: {name} seed {seed:#x} produced an empty proof stream"
        );
        certified_steps += report.certified_steps;

        if index % 3 == 0 {
            service_checks += 1;
            if let Some(divergence) = service_case(&name, &formula, seed) {
                panic!(
                    "case {index}: sampler-service check diverged: {divergence}\n\
                     reproduce with: INSTGEN_FUZZ_START={index} INSTGEN_FUZZ_CASES=1 \
                     cargo test --test fuzz_differential"
                );
            }
        }
    }

    eprintln!(
        "differential sweep: {cases} cases, {checked_cells} cells \
         ({unsat_cells} unsat), {service_checks} service checks, \
         {certified_steps} proof steps certified, zero divergence"
    );
    // The sweep must genuinely exercise both verdicts: the sgen-unsat lane
    // alone guarantees unsat cells at any sweep length covering it.
    if cases >= 4 {
        assert!(unsat_cells > 0, "sweep never saw an unsat cell");
        assert!(
            checked_cells as u64 > cases,
            "sweep checked fewer cells than cases"
        );
    }
}

/// The case derivation itself is pinned: shuffling it silently re-rolls the
/// whole sweep, so treat it like the golden corpus.
#[test]
fn case_derivation_is_stable() {
    let (g0, s0) = case(0);
    assert_eq!(g0.name(), "scale-free-n15-m30-k3-b1.00");
    assert_eq!(s0, 0xa706_dd2f_4d19_7e6f);
    let (g2, _) = case(2);
    assert_eq!(g2.name(), "sgen-unsat-b1");
}
