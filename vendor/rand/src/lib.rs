//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the *subset* of the `rand 0.8` API that the
//! workspace actually uses, with the same module layout and trait structure:
//!
//! * [`RngCore`] — the object-safe core trait (`next_u32` / `next_u64` /
//!   `fill_bytes`), usable as `&mut dyn RngCore`,
//! * [`Rng`] — the extension trait blanket-implemented for every `RngCore`,
//!   providing [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! * [`SeedableRng`] — construction from seeds, including
//!   [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a deterministic, seedable generator (xoshiro256++
//!   seeded through SplitMix64; **not** the same stream as the real
//!   `StdRng`, which is fine because the workspace only relies on
//!   determinism and statistical quality, never on a specific stream).
//!
//! Integer ranges are sampled without modulo bias (rejection sampling), and
//! float ranges use the standard 53-bit mantissa construction. If the real
//! `rand` crate ever becomes available, deleting this directory and pointing
//! the workspace dependency at crates.io is the only change required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly random bits.
///
/// Object-safe, so samplers can take `&mut dyn RngCore` exactly as they do
/// with the real `rand` crate.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bit stream, i.e.
/// from the `Standard` distribution of the real `rand` crate.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample a single value from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Classic rejection: accept only draws below the largest multiple of
    // `span`, then reduce. The acceptance probability is always > 1/2.
    let zone = (u64::MAX / span) * span;
    loop {
        let draw = rng.next_u64();
        if draw < zone {
            return draw % span;
        }
    }
}

fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_below(rng, span as u64) as u128;
    }
    let zone = (u128::MAX / span) * span;
    loop {
        let draw = u128::sample_standard(rng);
        if draw < zone {
            return draw % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + uniform_below_u128(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u128::MAX {
            return u128::sample_standard(rng);
        }
        lo + uniform_below_u128(rng, span + 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience methods layered on top of [`RngCore`], blanket-implemented
/// for every generator (including trait objects).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same convention the real `rand` crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// A deterministic, seedable pseudo-random generator (xoshiro256++).
    ///
    /// Statistically strong and fast; **not** cryptographically secure and
    /// **not** stream-compatible with the real `rand::rngs::StdRng` — the
    /// workspace only depends on determinism for reproducible experiments.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; reseed through
            // SplitMix64 in that (astronomically unlikely) case.
            if s == [0; 4] {
                let mut splitmix = SplitMix64 { state: 0 };
                for word in &mut s {
                    *word = splitmix.next_u64();
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));

        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
        }

        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }

        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.gen_range(0usize..10);
        assert!(v < 10);
        let _: bool = dynrng.gen();
    }

    #[test]
    fn fill_bytes_fills_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
