//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `criterion 0.5` API that the workspace's benches use —
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `measurement_time` / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock measurement
//! loop instead of Criterion's statistical machinery.
//!
//! Each benchmark is warmed up once, then timed over `sample_size` batches;
//! the harness reports the minimum, mean and maximum per-iteration time in
//! Criterion-flavoured output. Good enough for A/B comparisons on one
//! machine; swap in the real crate for publication-grade statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimiser from deleting a
/// computation whose result is otherwise unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark inside a group: a function name plus an optional
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id of the form `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Per-iteration timings collected by [`Bencher::iter`].
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per measured batch. Stops early
    /// once the group's `measurement_time` budget is exhausted (at least one
    /// sample is always recorded).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration (pays lazy-init and cache-fill costs).
        black_box(routine());
        self.samples.clear();
        let budget_started = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the soft wall-clock budget for one benchmark; the measurement
    /// loop stops early once the budget is exhausted.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        self.criterion.run_one(&full, sample_size, budget, |b| f(b));
        self
    }

    /// Registers and immediately runs a benchmark that borrows an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        self.criterion
            .run_one(&full, sample_size, budget, |b| f(b, input));
        self
    }

    /// Ends the group. (All benchmarks already ran eagerly; this exists for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// The benchmark harness entry point, normally constructed by
/// [`criterion_main!`].
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The stand-in accepts and ignores
    /// all flags that `cargo bench` forwards (`--bench`, filters, …).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks with shared settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: Duration::from_secs(5),
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id.id, sample_size, Duration::from_secs(5), |b| f(b));
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, budget: Duration, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size,
            measurement_time: budget,
            samples: Vec::with_capacity(sample_size),
        };
        let started = Instant::now();
        f(&mut bencher);
        let total = started.elapsed();

        if bencher.samples.is_empty() {
            println!("{name:<60} (no measurement recorded)");
            return;
        }
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        let sum: Duration = bencher.samples.iter().sum();
        let mean = sum / bencher.samples.len() as u32;
        println!(
            "{name:<60} time: [{} {} {}]  ({} samples, {} total)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            bencher.samples.len(),
            format_duration(total),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                seen = d.len();
                black_box(d.iter().sum::<u64>())
            })
        });
        group.finish();
        assert_eq!(seen, 3);
    }
}
