//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the `proptest 1.x` API that the workspace's integration
//! tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_flat_map`] and [`Strategy::prop_perturb`],
//!   implemented for integer and `f64` ranges, tuples, and [`Just`],
//! * [`collection::vec`] and [`collection::hash_set`],
//! * [`bool::ANY`] for uniformly random booleans,
//! * the [`proptest!`] macro with `#![proptest_config(…)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! The one deliberate simplification: **no shrinking**. A failing case
//! panics with the ordinary assertion message instead of a minimised
//! counter-example. Cases are generated from a deterministic seed (override
//! with the `PROPTEST_SEED` environment variable) so failures reproduce
//! across runs. Like the real crate, a test fails when [`prop_assume!`]
//! rejects so many cases that the configured case count cannot be reached
//! within the attempt budget (16× the case count), so sparse strategies
//! cannot silently weaken coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Builds the per-test RNG: seeded from `PROPTEST_SEED` when set, otherwise
/// from a fixed default so runs are reproducible.
pub fn test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5eed_cafe_f00d_d1ce);
    StdRng::seed_from_u64(seed)
}

/// Marker returned by [`prop_assume!`] when a generated case does not meet
/// the test's preconditions; the runner discards the case and draws another.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseReject;

/// Per-test configuration, consumed by the [`proptest!`] macro.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` test cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Derives a strategy whose shape depends on a first random draw.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            flat_map,
        }
    }

    /// Derives a strategy that post-processes every generated value *with
    /// access to the test RNG*, mirroring `proptest`'s `prop_perturb`. This
    /// is the combinator generator strategies use to turn structural
    /// parameters plus fresh entropy (a seed, a shuffle) into a final value.
    fn prop_perturb<O, F>(self, perturb: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, &mut TestRng) -> O,
    {
        Perturb {
            inner: self,
            perturb,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.flat_map)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    perturb: F,
}

impl<S, F, O> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, &mut TestRng) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.perturb)(value, rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `f64` ranges (half-open, like real proptest's `core::ops::Range<f64>`
// strategy restricted to finite bounds) back continuous generator knobs such
// as clause densities and power-law exponents.
impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "f64 range strategy requires finite start < end"
        );
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

pub mod bool {
    //! Strategies over `bool`, mirroring `proptest::bool`.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy generating `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Strategies over collections, mirroring `proptest::collection`.

    use super::{HashSet, Range, Strategy, TestRng};
    use std::hash::Hash;

    use rand::Rng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// A `HashSet` whose target size is drawn from `size` and whose elements
    /// come from `element`. When the element domain is smaller than the
    /// drawn size the set saturates at the domain size instead of looping
    /// forever (matching real proptest's bounded retries).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = HashSet::with_capacity(target);
            // Bounded retries: a small element domain may not contain
            // `target` distinct values.
            let mut attempts = 0usize;
            let max_attempts = 32 * (target + 1);
            while set.len() < target && attempts < max_attempts {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseReject,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// The stand-in panics immediately (no shrinking), so this is `assert!` with
/// a proptest-compatible name and signature.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Discards the current case (drawing a fresh one) when a precondition on
/// the generated values does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Declares property tests: each `fn name(pattern in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ( $($strategy,)+ );
                let mut rng = $crate::test_rng();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).saturating_add(256);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let values = $crate::Strategy::generate(&strategies, &mut rng);
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseReject> {
                        let ( $($arg,)+ ) = values;
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted >= config.cases,
                    "proptest: too many cases rejected by prop_assume! \
                     (accepted {} of {} within {} attempts); \
                     tighten the strategy instead of relying on rejection",
                    accepted,
                    config.cases,
                    max_attempts
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = crate::test_rng();
        let strategy = (3usize..9).prop_flat_map(|n| {
            let elements = crate::collection::vec((0..n, crate::bool::ANY), 1..4);
            let sets = crate::collection::hash_set(0..n, 1..5);
            (Just(n), elements, sets)
        });
        for _ in 0..200 {
            let (n, elements, set) = strategy.generate(&mut rng);
            assert!((3..9).contains(&n));
            assert!((1..4).contains(&elements.len()));
            assert!(elements.iter().all(|&(v, _)| v < n));
            assert!(!set.is_empty() && set.len() < 5);
            assert!(set.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn prop_map_applies_the_function() {
        let mut rng = crate::test_rng();
        let strategy = (1usize..5).prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_runs_cases(x in 0usize..100, flip in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            let set_bits = [flip, !flip].iter().filter(|&&b| b).count();
            prop_assert_eq!(set_bits, 1);
        }
    }

    proptest! {
        #[test]
        fn macro_supports_default_config(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn f64_ranges_generate_in_bounds() {
        let mut rng = crate::test_rng();
        let strategy = 1.5f64..4.25;
        for _ in 0..500 {
            let v = strategy.generate(&mut rng);
            assert!((1.5..4.25).contains(&v), "{v} escaped the range");
        }
    }

    #[test]
    fn prop_perturb_sees_the_value_and_the_rng() {
        let mut rng = crate::test_rng();
        let strategy = (10usize..20).prop_perturb(|n, rng| {
            use rand::Rng;
            (n, rng.gen_range(0..n))
        });
        let mut saw_distinct_perturbations = false;
        let mut last = None;
        for _ in 0..100 {
            let (n, r) = strategy.generate(&mut rng);
            assert!((10..20).contains(&n));
            assert!(r < n);
            if let Some(prev) = last {
                saw_distinct_perturbations |= prev != r;
            }
            last = Some(r);
        }
        assert!(saw_distinct_perturbations, "perturbation RNG never varied");
    }

    #[test]
    fn prop_perturb_is_deterministic_under_a_fixed_seed() {
        use rand::SeedableRng;
        let strategy = (0usize..1000).prop_perturb(|n, rng| {
            use rand::Rng;
            n.wrapping_mul(rng.gen_range(1usize..100))
        });
        let run = |seed: u64| -> Vec<usize> {
            let mut rng = crate::TestRng::seed_from_u64(seed);
            (0..50).map(|_| strategy.generate(&mut rng)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
