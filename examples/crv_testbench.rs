//! Constrained-random verification testbench.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example crv_testbench
//! ```
//!
//! This is the workflow from the paper's introduction, end to end:
//!
//! 1. a design under test (a small comparator/accumulator datapath),
//! 2. an *input constraint* written by a verification engineer ("the request
//!    is only valid when the two operand fields are in range and not equal"),
//! 3. UniGen generating almost-uniform stimuli satisfying the constraint,
//! 4. the simulator applying those stimuli and a coverage report showing how
//!    evenly the constrained input space was exercised.

use std::collections::HashMap;

use unigen::{SampleRequest, SamplerBuilder, ServiceConfig};
use unigen_circuit::{tseitin, CircuitBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. The design under test: compares two 5-bit fields.
    // ---------------------------------------------------------------
    let mut builder = CircuitBuilder::new("dut_constraints");
    let field_a = builder.input_word("a", 5);
    let field_b = builder.input_word("b", 5);

    // 2. The environment constraints (what a verification engineer would
    //    declare): both fields below 24, fields not equal, and their xor has
    //    odd parity (a made-up protocol rule that couples the fields).
    let limit = builder.constant_word(24, 5);
    let a_ok = builder.less_than(&field_a, &limit);
    let b_ok = builder.less_than(&field_b, &limit);
    let equal = builder.equals(&field_a, &field_b);
    let distinct = builder.not(equal);
    let xor_bits: Vec<_> = (0..5)
        .map(|i| builder.xor(field_a.bit(i), field_b.bit(i)))
        .collect();
    let parity = builder.xor_many(&xor_bits);
    let both_ok = builder.and(a_ok, b_ok);
    let legal = builder.and(both_ok, distinct);
    let valid = builder.and(legal, parity);
    builder.output("valid", valid);
    let circuit = builder.finish();

    let mut encoding = tseitin::encode(&circuit);
    encoding.assert_node(valid, true);
    let formula = encoding.into_formula();
    let sampling_set = formula.sampling_set_or_all();

    println!(
        "constraint model: |X| = {}, |S| = {} (the 10 stimulus bits)",
        formula.num_vars(),
        sampling_set.len()
    );

    // ---------------------------------------------------------------
    // 3. Constrained-random stimulus generation: UniGen through the
    //    service API. The builder prepares the sampler once; the service
    //    answers one typed request for the whole regression run, and the
    //    response carries the aggregate cost statistics pre-folded (no
    //    hand-rolled accumulation loop in the testbench).
    // ---------------------------------------------------------------
    let service = SamplerBuilder::unigen(&formula)
        .seed(7)
        .into_service(ServiceConfig::default().with_workers(2))?;
    let num_tests = 200;
    let response = service.submit(SampleRequest::new(num_tests, 7)).wait();
    let generated = response.successes();
    let mut bucket_hits: HashMap<(u64, u64), u32> = HashMap::new();

    for outcome in &response.outcomes {
        let Some(witness) = &outcome.witness else {
            continue;
        };
        let stimulus = witness.project(&sampling_set);
        let a: u64 = (0..5).fold(0, |acc, i| acc | (u64::from(stimulus.values()[i]) << i));
        let b: u64 = (0..5).fold(0, |acc, i| acc | (u64::from(stimulus.values()[5 + i]) << i));

        // 4. Drive the DUT with the generated stimulus (re-simulation) and
        //    check that the constraint really holds — the testbench's checker.
        let mut inputs = Vec::with_capacity(10);
        for i in 0..5 {
            inputs.push(a & (1 << i) != 0);
        }
        for i in 0..5 {
            inputs.push(b & (1 << i) != 0);
        }
        let sim = circuit.simulate(&inputs);
        assert!(sim.output("valid"), "UniGen produced an illegal stimulus");

        // Coverage bucket: which quadrant of the (a, b) space was hit.
        *bucket_hits.entry((a / 8, b / 8)).or_insert(0) += 1;
    }

    println!("generated {generated} legal stimuli out of {num_tests} requested");
    println!(
        "generation cost: {} BSAT calls, avg xor length {:.1}, round trip {:?}",
        response.aggregate_stats.bsat_calls,
        response.aggregate_stats.average_xor_length(),
        response.round_trip
    );
    println!("coverage of (a/8, b/8) buckets (each bucket is an 8×8 sub-square):");
    let mut buckets: Vec<_> = bucket_hits.iter().collect();
    buckets.sort();
    for ((qa, qb), hits) in buckets {
        println!("  bucket ({qa}, {qb}): {hits} stimuli");
    }
    println!(
        "distinct buckets exercised: {} (uniform stimuli spread the tests across the legal space)",
        bucket_hits.len()
    );
    Ok(())
}
