//! Quickstart: sample almost-uniform witnesses of a CNF constraint through
//! the service API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a small constraint the way a constrained-random
//! verification front end would — a circuit whose inputs are the stimulus
//! bits — then constructs UniGen through the unified [`SamplerBuilder`]
//! entry point, submits one typed [`SampleRequest`] to a [`SamplerService`],
//! streams the witnesses as their index-ordered prefix completes, and
//! finishes with the response's aggregate statistics (no hand-rolled
//! accumulation loop: [`unigen::SampleResponse::aggregate_stats`] already
//! folds every outcome with `SampleStats::accumulate`).

use unigen::{PreparedMode, SampleRequest, SamplerBuilder, ServiceConfig};
use unigen_circuit::{tseitin, CircuitBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit adder with a constraint on its sum: "generate operand pairs
    // whose low four sum bits spell 0b1010".
    let mut builder = CircuitBuilder::new("quickstart");
    let a = builder.input_word("a", 8);
    let b = builder.input_word("b", 8);
    let sum = builder.add(&a, &b);
    builder.output_word("sum", &sum);
    let circuit = builder.finish();

    let mut encoding = tseitin::encode(&circuit);
    for (bit, value) in [(0, false), (1, true), (2, false), (3, true)] {
        encoding.assert_node(sum.bit(bit), value);
    }
    let formula = encoding.into_formula();

    println!(
        "constraint: {} variables, {} clauses, {} xor clauses, sampling set of {}",
        formula.num_vars(),
        formula.num_clauses(),
        formula.num_xor_clauses(),
        formula.sampling_set_or_all().len()
    );

    // Prepare UniGen once through the unified builder (tolerance ε = 6, the
    // paper's setting) …
    let sampler = SamplerBuilder::unigen(&formula)
        .epsilon(6.0)
        .seed(42)
        .build()?;
    match sampler.as_unigen().expect("a UniGen spec").prepared_mode() {
        PreparedMode::Enumerated { witnesses } => {
            println!(
                "preparation: formula is small, {} witnesses enumerated",
                witnesses.len()
            );
        }
        PreparedMode::Hashed { approx_count, q } => {
            println!(
                "preparation: ApproxMC estimate |R_F| ≈ {approx_count}, hash widths {{{}..{q}}}",
                q.saturating_sub(3)
            );
        }
    }

    // … spawn the persistent service (workers clone the prepared sampler
    // once, here) and stream one request's witnesses as they complete.
    let service = unigen::SamplerService::new(sampler, ServiceConfig::default().with_workers(2));
    let sampling_set = formula.sampling_set_or_all();
    let mut handle = service.submit(SampleRequest::new(5, 42));
    for (i, outcome) in handle.by_ref().enumerate() {
        match outcome.witness {
            Some(witness) => {
                let stimulus = witness.project(&sampling_set);
                let a_value: u64 = (0..8).fold(0, |acc, bit| {
                    acc | (u64::from(stimulus.values()[bit]) << bit)
                });
                let b_value: u64 = (0..8).fold(0, |acc, bit| {
                    acc | (u64::from(stimulus.values()[8 + bit]) << bit)
                });
                println!(
                    "witness {i}: a = {a_value:3}, b = {b_value:3}, (a+b) & 0xF = {:#06b}  [{} BSAT calls, avg xor length {:.1}]",
                    (a_value + b_value) & 0xF,
                    outcome.stats.bsat_calls,
                    outcome.stats.average_xor_length()
                );
            }
            None => println!("witness {i}: ⊥ (the generator is allowed to fail occasionally)"),
        }
    }

    // The full response is still available after streaming, with the
    // aggregate statistics pre-folded.
    let response = handle.wait();
    println!(
        "request round trip: {:?} for {} witnesses ({} BSAT calls, {} stolen work items, total queue wait {:?})",
        response.round_trip,
        response.successes(),
        response.aggregate_stats.bsat_calls,
        response.aggregate_stats.steals,
        response.aggregate_stats.queue_wait
    );
    Ok(())
}
