//! Quickstart: sample almost-uniform witnesses of a CNF constraint.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a small constraint the way a constrained-random
//! verification front end would — a circuit whose inputs are the stimulus
//! bits — and then asks UniGen for a handful of witnesses, printing each one
//! together with the work it cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::{PreparedMode, UniGen, UniGenConfig, WitnessSampler};
use unigen_circuit::{tseitin, CircuitBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit adder with a constraint on its sum: "generate operand pairs
    // whose low four sum bits spell 0b1010".
    let mut builder = CircuitBuilder::new("quickstart");
    let a = builder.input_word("a", 8);
    let b = builder.input_word("b", 8);
    let sum = builder.add(&a, &b);
    builder.output_word("sum", &sum);
    let circuit = builder.finish();

    let mut encoding = tseitin::encode(&circuit);
    for (bit, value) in [(0, false), (1, true), (2, false), (3, true)] {
        encoding.assert_node(sum.bit(bit), value);
    }
    let formula = encoding.into_formula();

    println!(
        "constraint: {} variables, {} clauses, {} xor clauses, sampling set of {}",
        formula.num_vars(),
        formula.num_clauses(),
        formula.num_xor_clauses(),
        formula.sampling_set_or_all().len()
    );

    // Prepare UniGen once (tolerance ε = 6, the paper's setting) …
    let mut sampler = UniGen::new(&formula, UniGenConfig::default())?;
    match sampler.prepared_mode() {
        PreparedMode::Enumerated { witnesses } => {
            println!(
                "preparation: formula is small, {} witnesses enumerated",
                witnesses.len()
            );
        }
        PreparedMode::Hashed { approx_count, q } => {
            println!(
                "preparation: ApproxMC estimate |R_F| ≈ {approx_count}, hash widths {{{}..{q}}}",
                q.saturating_sub(3)
            );
        }
    }

    // … then draw witnesses cheaply.
    let mut rng = StdRng::seed_from_u64(42);
    let sampling_set = formula.sampling_set_or_all();
    for i in 0..5 {
        let outcome = sampler.sample(&mut rng);
        match outcome.witness {
            Some(witness) => {
                let stimulus = witness.project(&sampling_set);
                let a_value: u64 = (0..8).fold(0, |acc, bit| {
                    acc | (u64::from(stimulus.values()[bit]) << bit)
                });
                let b_value: u64 = (0..8).fold(0, |acc, bit| {
                    acc | (u64::from(stimulus.values()[8 + bit]) << bit)
                });
                println!(
                    "witness {i}: a = {a_value:3}, b = {b_value:3}, (a+b) & 0xF = {:#06b}  [{} BSAT calls, avg xor length {:.1}]",
                    (a_value + b_value) & 0xF,
                    outcome.stats.bsat_calls,
                    outcome.stats.average_xor_length()
                );
            }
            None => println!("witness {i}: ⊥ (the generator is allowed to fail occasionally)"),
        }
    }
    Ok(())
}
