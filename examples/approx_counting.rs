//! Approximate vs exact model counting on CRV-style constraints.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example approx_counting
//! ```
//!
//! UniGen leans on `ApproxMC(F, 0.8, 0.8)` (line 9 of Algorithm 1) to locate
//! the right hash widths. This example shows that step in isolation: for a
//! few generated benchmarks it prints the exact count, the ApproxMC estimate
//! and whether the estimate landed inside the promised `1.8×` band.

use unigen_circuit::benchmarks;
use unigen_counting::{ApproxMc, ApproxMcConfig, ExactCounter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instances = vec![
        benchmarks::parity_chain("count-case", 12, 3, 4, 11),
        benchmarks::iscas_like("count-iscas", 10, 60, 3, 12),
        benchmarks::squaring("count-squaring", 5, 3, 13),
    ];

    let approx = ApproxMc::new(ApproxMcConfig::default());
    println!(
        "{:<16} {:>10} {:>12} {:>8} {:>14}",
        "instance", "exact", "approxmc", "ratio", "within 1.8x?"
    );
    for benchmark in instances {
        let exact = ExactCounter::new().count(&benchmark.formula)?;
        let estimate = approx.count(&benchmark.formula, 99)?;
        let ratio = if exact == 0 {
            f64::NAN
        } else {
            estimate.estimate as f64 / exact as f64
        };
        let within = (1.0 / 1.8..=1.8).contains(&ratio);
        println!(
            "{:<16} {:>10} {:>12} {:>8.3} {:>14}",
            benchmark.name, exact, estimate.estimate, ratio, within
        );
    }
    Ok(())
}
