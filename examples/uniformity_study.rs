//! A miniature of the paper's Figure 1 uniformity study.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example uniformity_study
//! ```
//!
//! The example takes a formula small enough to count exactly, draws the same
//! number of witnesses from UniGen and from the ideal uniform sampler US, and
//! prints the two count-of-counts histograms side by side together with
//! distance metrics. On any healthy run the two columns are statistically
//! indistinguishable — the paper's headline qualitative result.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::stats::WitnessFrequencies;
use unigen::{UniGen, UniGenConfig, UniformSampler, WitnessSampler};
use unigen_circuit::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = benchmarks::parity_chain("uniformity-demo", 10, 3, 3, 0xfee1);
    let formula = &benchmark.formula;
    let sampling_set = formula.sampling_set_or_all();

    let us = UniformSampler::new(formula)?;
    let witness_count = us.count();
    println!(
        "instance `{}`: |X| = {}, |S| = {}, |R_F| = {witness_count}",
        benchmark.name,
        formula.num_vars(),
        sampling_set.len()
    );

    let samples = 4_000;
    let mut rng = StdRng::seed_from_u64(0xfee1);

    let mut unigen = UniGen::new(formula, UniGenConfig::default())?;
    let mut unigen_freq = WitnessFrequencies::new();
    for _ in 0..samples {
        if let Some(witness) = unigen.sample(&mut rng).witness {
            unigen_freq.record(witness.project(&sampling_set).as_index());
        }
    }

    let mut us_freq = WitnessFrequencies::new();
    for _ in 0..samples {
        us_freq.record(us.sample_index(&mut rng) as u64);
    }

    println!("\ncount-of-counts ({} samples each):", samples);
    println!("{:>6} {:>10} {:>10}", "count", "UniGen", "US");
    let ug = unigen_freq.count_of_counts();
    let ideal = us_freq.count_of_counts();
    let keys: std::collections::BTreeSet<u64> = ug.keys().chain(ideal.keys()).copied().collect();
    for count in keys {
        println!(
            "{:>6} {:>10} {:>10}",
            count,
            ug.get(&count).copied().unwrap_or(0),
            ideal.get(&count).copied().unwrap_or(0)
        );
    }

    println!("\ndistance from the uniform distribution:");
    println!(
        "  UniGen: TV = {:.4}, KL = {:.4} bits",
        unigen_freq.total_variation_from_uniform(witness_count),
        unigen_freq.kl_divergence_from_uniform(witness_count)
    );
    println!(
        "  US    : TV = {:.4}, KL = {:.4} bits",
        us_freq.total_variation_from_uniform(witness_count),
        us_freq.kl_divergence_from_uniform(witness_count)
    );
    Ok(())
}
