//! The CDCL search loop, with incremental solving under assumptions and
//! assumption-guarded constraint layers.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unigen_cnf::{Clause, CnfFormula, Lit, Model, Var, XorClause};

use std::sync::Arc;

use crate::budget::Budget;
use crate::clause_db::{ClauseDb, ClauseRef, Watcher};
use crate::config::{GaussMode, SolverConfig};
use crate::decide::Vsids;
use crate::fault::{FaultHook, FaultSite, InterruptReason};
use crate::gauss::{BuildOutcome, GaussEngine, GaussResult};
use crate::proof::ProofLog;
use crate::restart::LubyRestarts;
use crate::stats::SolverStats;
use crate::xor_engine::{AddXor, XorEngine, XorPropagation, XorRef, XorState};

thread_local! {
    static CONSTRUCTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Largest LBD a learned clause may have and still survive a guard
/// retirement (glucose-style "core" clauses; binary clauses always survive).
const RETAINED_LBD_LIMIT: u32 = 4;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (together with all clauses added so far) is unsatisfiable.
    Unsat,
    /// No definite answer, for an untyped reason. Budget exhaustion and
    /// injected faults return [`SolveResult::Interrupted`] instead; this
    /// variant is kept distinct so callers can tell a typed, retryable
    /// interruption from a genuine "don't know".
    Unknown,
    /// The call was interrupted — by a fired [`Budget`] limit or an
    /// injected [`FaultHook`] — before a definite answer was reached;
    /// corresponds to a `BSAT` timeout in the paper's experiments.
    ///
    /// The solver is left at decision level zero with its trail, guards
    /// and learned-clause state consistent, so the caller may simply
    /// retry the call (the `interruption_leaves_*` tests pin this).
    Interrupted(InterruptReason),
}

impl SolveResult {
    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns `true` if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Returns the interruption reason, if the call was interrupted.
    pub fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self {
            SolveResult::Interrupted(reason) => Some(*reason),
            _ => None,
        }
    }

    /// Returns `true` if the call was interrupted (budget or fault).
    pub fn is_interrupted(&self) -> bool {
        matches!(self, SolveResult::Interrupted(_))
    }
}

/// Handle to an *activation guard*: a fresh solver-internal variable `g` that
/// gates a layer of constraints added with [`Solver::add_xor_under`] /
/// [`Solver::add_clause_under`].
///
/// The guarded constraints are enabled by solving under the assumption `¬g`
/// ([`Guard::assumption`]) and permanently disabled by
/// [`Solver::retire_guard`], which asserts `g` at the top level and removes
/// every clause that mentions the guard. Learned clauses whose derivation
/// used a guarded constraint contain `g` (the guard is falsified at an
/// assumption decision level, never at level zero), so they are exactly the
/// clauses removed at retirement — everything the solver learned about the
/// base formula survives from one cell to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard(Var);

impl Guard {
    /// The guard's activation variable.
    pub fn var(&self) -> Var {
        self.0
    }

    /// The literal to assume (via [`Solver::solve_under_assumptions`]) while
    /// the guarded constraint layer should be active.
    pub fn assumption(&self) -> Lit {
        self.0.negative()
    }

    /// The literal whose truth disables the guarded layer (asserted by
    /// [`Solver::retire_guard`]).
    pub fn disable_lit(&self) -> Lit {
        self.0.positive()
    }
}

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Branching decision (or an assumption).
    Decision,
    /// Implied by a CNF clause.
    Clause(ClauseRef),
    /// Implied by an xor constraint.
    Xor(XorRef),
    /// Implied by a Gauss–Jordan matrix row; the antecedents were stored
    /// eagerly in the gauss engine, keyed by the implied variable.
    Gauss,
    /// Asserted at level zero with no recorded antecedent (top-level unit).
    Unit,
}

/// The source of a conflict discovered during propagation.
#[derive(Debug, Clone, Copy)]
enum ConflictSource {
    Clause(ClauseRef),
    Xor(XorRef),
    /// Conflict found by a Gauss–Jordan matrix; the clause literals were
    /// stored eagerly in the gauss engine.
    Gauss,
}

/// A conflict-driven clause-learning SAT solver with native xor support and
/// an incremental interface (assumptions + guarded constraint layers).
///
/// See the crate-level documentation for an overview and an example. The
/// solver is deterministic for a fixed [`SolverConfig::seed`] and input
/// formula, which keeps every experiment in this repository reproducible.
///
/// The solver is `Clone + Send`: every field is owned plain data (the clause
/// arena, the xor engine, the trail, VSIDS state — no `Rc`, no interior
/// mutability, no shared handles), so a prepared solver can be duplicated
/// for a parallel sampler worker and moved to its thread. Keeping it that
/// way is load-bearing for `unigen::ParallelSampler`; the
/// `solver_is_send_sync_clone` test pins the property at compile time.
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    /// Variables belonging to the problem itself (guard variables allocated
    /// by [`Solver::new_guard`] live above this range and are excluded from
    /// extracted models).
    num_base_vars: usize,
    clauses: ClauseDb,
    xors: XorEngine,
    /// Current partial assignment, indexed by variable.
    assign: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason for each variable's assignment.
    reason: Vec<Reason>,
    /// Assignment trail in chronological order.
    trail: Vec<Lit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    vsids: Vsids,
    restarts: LubyRestarts,
    config: SolverConfig,
    /// False once a top-level conflict has been derived.
    ok: bool,
    stats: SolverStats,
    learned_limit: f64,
    /// Scratch space for conflict analysis.
    seen: Vec<bool>,
    /// Marks guard variables (indexed by variable).
    is_guard: Vec<bool>,
    /// Clauses mentioning each guard variable, deleted wholesale when the
    /// guard is retired.
    guarded_clauses: HashMap<u32, Vec<ClauseRef>>,
    /// Reusable buffer for xor propagation results.
    xor_scratch: Vec<XorPropagation>,
    /// Reusable marker buffer for clause minimisation.
    minimise_marked: Vec<bool>,
    /// Gauss–Jordan matrices over guarded xor layers.
    gauss: GaussEngine,
    /// Reusable buffer for gauss propagation results.
    gauss_scratch: Vec<GaussResult>,
    /// Guarded rows routed to the watched engine while their layer was
    /// below the Auto threshold (paired with their proof-stream ids, 0 when
    /// certify mode is off), remembered so a later batch that pushes the
    /// layer over the threshold can promote the *whole* layer into the
    /// matrix (the watched copies stay installed — redundant propagation
    /// is sound — so the matrix never reasons over a partial layer).
    watched_guard_rows: HashMap<u32, Vec<(XorClause, u64)>>,
}

impl Solver {
    /// Creates an empty solver over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Solver::with_config(num_vars, SolverConfig::default())
    }

    /// Creates an empty solver with an explicit configuration.
    pub fn with_config(num_vars: usize, config: SolverConfig) -> Self {
        CONSTRUCTIONS.with(|c| c.set(c.get() + 1));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let noise: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..1e-6)).collect();
        let mut solver = Solver {
            num_vars,
            num_base_vars: num_vars,
            clauses: ClauseDb::new(num_vars, config.clause_decay),
            xors: XorEngine::new(num_vars),
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::Unit; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            vsids: Vsids::new(num_vars, config.var_decay, config.default_polarity, &noise),
            restarts: LubyRestarts::new(config.restart_interval),
            learned_limit: config.learned_clause_limit as f64,
            config,
            ok: true,
            stats: SolverStats::default(),
            seen: vec![false; num_vars],
            is_guard: vec![false; num_vars],
            guarded_clauses: HashMap::new(),
            xor_scratch: Vec::new(),
            minimise_marked: vec![false; num_vars],
            gauss: GaussEngine::default(),
            gauss_scratch: Vec::new(),
            watched_guard_rows: HashMap::new(),
        };
        solver.gauss.set_tracking(solver.config.proof.is_some());
        solver
    }

    /// Builds a solver pre-loaded with all clauses and xor constraints of a
    /// formula.
    pub fn from_formula(formula: &CnfFormula) -> Self {
        Solver::from_formula_with_config(formula, SolverConfig::default())
    }

    /// Builds a solver pre-loaded with a formula, using an explicit
    /// configuration.
    pub fn from_formula_with_config(formula: &CnfFormula, config: SolverConfig) -> Self {
        let mut solver = Solver::with_config(formula.num_vars(), config);
        for clause in formula.clauses() {
            solver.add_clause(clause.clone());
        }
        for xor in formula.xor_clauses() {
            solver.add_xor_clause(xor.clone());
        }
        solver
    }

    /// Number of `Solver` values constructed on the current thread since it
    /// started.
    ///
    /// This exists so tests can assert that the samplers reuse one
    /// incremental solver per top-level call instead of rebuilding one per
    /// hash cell (cloning a solver does not count as a construction).
    pub fn constructions_on_thread() -> u64 {
        CONSTRUCTIONS.with(|c| c.get())
    }

    /// Returns the number of variables known to the solver (including guard
    /// variables).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of *base* (problem) variables; extracted models
    /// cover exactly this range. Guard variables allocated by
    /// [`Solver::new_guard`] are excluded.
    pub fn num_base_vars(&self) -> usize {
        self.num_base_vars
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Installs (or, with `None`, removes) the injectable fault oracle.
    /// The hook is shared by reference, so one oracle can count calls
    /// across every clone of a prepared solver.
    pub fn set_fault_hook(&mut self, hook: Option<Arc<dyn FaultHook>>) {
        self.config.fault_hook = hook;
    }

    /// Runs `f` against the proof sink, if one is installed, after flushing
    /// any Gauss row derivations recorded since the last step — their
    /// `XorDerive` steps must precede whatever `f` writes, which may depend
    /// on the derived rows. A no-op single `Option` test when certify mode
    /// is off.
    pub(crate) fn with_proof(&mut self, f: impl FnOnce(&mut ProofLog)) {
        let Some(proof) = self.config.proof.as_mut() else {
            return;
        };
        if self.gauss.has_derives() {
            for d in self.gauss.take_derives() {
                proof.xor_derive(d.guard, &d.vars, d.rhs, &d.from);
            }
        }
        f(proof);
        self.stats.proof_steps = proof.steps();
        self.stats.proof_bytes = proof.len() as u64;
    }

    /// The proof stream recorded so far, or `None` when certify mode is off
    /// (no [`SolverConfig::proof`] sink installed). Takes `&mut self` so
    /// pending Gauss derivations can be flushed into the stream first.
    pub fn proof_bytes(&mut self) -> Option<&[u8]> {
        self.with_proof(|_| {});
        self.config.proof.as_ref().map(|p| p.bytes())
    }

    /// Returns the current Gauss–Jordan policy for guarded xor layers.
    pub fn gauss_mode(&self) -> GaussMode {
        self.config.gauss
    }

    /// Changes the Gauss–Jordan policy for layers added (or sealed) from
    /// now on; already-built matrices are unaffected. The samplers'
    /// degradation ladder uses this to retry a cell with
    /// [`GaussMode::Off`] after a poisoned seal.
    pub fn set_gauss_mode(&mut self, mode: GaussMode) {
        self.config.gauss = mode;
    }

    /// Returns `false` if a top-level conflict has already been derived (any
    /// further `solve` call will return `Unsat`).
    ///
    /// An `Unsat` answer from [`Solver::solve_under_assumptions`] does *not*
    /// make the solver inconsistent; only base-level unsatisfiability does.
    pub fn is_consistent(&self) -> bool {
        self.ok
    }

    /// Grows the variable range to at least `num_vars` base variables.
    ///
    /// # Panics
    ///
    /// Panics if guard variables have already been allocated and the new
    /// base range would span them: base variables are positional in
    /// extracted models, so they must all sit below every guard. Add base
    /// variables before creating guards (every sampler in the workspace
    /// loads the formula first and allocates guards per cell afterwards).
    pub fn ensure_vars(&mut self, num_vars: usize) {
        assert!(
            num_vars <= self.num_base_vars || self.num_base_vars == self.num_vars,
            "cannot widen the base variable range past existing guard variables"
        );
        self.grow_storage(num_vars);
        self.num_base_vars = self.num_base_vars.max(num_vars);
    }

    /// Grows the backing storage without widening the base-variable range
    /// (used for guard variables).
    fn grow_storage(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        let old = self.num_vars;
        self.num_vars = num_vars;
        self.assign.resize(num_vars, None);
        self.level.resize(num_vars, 0);
        self.reason.resize(num_vars, Reason::Unit);
        self.seen.resize(num_vars, false);
        self.is_guard.resize(num_vars, false);
        self.minimise_marked.resize(num_vars, false);
        self.clauses.grow_to(num_vars);
        self.xors.grow_to(num_vars);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ num_vars as u64);
        let noise: Vec<f64> = (old..num_vars).map(|_| rng.gen_range(0.0..1e-6)).collect();
        self.vsids.grow_to(num_vars, &noise);
    }

    /// Grows storage to cover every literal of `lits`, widening the base
    /// range only for non-guard variables.
    fn ensure_clause_vars(&mut self, lits: &[Lit]) {
        let mut overall = 0usize;
        let mut base = 0usize;
        for &l in lits {
            let n = l.var().index() + 1;
            overall = overall.max(n);
            if n > self.num_vars || !self.is_guard[l.var().index()] {
                base = base.max(n);
            }
        }
        assert!(
            base <= self.num_base_vars || self.num_base_vars == self.num_vars,
            "cannot widen the base variable range past existing guard variables"
        );
        self.grow_storage(overall);
        self.num_base_vars = self.num_base_vars.max(base);
    }

    /// Allocates a fresh activation guard.
    ///
    /// The guard variable is excluded from extracted models. Constraints are
    /// attached to the guard with [`Solver::add_xor_under`] and
    /// [`Solver::add_clause_under`]; they take effect only while
    /// [`Guard::assumption`] is assumed and are removed for good by
    /// [`Solver::retire_guard`].
    pub fn new_guard(&mut self) -> Guard {
        self.backtrack_to(0);
        let index = self.num_vars;
        self.grow_storage(index + 1);
        self.is_guard[index] = true;
        self.stats.guards_created += 1;
        let var = Var::new(index);
        self.with_proof(|p| p.new_guard(var));
        Guard(var)
    }

    /// Adds a CNF clause. May be called between `solve` calls (the solver is
    /// first unwound to decision level zero).
    ///
    /// Tautological clauses are ignored; the empty clause makes the solver
    /// permanently inconsistent.
    pub fn add_clause(&mut self, clause: Clause) {
        if clause.is_tautology() {
            return;
        }
        let lits: Vec<Lit> = clause.iter().copied().collect();
        // Logged with the caller's original literals: `add_clause_lits` may
        // strip level-zero-false literals, but the logged (weaker) clause
        // is UP-equivalent under the units that justified the stripping.
        self.with_proof(|p| p.axiom(&lits));
        self.add_clause_lits(lits);
    }

    /// Adds a CNF clause under a guard: the clause is weakened with the
    /// guard's disable literal, so it binds only while the guard is assumed
    /// and disappears when the guard is retired. This is how the enumerator
    /// scopes its per-cell blocking clauses.
    pub fn add_clause_under(&mut self, clause: Clause, guard: Guard) {
        if clause.is_tautology() {
            return;
        }
        let mut lits: Vec<Lit> = clause.iter().copied().collect();
        if !lits.contains(&guard.disable_lit()) {
            lits.push(guard.disable_lit());
        }
        self.with_proof(|p| p.guarded_clause(&lits));
        self.add_clause_lits(lits);
    }

    fn add_clause_lits(&mut self, clause: Vec<Lit>) {
        self.ensure_clause_vars(&clause);
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        // Remove literals already false at level zero and drop the clause if
        // any literal is already true at level zero.
        let mut lits: Vec<Lit> = Vec::with_capacity(clause.len());
        for &lit in &clause {
            match self.lit_value(lit) {
                Some(true) => return,
                Some(false) => {}
                None => lits.push(lit),
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(lits[0], Reason::Unit);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let cref = self.clauses.add_clause(&lits, false, 0);
                self.register_guarded(cref, &lits);
            }
        }
    }

    /// Records `cref` against every guard variable it mentions, so retiring
    /// the guard can delete it.
    fn register_guarded(&mut self, cref: ClauseRef, lits: &[Lit]) {
        for &l in lits {
            let i = l.var().index();
            if self.is_guard[i] {
                self.guarded_clauses.entry(i as u32).or_default().push(cref);
            }
        }
    }

    /// Adds an xor constraint. May be called between `solve` calls.
    pub fn add_xor_clause(&mut self, xor: XorClause) {
        self.add_xor_with_guard(xor, None);
    }

    /// Adds an xor constraint under a guard: the constraint represents
    /// `g ∨ (xor)` and so is active only while [`Guard::assumption`] is
    /// assumed. Retiring the guard removes the constraint (and every learned
    /// clause derived from it).
    pub fn add_xor_under(&mut self, xor: XorClause, guard: Guard) {
        self.add_xor_with_guard(xor, Some(guard));
    }

    fn add_xor_with_guard(&mut self, xor: XorClause, guard: Option<Guard>) {
        if let Some(max) = xor.max_var() {
            self.ensure_vars(max.index() + 1);
        }
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        let guard_lit = guard.map(|g| g.disable_lit());
        // Every row is logged once, at add time, whatever propagation path
        // it takes below: the checker derives the row's CNF expansion
        // itself, so watched propagation, matrix implications (via the
        // derives recorded at scan time), and the degenerate unit/empty
        // cases all check against the same logged row.
        let mut xor_id = 0u64;
        if self.config.proof.is_some() {
            let guard_var = guard.map(|g| g.var());
            self.with_proof(|p| xor_id = p.xor_row(guard_var, &xor));
        }
        // Non-degenerate guarded rows are deferred: the gauss engine
        // collects a guard's whole layer and decides at the next solve
        // (the *seal* point) whether it becomes a Gauss–Jordan matrix or
        // falls back to watched propagation. Degenerate rows (empty/unit
        // after normalisation) combine with the guard immediately below.
        if let Some(g) = guard_lit {
            if xor.len() >= 2 && self.config.gauss != GaussMode::Off {
                self.gauss.push_pending(g.var().index() as u32, xor, xor_id);
                return;
            }
        }
        self.install_watched_xor(&xor, guard_lit);
    }

    /// Adds an xor constraint to the watched-variable engine, resolving
    /// degenerate rows against the guard: an empty unsatisfiable row under
    /// a guard is the unit clause `g` (the guarded layer is unsatisfiable,
    /// not the solver), and a unit row under a guard is the binary clause
    /// `g ∨ lit`.
    fn install_watched_xor(&mut self, xor: &XorClause, guard_lit: Option<Lit>) {
        match self.xors.add(xor, guard_lit) {
            AddXor::Tautology => {}
            AddXor::Unsatisfiable => match guard_lit {
                // `g ∨ ⊥` is the unit clause `g`: the guarded layer is
                // unsatisfiable, so solving under the guard's assumption
                // reports Unsat while the solver stays consistent.
                Some(g) => self.assert_level_zero(g, Reason::Unit),
                None => self.ok = false,
            },
            AddXor::Unit(var, value) => match guard_lit {
                // `g ∨ lit` is an ordinary guarded binary clause.
                Some(g) => self.add_clause_lits(vec![var.lit(value), g]),
                None => match self.value(var) {
                    Some(current) if current != value => self.ok = false,
                    Some(_) => {}
                    None => {
                        self.enqueue(var.lit(value), Reason::Unit);
                        if self.propagate().is_some() {
                            self.ok = false;
                        }
                    }
                },
            },
            AddXor::Stored(xref) => {
                // Some variables may already be assigned at level zero: move
                // the watches onto unassigned variables and resolve any
                // implication or violation the level-zero trail produces.
                let state = {
                    let assign = &self.assign;
                    self.xors.position_watches(xref, |v| assign[v.index()]);
                    self.xors.probe(xref, |v| assign[v.index()])
                };
                match (state, guard_lit) {
                    (XorState::Open | XorState::Satisfied, _) => {}
                    (XorState::Implied(lit), None) => match self.lit_value(lit) {
                        Some(true) => {}
                        Some(false) => self.ok = false,
                        None => {
                            self.enqueue(lit, Reason::Xor(xref));
                            if self.propagate().is_some() {
                                self.ok = false;
                            }
                        }
                    },
                    // Guard unassigned: `g ∨ …` still has two free literals;
                    // the guard-activation event will fire the implication.
                    (XorState::Implied(_), Some(_)) => {}
                    (XorState::Violated, None) => self.ok = false,
                    // All variables assigned against the parity: `g ∨ lits`
                    // is unit on the guard.
                    (XorState::Violated, Some(g)) => {
                        self.assert_level_zero(g, Reason::Xor(xref));
                    }
                }
            }
        }
    }

    /// Enqueues a literal at level zero (if not already satisfied) and
    /// propagates, recording inconsistency.
    fn assert_level_zero(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.decision_level(), 0);
        match self.lit_value(lit) {
            Some(true) => {}
            Some(false) => self.ok = false,
            None => {
                self.enqueue(lit, reason);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
        }
    }

    /// Compiles every pending guarded xor layer: layers at or above the
    /// configured row threshold become Gauss–Jordan matrices, smaller ones
    /// fall back to watched-variable propagation. Any level-zero
    /// consequence (a jointly unsatisfiable layer reduces to the unit
    /// clause `g`; rows violated by level-zero units imply `g`) is asserted
    /// here, before search begins.
    ///
    /// Returns `true` if an injected fault poisoned the seal: no pending
    /// layer was consumed (they all stay pending), so a retry — typically
    /// after switching to [`GaussMode::Off`] — sees the same layers.
    fn seal_gauss_layers(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.gauss.has_pending() {
            return false;
        }
        if let Some(hook) = &self.config.fault_hook {
            if hook.trip(FaultSite::GaussSeal) {
                return true;
            }
        }
        for (key, rows) in self.gauss.take_pending() {
            if !self.ok {
                return false;
            }
            let guard_lit = Var::new(key as usize).positive();
            // The Auto threshold judges the guard's whole layer — matrix
            // rows from earlier solves, rows previously routed to the
            // watched engine, and this batch. A guard with a matrix keeps
            // extending it, and crossing the threshold late promotes the
            // earlier watched rows into the matrix, so the matrix never
            // reasons over a partial layer.
            let existing = self.gauss.matrix_rows(key);
            let watched = self.watched_guard_rows.get(&key).map_or(0, Vec::len);
            let use_matrix = match self.config.gauss {
                GaussMode::On => true,
                GaussMode::Auto => {
                    existing > 0
                        || rows.len() + existing + watched >= self.config.gauss_auto_threshold
                }
                GaussMode::Off => false,
            };
            if !use_matrix {
                for (xor, _) in &rows {
                    if !self.ok {
                        return false;
                    }
                    self.install_watched_xor(xor, Some(guard_lit));
                }
                if self.config.gauss == GaussMode::Auto {
                    self.watched_guard_rows.entry(key).or_default().extend(rows);
                }
                continue;
            }
            let mut rows = rows;
            if let Some(promoted) = self.watched_guard_rows.remove(&key) {
                // Earlier sub-threshold batches live in the watched engine;
                // give the matrix the whole layer (the duplicated watched
                // propagation is sound).
                rows.extend(promoted);
            }
            let outcome = {
                let assign = &self.assign;
                self.gauss
                    .build(key, guard_lit, &rows, |v| assign[v.index()])
            };
            match outcome {
                BuildOutcome::LayerUnsat => {
                    // The rows combine to `0 = 1`: the guarded layer
                    // contributes exactly the unit clause `g`.
                    self.assert_level_zero(guard_lit, Reason::Unit);
                }
                BuildOutcome::Built { added, fresh } => {
                    if fresh {
                        self.stats.gauss_matrices += 1;
                    }
                    self.stats.gauss_rows += added as u64;
                    if added == 0 {
                        continue;
                    }
                    // Level-zero units may already satisfy or violate rows.
                    let mut results = std::mem::take(&mut self.gauss_scratch);
                    results.clear();
                    {
                        let assign = &self.assign;
                        self.gauss
                            .scan_matrix(key, &|v: Var| assign[v.index()], &mut results);
                    }
                    if self.apply_gauss_results(&mut results).is_some() {
                        self.ok = false;
                    }
                    self.gauss_scratch = results;
                }
            }
        }
        self.stats.gauss_row_ops = self.gauss.row_ops;
        false
    }

    /// Enqueues the implications a gauss scan produced (storing their
    /// reasons for conflict analysis) and converts violated implications
    /// into conflicts. Returns the conflict source, if any.
    fn apply_gauss_results(&mut self, results: &mut Vec<GaussResult>) -> Option<ConflictSource> {
        let mut conflict = None;
        for result in results.drain(..) {
            if conflict.is_some() {
                break;
            }
            match result {
                GaussResult::Implied { lit, reason } => match self.lit_value(lit) {
                    Some(true) => {}
                    Some(false) => {
                        // The row forces `lit`, which is already false: the
                        // entailed clause `reason ∨ lit` is the conflict.
                        let mut lits = reason;
                        lits.push(lit);
                        self.gauss.set_conflict(lits);
                        self.stats.gauss_conflicts += 1;
                        conflict = Some(ConflictSource::Gauss);
                    }
                    None => {
                        self.stats.gauss_propagations += 1;
                        self.gauss.store_reason(lit.var(), reason);
                        self.enqueue(lit, Reason::Gauss);
                    }
                },
                GaussResult::Conflict => {
                    self.stats.gauss_conflicts += 1;
                    conflict = Some(ConflictSource::Gauss);
                }
            }
        }
        conflict
    }

    /// Retires a guard: deletes every clause and xor constraint attached to
    /// it (including learned clauses whose derivation depended on the guarded
    /// layer — they all mention the guard literal) and asserts the guard's
    /// disable literal at the top level. The guard must not be used again.
    pub fn retire_guard(&mut self, guard: Guard) {
        self.backtrack_to(0);
        debug_assert!(self.is_guard[guard.var().index()], "retiring a non-guard");
        self.stats.guards_retired += 1;
        // One step covers the wholesale deletion: the checker drops every
        // clause mentioning the guard itself and installs the unit `g`.
        let guard_var = guard.var();
        self.with_proof(|p| p.retire_guard(guard_var));
        let key = guard.var().index() as u32;
        let mut retired_learned = 0u64;
        if let Some(list) = self.guarded_clauses.remove(&key) {
            let mut deleted: Vec<ClauseRef> = Vec::with_capacity(list.len());
            for cref in list {
                if !self.clauses.is_deleted(cref) {
                    if self.clauses.is_learned(cref) {
                        retired_learned += 1;
                    }
                    self.clauses.delete(cref);
                    deleted.push(cref);
                }
            }
            // Drop the dead watch entries now instead of letting propagation
            // stumble over them until the next garbage collection.
            self.clauses.sweep_deleted_watchers(&deleted);
        }
        self.xors.retire(guard.var());
        self.gauss.retire(guard.var());
        self.watched_guard_rows
            .remove(&(guard.var().index() as u32));
        self.stats.guarded_learned_retired += retired_learned;
        // Keep only the glucose-style core of the remaining learned clauses:
        // across hash cells, high-LBD clauses cost more propagation work
        // than their pruning is worth, so a retirement is the natural point
        // to shed them. (Level-zero reasons are never dereferenced, so no
        // lock set is needed here.)
        let trimmed = self.clauses.trim_learned(RETAINED_LBD_LIMIT);
        self.log_deletions(&trimmed);
        self.stats.deleted_clauses += trimmed.len() as u64;
        self.stats.learned_clauses = self.clauses.num_learned() as u64;
        self.stats.learned_retained = self.stats.learned_clauses;
        if self.ok {
            // `¬g` can never be implied (no clause contains it), so this
            // either asserts a fresh unit or is a no-op.
            self.assert_level_zero(guard.disable_lit(), Reason::Unit);
        }
        self.maybe_collect_garbage();
    }

    /// Installs a blocking clause while a satisfying trail from
    /// [`Solver::solve_for_enumeration`] (with `keep_trail_on_sat`) is still
    /// in place: instead of unwinding to level zero and re-descending, the
    /// solver backjumps just far enough to unassign the clause's
    /// deepest-level literal — exactly the conflict-driven assertion scheme,
    /// applied to enumeration. Every literal of `lits` must be false under
    /// the current total assignment.
    pub(crate) fn block_and_continue(&mut self, mut lits: Vec<Lit>) {
        if !self.ok {
            return;
        }
        self.with_proof(|p| p.block(&lits));
        debug_assert!(lits.iter().all(|&l| self.lit_value(l) == Some(false)));
        let level_of = |s: &Self, l: Lit| s.level[l.var().index()];
        let max_level = lits.iter().map(|&l| level_of(self, l)).max().unwrap_or(0);
        if max_level == 0 || lits.len() < 2 {
            // Everything is forced at the top level: the cell is a single
            // (projected) witness. The ordinary add path handles the
            // resulting unit/empty clause.
            self.add_clause_lits(lits);
            return;
        }
        // Position a deepest literal first and the next-deepest second (the
        // watched pair after the backjump).
        let first = lits
            .iter()
            .position(|&l| level_of(self, l) == max_level)
            .expect("some literal is at the maximum level");
        lits.swap(0, first);
        let mut second = 1;
        for i in 2..lits.len() {
            if level_of(self, lits[i]) > level_of(self, lits[second]) {
                second = i;
            }
        }
        lits.swap(1, second);
        let second_level = level_of(self, lits[1]);
        self.backtrack_to(max_level - 1);
        let cref = self.clauses.add_clause(&lits, false, 0);
        self.register_guarded(cref, &lits);
        if second_level < max_level {
            // Exactly one literal was at the deepest level: after the
            // backjump the clause is unit on it, as in conflict analysis.
            debug_assert!(self.lit_value(lits[0]).is_none());
            self.enqueue(lits[0], Reason::Clause(cref));
        }
        // Otherwise two literals were unassigned by the backjump and the
        // clause is watched normally.
    }

    /// Unwinds any in-progress enumeration (used when an enumerator is
    /// dropped mid-cell, so the solver is back at level zero for whatever
    /// comes next).
    pub(crate) fn end_enumeration(&mut self) {
        self.backtrack_to(0);
    }

    /// Compacts the clause arena when enough of it is tombstoned. Only legal
    /// at decision level zero, where no clause reference is ever
    /// dereferenced as a reason.
    fn maybe_collect_garbage(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.clauses.should_collect() {
            return;
        }
        // Level-zero assignments never have their reasons inspected; null
        // them so no stale ClauseRef survives the compaction.
        for i in 0..self.trail.len() {
            let var = self.trail[i].var();
            self.reason[var.index()] = Reason::Unit;
        }
        let remap = self.clauses.collect_garbage();
        for list in self.guarded_clauses.values_mut() {
            *list = list
                .iter()
                .filter_map(|cref| remap.get(cref).copied())
                .collect();
        }
    }

    /// Solves the current formula with an unlimited budget.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_budget(&Budget::new())
    }

    /// Solves the current formula, giving up (with
    /// [`SolveResult::Interrupted`] carrying the typed reason) when the
    /// budget is exhausted. The solver stays consistent and the call can
    /// be retried.
    pub fn solve_with_budget(&mut self, budget: &Budget) -> SolveResult {
        self.solve_under_assumptions_with_budget(&[], budget)
    }

    /// Solves under the given assumptions with an unlimited budget.
    ///
    /// See [`Solver::solve_under_assumptions_with_budget`].
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_under_assumptions_with_budget(assumptions, &Budget::new())
    }

    /// Solves the formula under the given assumptions: the assumptions are
    /// installed as pseudo-decisions at the first decision levels (one level
    /// per assumption, in order), so conflict analysis treats them exactly
    /// like decisions and every learned clause that depends on an assumption
    /// contains its negation.
    ///
    /// Returns `Unsat` when the formula is unsatisfiable *under the
    /// assumptions*; this does not make the solver inconsistent unless the
    /// formula is unsatisfiable outright. The assumptions are released before
    /// returning (the solver is always left at decision level zero).
    ///
    /// # Panics
    ///
    /// Panics if an assumption mentions a variable unknown to the solver.
    pub fn solve_under_assumptions_with_budget(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
    ) -> SolveResult {
        self.solve_for_enumeration(assumptions, budget, false, false)
    }

    /// The solve entry point shared with the enumerator.
    ///
    /// With `warm`, the search resumes from the current (mid-enumeration)
    /// trail instead of unwinding to level zero first — the caller has just
    /// installed a blocking clause via [`Solver::block_and_continue`] and the
    /// descent below the backjump point is still valid. With
    /// `keep_trail_on_sat`, a `Sat` return leaves the satisfying trail in
    /// place so the next blocking clause can backjump instead of restarting.
    pub(crate) fn solve_for_enumeration(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
        warm: bool,
        keep_trail_on_sat: bool,
    ) -> SolveResult {
        let result = self.solve_for_enumeration_inner(assumptions, budget, warm, keep_trail_on_sat);
        if matches!(result, SolveResult::Unsat) {
            // Every Unsat answer — base-formula contradiction, exhausted
            // search, or a falsified assumption — is certified here, at the
            // single choke point all solve entry points route through: the
            // clause of negated assumptions is RUP over the steps logged so
            // far (the empty clause when there are no assumptions).
            self.with_proof(|p| p.unsat_under(assumptions));
        }
        result
    }

    fn solve_for_enumeration_inner(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
        warm: bool,
        keep_trail_on_sat: bool,
    ) -> SolveResult {
        self.stats.solve_calls += 1;
        if !warm {
            self.backtrack_to(0);
            self.restarts.reset();
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars,
                "assumption over an unknown variable"
            );
        }
        if let Some(hook) = &self.config.fault_hook {
            if hook.trip(FaultSite::SolveStart) {
                self.backtrack_to(0);
                return SolveResult::Interrupted(InterruptReason::FaultInjected);
            }
        }
        if self.decision_level() == 0 {
            if self.seal_gauss_layers() {
                return SolveResult::Interrupted(InterruptReason::GaussPoisoned);
            }
            if !self.ok {
                return SolveResult::Unsat;
            }
            if self.propagate().is_some() {
                self.ok = false;
                return SolveResult::Unsat;
            }
            self.maybe_collect_garbage();
        }

        let mut meter = budget.start();
        meter.set_conflict_baseline(self.stats.conflicts);
        meter.set_step_baseline(self.stats.propagations + self.stats.decisions);
        let mut restart_limit = self.restarts.next_limit();
        let mut conflicts_this_period: u64 = 0;

        loop {
            if let Some(reason) = meter.exhausted(
                self.stats.conflicts,
                self.stats.propagations + self.stats.decisions,
            ) {
                self.backtrack_to(0);
                return SolveResult::Interrupted(reason);
            }
            if let Some(hook) = &self.config.fault_hook {
                if hook.trip(FaultSite::SearchStep) {
                    self.backtrack_to(0);
                    return SolveResult::Interrupted(InterruptReason::FaultInjected);
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_period += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, backtrack_level, lbd) = self.analyze(conflict);
                self.backtrack_to(backtrack_level);
                self.attach_learnt(learnt, lbd);
                self.vsids.decay();
                self.clauses.decay_clauses();
                if self.clauses.num_learned() as f64 > self.learned_limit {
                    self.reduce_learned();
                }
                continue;
            }
            if conflicts_this_period >= restart_limit {
                conflicts_this_period = 0;
                restart_limit = self.restarts.next_limit();
                self.stats.restarts += 1;
                self.backtrack_to(0);
                continue;
            }
            // (Re-)establish pending assumptions as pseudo-decisions, one
            // decision level each.
            if (self.decision_level() as usize) < assumptions.len() {
                let a = assumptions[self.decision_level() as usize];
                match self.lit_value(a) {
                    Some(true) => {
                        // Already satisfied: open an empty level so every
                        // assumption keeps a fixed decision level.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The formula (plus earlier assumptions) falsifies
                        // this assumption: UNSAT under assumptions, while
                        // the solver itself stays consistent.
                        self.backtrack_to(0);
                        return SolveResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, Reason::Decision);
                    }
                }
                continue;
            }
            match self.pick_branch_variable() {
                None => {
                    // All variables assigned: model found.
                    let model = self.extract_model();
                    if !keep_trail_on_sat {
                        self.backtrack_to(0);
                    }
                    return SolveResult::Sat(model);
                }
                Some(var) => {
                    self.stats.decisions += 1;
                    let phase = self.vsids.saved_phase(var);
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(var.lit(phase), Reason::Decision);
                }
            }
        }
    }

    /// Returns the current value of a variable (meaningful mid-search or at
    /// level zero between calls).
    pub fn value(&self, var: Var) -> Option<bool> {
        self.assign[var.index()]
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| lit.evaluate(v))
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn extract_model(&self) -> Model {
        Model::new(
            self.assign[..self.num_base_vars]
                .iter()
                .map(|v| v.expect("model extraction requires a total assignment"))
                .collect(),
        )
    }

    fn pick_branch_variable(&mut self) -> Option<Var> {
        let assign = &self.assign;
        self.vsids.pop_unassigned(|v| assign[v.index()].is_some())
    }

    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert!(
            self.lit_value(lit).is_none(),
            "enqueueing an assigned literal"
        );
        let var = lit.var();
        self.assign[var.index()] = Some(lit.is_positive());
        self.level[var.index()] = self.decision_level();
        self.reason[var.index()] = reason;
        self.trail.push(lit);
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail is non-empty");
            let var = lit.var();
            self.vsids.save_phase(var, lit.is_positive());
            self.assign[var.index()] = None;
            self.reason[var.index()] = Reason::Unit;
            self.vsids.insert(var);
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.qhead.min(target);
    }

    /// Unit propagation over CNF clauses and xor constraints. Returns the
    /// conflicting constraint, if any.
    fn propagate(&mut self) -> Option<ConflictSource> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            if let Some(conflict) = self.propagate_clauses(lit) {
                return Some(conflict);
            }
            if let Some(conflict) = self.propagate_xors(lit.var()) {
                return Some(conflict);
            }
            if let Some(conflict) = self.propagate_gauss(lit.var()) {
                return Some(conflict);
            }
        }
        None
    }

    /// Propagates through CNF clauses watching `¬lit` (which just became
    /// false), using the standard two-pointer copy-back walk: entries are
    /// visited exactly once, satisfied clauses are skipped via their blocker
    /// literal without touching clause memory, and moved or deleted watchers
    /// are dropped in place.
    fn propagate_clauses(&mut self, lit: Lit) -> Option<ConflictSource> {
        let false_lit = !lit;
        let mut watchers = std::mem::take(self.clauses.watchers_mut(false_lit));
        let mut conflict = None;
        let mut i = 0;
        let mut j = 0;
        while i < watchers.len() {
            let watcher = watchers[i];
            i += 1;
            // Blocker check: if some other literal of the clause is already
            // true, the clause is satisfied — keep the watch, skip the rest.
            if self.lit_value(watcher.blocker) == Some(true) {
                watchers[j] = watcher;
                j += 1;
                continue;
            }
            let cref = watcher.cref;
            if self.clauses.is_deleted(cref) {
                continue; // drop the watcher
            }
            // Ensure the false literal is at position 1.
            if self.clauses.lit_at(cref, 0) == false_lit {
                self.clauses.swap_lits(cref, 0, 1);
            }
            debug_assert_eq!(self.clauses.lit_at(cref, 1), false_lit);
            // If the other watched literal is already true, keep watching
            // (and remember it as the new blocker).
            let first = self.clauses.lit_at(cref, 0);
            if first != watcher.blocker && self.lit_value(first) == Some(true) {
                watchers[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                continue;
            }
            // Look for a new literal to watch.
            let len = self.clauses.len(cref);
            let mut moved = false;
            for pos in 2..len {
                let candidate = self.clauses.lit_at(cref, pos);
                if self.lit_value(candidate) != Some(false) {
                    self.clauses.swap_lits(cref, 1, pos);
                    self.clauses.watchers_mut(candidate).push(Watcher {
                        cref,
                        blocker: first,
                    });
                    moved = true;
                    break;
                }
            }
            if moved {
                continue; // the watch left `false_lit`'s list
            }
            // Clause is unit or conflicting; keep the watch either way.
            watchers[j] = Watcher {
                cref,
                blocker: first,
            };
            j += 1;
            if self.lit_value(first) == Some(false) {
                conflict = Some(ConflictSource::Clause(cref));
                // Copy back the unprocessed suffix and stop; the caller
                // backtracks past the current level, so the remaining
                // watchers keep a valid watch.
                while i < watchers.len() {
                    watchers[j] = watchers[i];
                    j += 1;
                    i += 1;
                }
                break;
            }
            self.enqueue(first, Reason::Clause(cref));
        }
        watchers.truncate(j);
        *self.clauses.watchers_mut(false_lit) = watchers;
        conflict
    }

    /// Propagates through xor constraints watching the just-assigned
    /// variable.
    fn propagate_xors(&mut self, var: Var) -> Option<ConflictSource> {
        let mut results = std::mem::take(&mut self.xor_scratch);
        results.clear();
        {
            let assign = &self.assign;
            self.xors
                .on_assign(var, |v| assign[v.index()], &mut results);
        }
        let mut conflict = None;
        for result in results.drain(..) {
            if conflict.is_some() {
                break;
            }
            match result {
                XorPropagation::Implied { lit, xref } => match self.lit_value(lit) {
                    Some(true) => {}
                    Some(false) => conflict = Some(ConflictSource::Xor(xref)),
                    None => {
                        self.stats.xor_propagations += 1;
                        self.enqueue(lit, Reason::Xor(xref));
                    }
                },
                XorPropagation::Conflict { xref } => {
                    conflict = Some(ConflictSource::Xor(xref));
                }
            }
        }
        self.xor_scratch = results;
        conflict
    }

    /// Propagates through the Gauss–Jordan matrices touched by the
    /// just-assigned variable (re-pivoting rows whose basic variable it
    /// was), including guard-activation events.
    fn propagate_gauss(&mut self, var: Var) -> Option<ConflictSource> {
        if self.gauss.is_idle() {
            return None;
        }
        let mut results = std::mem::take(&mut self.gauss_scratch);
        results.clear();
        {
            let assign = &self.assign;
            self.gauss
                .on_assign(var, |v| assign[v.index()], &mut results);
        }
        let conflict = self.apply_gauss_results(&mut results);
        self.gauss_scratch = results;
        self.stats.gauss_row_ops = self.gauss.row_ops;
        conflict
    }

    /// Returns the antecedent literals of `lit` (the other literals of its
    /// reason constraint, all currently false).
    fn reason_lits(&mut self, lit: Lit) -> Vec<Lit> {
        match self.reason[lit.var().index()] {
            Reason::Decision | Reason::Unit => Vec::new(),
            Reason::Clause(cref) => {
                self.clauses.bump_clause(cref);
                self.clauses.iter_lits(cref).filter(|&l| l != lit).collect()
            }
            Reason::Xor(xref) => {
                let assign = &self.assign;
                self.xors.reason_lits(xref, lit, |v| assign[v.index()])
            }
            Reason::Gauss => self.gauss.reason_for(lit.var()).to_vec(),
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, conflict: ConflictSource) -> (Vec<Lit>, u32, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter: u32 = 0;
        let mut to_clear: Vec<Var> = Vec::new();

        let mut current_lits: Vec<Lit> = match conflict {
            ConflictSource::Clause(cref) => {
                self.clauses.bump_clause(cref);
                self.clauses.iter_lits(cref).collect()
            }
            ConflictSource::Xor(xref) => {
                let assign = &self.assign;
                self.xors.conflict_lits(xref, |v| assign[v.index()])
            }
            ConflictSource::Gauss => self.gauss.conflict_lits(),
        };

        let mut index = self.trail.len();
        let uip: Lit;

        loop {
            for &q in &current_lits {
                let var = q.var();
                if self.seen[var.index()] || self.level[var.index()] == 0 {
                    continue;
                }
                self.seen[var.index()] = true;
                to_clear.push(var);
                self.vsids.bump(var);
                if self.level[var.index()] >= current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }

            // Find the next trail literal that participates in the conflict.
            loop {
                debug_assert!(index > 0, "conflict analysis ran off the trail");
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                uip = p;
                break;
            }
            current_lits = self.reason_lits(p);
        }

        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(!uip);
        clause.extend(learnt);

        // Clause minimisation: drop literals whose reason is entirely covered
        // by other literals of the clause (cheap, non-recursive check).
        let minimised = self.minimise(clause);

        for var in to_clear {
            self.seen[var.index()] = false;
        }

        // Compute the backtrack level and place the literal with the highest
        // level (other than the asserting one) at position 1.
        let mut clause = minimised;
        let (backtrack_level, lbd) = if clause.len() == 1 {
            (0, 1)
        } else {
            let mut max_pos = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index()] > self.level[clause[max_pos].var().index()] {
                    max_pos = i;
                }
            }
            clause.swap(1, max_pos);
            let bt = self.level[clause[1].var().index()];
            let mut levels: Vec<u32> = clause.iter().map(|l| self.level[l.var().index()]).collect();
            levels.sort_unstable();
            levels.dedup();
            (bt, levels.len() as u32)
        };

        (clause, backtrack_level, lbd)
    }

    /// Removes redundant literals from a learnt clause: a literal is
    /// redundant if every antecedent of its variable is already present in
    /// the clause (local / non-recursive minimisation). Uses a persistent
    /// marker buffer instead of allocating one per conflict.
    fn minimise(&mut self, clause: Vec<Lit>) -> Vec<Lit> {
        for &lit in &clause {
            self.minimise_marked[lit.var().index()] = true;
        }
        let mut result = Vec::with_capacity(clause.len());
        for (i, &lit) in clause.iter().enumerate() {
            if i == 0 {
                result.push(lit);
                continue;
            }
            let redundant = match self.reason[lit.var().index()] {
                Reason::Decision | Reason::Unit => false,
                _ => {
                    let antecedents = self.reason_lits(!lit);
                    !antecedents.is_empty()
                        && antecedents.iter().all(|a| {
                            self.level[a.var().index()] == 0
                                || self.minimise_marked[a.var().index()]
                        })
                }
            };
            if !redundant {
                result.push(lit);
            }
        }
        for &lit in &clause {
            self.minimise_marked[lit.var().index()] = false;
        }
        result
    }

    fn attach_learnt(&mut self, clause: Vec<Lit>, lbd: u32) {
        // Logged exactly as stored (learned clauses are never stripped), so
        // a later deletion finds the clause by its literals.
        self.with_proof(|p| p.learned(&clause));
        self.stats.learned_clauses = self.clauses.num_learned() as u64;
        match clause.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                debug_assert_eq!(self.decision_level(), 0);
                if self.lit_value(clause[0]) == Some(false) {
                    self.ok = false;
                } else if self.lit_value(clause[0]).is_none() {
                    self.enqueue(clause[0], Reason::Unit);
                }
            }
            _ => {
                let asserting = clause[0];
                let cref = self.clauses.add_clause(&clause, true, lbd);
                self.register_guarded(cref, &clause);
                self.stats.learned_clauses = self.clauses.num_learned() as u64;
                debug_assert!(self.lit_value(asserting).is_none());
                self.enqueue(asserting, Reason::Clause(cref));
            }
        }
    }

    fn reduce_learned(&mut self) {
        let reason = &self.reason;
        let trail = &self.trail;
        let locked: HashSet<ClauseRef> = trail
            .iter()
            .filter_map(|l| match reason[l.var().index()] {
                Reason::Clause(cref) => Some(cref),
                _ => None,
            })
            .collect();
        let deleted = self.clauses.reduce(|cref| locked.contains(&cref));
        self.log_deletions(&deleted);
        self.stats.deleted_clauses += deleted.len() as u64;
        self.stats.learned_clauses = self.clauses.num_learned() as u64;
        self.learned_limit *= self.config.learned_clause_growth;
    }

    /// Logs a `Delete` step for each just-tombstoned clause (their literals
    /// stay readable until the next garbage collection).
    fn log_deletions(&mut self, crefs: &[ClauseRef]) {
        if self.config.proof.is_none() {
            return;
        }
        for &cref in crefs {
            let lits: Vec<Lit> = self.clauses.iter_lits(cref).collect();
            self.with_proof(|p| p.delete(&lits));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::dimacs;

    fn solve_text(text: &str) -> (CnfFormula, SolveResult) {
        let formula = dimacs::parse(text).expect("valid DIMACS");
        let mut solver = Solver::from_formula(&formula);
        let result = solver.solve();
        (formula, result)
    }

    #[test]
    fn solver_is_send_sync_clone() {
        // The parallel batch engine clones a prepared solver per worker and
        // moves the clone to the worker's thread. If a future change slips
        // an `Rc`, a raw pointer, or a `RefCell` into the solver (or any of
        // its components), this stops compiling rather than failing at a
        // distance.
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<Solver>();
    }

    #[test]
    fn trivial_sat() {
        let (f, result) = solve_text("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn trivial_unsat() {
        let (_, result) = solve_text("p cnf 1 2\n1 0\n-1 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let (_, result) = solve_text("p cnf 3 0\n");
        assert!(result.is_sat());
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1; both pigeons must be placed, hole holds at most one.
        let (_, result) = solve_text("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn pigeonhole_php_4_3_is_unsat() {
        // 4 pigeons, 3 holes. Variables p_{i,j} = 3*(i-1)+j for i in 1..=4, j in 1..=3.
        let mut f = CnfFormula::new(12);
        let var = |i: usize, j: usize| Lit::from_dimacs((3 * (i - 1) + j) as i64);
        for i in 1..=4 {
            f.add_clause([var(i, 1), var(i, 2), var(i, 3)]).unwrap();
        }
        for j in 1..=3 {
            for i1 in 1..=4 {
                for i2 in (i1 + 1)..=4 {
                    f.add_clause([!var(i1, j), !var(i2, j)]).unwrap();
                }
            }
        }
        let mut solver = Solver::from_formula(&f);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn xor_only_formula() {
        let (f, result) = solve_text("p cnf 3 2\nx 1 2 3 0\nx 1 2 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn contradictory_xors_are_unsat() {
        // x1 ⊕ x2 = 1 and x1 ⊕ x2 = 0.
        let (_, result) = solve_text("p cnf 2 2\nx 1 2 0\nx -1 2 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn mixed_cnf_and_xor() {
        let (f, result) = solve_text("p cnf 4 4\n1 2 0\n-1 3 0\nx 1 2 3 4 0\n-4 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn xor_chain_forces_unique_solution() {
        // x1 = 1, x1⊕x2 = 1, x2⊕x3 = 1, x3⊕x4 = 1 forces 1,0,1,0.
        let text = "p cnf 4 4\nx 1 0\nx 1 2 0\nx 2 3 0\nx 3 4 0\n";
        let (f, result) = solve_text(text);
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
        assert_eq!(model.values(), &[true, false, true, false]);
    }

    #[test]
    fn incremental_blocking_enumerates_all_models() {
        // x1 ∨ x2 has three models.
        let formula = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&formula);
        let mut found = Vec::new();
        loop {
            match solver.solve() {
                SolveResult::Sat(model) => {
                    found.push(model.clone());
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause(Clause::new(blocking));
                }
                SolveResult::Unsat => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn budget_exhaustion_returns_typed_interruption() {
        // A formula hard enough to need more than zero conflicts.
        let mut f = CnfFormula::new(20);
        // Random-ish xor system plus clauses: just ensure >0 conflicts needed.
        for i in 1..=17 {
            f.add_xor_clause(XorClause::from_dimacs([i, i + 1, i + 2], i % 2 == 0))
                .unwrap();
        }
        for i in 1..=18 {
            f.add_clause([
                Lit::from_dimacs(i as i64),
                Lit::from_dimacs(-(i as i64 + 1)),
            ])
            .unwrap();
        }
        let mut solver = Solver::from_formula(&f);
        let budget = Budget::new().with_conflict_limit(0);
        let result = solver.solve_with_budget(&budget);
        // A zero-conflict budget fires on the first loop check, with the
        // typed reason; the solver must stay consistent and retryable.
        assert_eq!(
            result.interrupt_reason(),
            Some(InterruptReason::ConflictLimit)
        );
        assert!(solver.is_consistent());
        let follow_up = solver.solve();
        assert!(matches!(
            follow_up,
            SolveResult::Sat(_) | SolveResult::Unsat
        ));
    }

    #[test]
    fn step_limit_interrupts_at_the_same_point_everywhere() {
        let f = dimacs::parse("p cnf 6 4\n1 2 3 0\n-1 4 0\n-2 5 0\nx 4 5 6 0\n").unwrap();
        let budget = Budget::new().with_step_limit(1);
        let run = |seed: u64| {
            let config = SolverConfig {
                seed,
                ..SolverConfig::default()
            };
            let mut solver = Solver::from_formula_with_config(&f, config);
            let result = solver.solve_with_budget(&budget);
            let steps = solver.stats().propagations + solver.stats().decisions;
            (result, steps, solver)
        };
        let (r1, s1, mut solver) = run(7);
        let (r2, s2, _) = run(7);
        assert_eq!(r1.interrupt_reason(), Some(InterruptReason::StepLimit));
        assert_eq!(r1, r2);
        assert_eq!(s1, s2, "step metering must be host-independent");
        // The interrupted solver retries to completion.
        let model = solver.solve().model().cloned().expect("satisfiable");
        assert!(f.evaluate(&model));
    }

    /// A hook that trips a fixed number of times at one site, then goes
    /// quiet — the smallest deterministic fault schedule.
    #[derive(Debug)]
    struct TripTimes {
        site: FaultSite,
        remaining: std::sync::atomic::AtomicU64,
    }

    impl TripTimes {
        fn new(site: FaultSite, times: u64) -> Arc<Self> {
            Arc::new(TripTimes {
                site,
                remaining: std::sync::atomic::AtomicU64::new(times),
            })
        }
    }

    impl FaultHook for TripTimes {
        fn trip(&self, site: FaultSite) -> bool {
            use std::sync::atomic::Ordering;
            if site != self.site {
                return false;
            }
            self.remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        }
    }

    #[test]
    fn injected_solve_start_fault_is_retryable() {
        let f = dimacs::parse("p cnf 3 2\n1 2 0\n-1 3 0\n").unwrap();
        let mut baseline = Solver::from_formula(&f);
        let expected = baseline.solve().model().cloned().expect("satisfiable");

        let mut solver = Solver::from_formula(&f);
        solver.set_fault_hook(Some(TripTimes::new(FaultSite::SolveStart, 1)));
        assert_eq!(
            solver.solve().interrupt_reason(),
            Some(InterruptReason::FaultInjected)
        );
        assert!(solver.is_consistent());
        // The retry is bit-identical to the fault-free run.
        let model = solver.solve().model().cloned().expect("satisfiable");
        assert_eq!(model, expected);
    }

    #[test]
    fn poisoned_gauss_seal_keeps_the_layer_pending() {
        let f = dimacs::parse("p cnf 4 1\n1 2 3 4 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        solver.set_fault_hook(Some(TripTimes::new(FaultSite::GaussSeal, 1)));
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], true), guard);
        let poisoned = solver.solve_under_assumptions(&[guard.assumption()]);
        assert_eq!(
            poisoned.interrupt_reason(),
            Some(InterruptReason::GaussPoisoned)
        );
        // Nothing was consumed: the retry seals and solves the same layer.
        let retried = solver.solve_under_assumptions(&[guard.assumption()]);
        let model = retried.model().expect("cell is satisfiable");
        assert!(model.value(Var::from_dimacs(1)) != model.value(Var::from_dimacs(2)));
        assert!(model.value(Var::from_dimacs(2)) != model.value(Var::from_dimacs(3)));
        solver.retire_guard(guard);
        assert!(solver.solve().is_sat());
        assert_eq!(solver.stats().guards_created, solver.stats().guards_retired);
    }

    #[test]
    fn interrupted_enumeration_keeps_guard_accounting_balanced() {
        // Hammer one persistent solver with injected faults across several
        // guarded cells; every interruption is retried, and at the end the
        // guard books must balance and the solver must still solve.
        let f = dimacs::parse("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let hook = TripTimes::new(FaultSite::SearchStep, 3);
        solver.set_fault_hook(Some(hook));
        for parity in [false, true] {
            let guard = solver.new_guard();
            solver.add_xor_under(XorClause::from_dimacs([1, 3], parity), guard);
            let mut result = solver.solve_under_assumptions(&[guard.assumption()]);
            let mut retries = 0;
            while result.is_interrupted() {
                retries += 1;
                assert!(retries <= 4, "fault schedule must drain");
                result = solver.solve_under_assumptions(&[guard.assumption()]);
            }
            assert!(result.is_sat() || result.is_unsat());
            solver.retire_guard(guard);
        }
        assert_eq!(solver.stats().guards_created, solver.stats().guards_retired);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn solver_is_reusable_after_unsat_subset_removed() {
        // Adding clauses one by one; once UNSAT, stays UNSAT.
        let mut solver = Solver::new(2);
        solver.add_clause(Clause::from_dimacs([1]));
        assert!(solver.solve().is_sat());
        solver.add_clause(Clause::from_dimacs([-1]));
        assert!(solver.solve().is_unsat());
        assert!(solver.solve().is_unsat());
        assert!(!solver.is_consistent());
    }

    #[test]
    fn stats_are_populated() {
        let (_, _) = solve_text("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let formula = dimacs::parse("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let mut solver = Solver::from_formula(&formula);
        let _ = solver.solve();
        assert!(solver.stats().solve_calls >= 1);
    }

    #[test]
    fn unique_solution_long_implication_chain() {
        // Implication chain x1 -> x2 -> ... -> x30, plus x1 asserted.
        let mut f = CnfFormula::new(30);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        for i in 1..30 {
            f.add_clause([
                Lit::from_dimacs(-(i as i64)),
                Lit::from_dimacs(i as i64 + 1),
            ])
            .unwrap();
        }
        let mut solver = Solver::from_formula(&f);
        let model = solver.solve().model().cloned().expect("satisfiable");
        assert!(model.values().iter().all(|&b| b));
    }

    #[test]
    fn assumptions_restrict_without_poisoning() {
        // x1 ∨ x2, solved under every assumption combination.
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let a1 = Lit::from_dimacs(-1);
        let a2 = Lit::from_dimacs(-2);
        let result = solver.solve_under_assumptions(&[a1]);
        let model = result.model().expect("sat under ¬x1");
        assert!(!model.value(Var::from_dimacs(1)));
        assert!(model.value(Var::from_dimacs(2)));
        // Both assumptions together contradict the clause…
        assert!(solver.solve_under_assumptions(&[a1, a2]).is_unsat());
        // …but the solver itself stays consistent and solvable.
        assert!(solver.is_consistent());
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn assumptions_already_implied_are_harmless() {
        let f = dimacs::parse("p cnf 2 2\n1 0\n-1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        // x1 and x2 are forced at level zero; assuming them must still work.
        let result = solver.solve_under_assumptions(&[Lit::from_dimacs(1), Lit::from_dimacs(2)]);
        assert!(result.is_sat());
        // Assuming the negation of a forced literal is Unsat but consistent.
        assert!(solver
            .solve_under_assumptions(&[Lit::from_dimacs(-2)])
            .is_unsat());
        assert!(solver.is_consistent());
    }

    #[test]
    fn guarded_xor_layer_lifecycle() {
        // Free formula over 3 variables; hash layers carve it into cells.
        let f = dimacs::parse("p cnf 3 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);

        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], false), guard);

        let mut cell = Vec::new();
        loop {
            match solver.solve_under_assumptions(&[guard.assumption()]) {
                SolveResult::Sat(model) => {
                    // Models cover only the base variables.
                    assert_eq!(model.len(), 3);
                    assert!(model.value(Var::from_dimacs(1)) ^ model.value(Var::from_dimacs(2)));
                    assert_eq!(
                        model.value(Var::from_dimacs(2)),
                        model.value(Var::from_dimacs(3))
                    );
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause_under(Clause::new(blocking), guard);
                    cell.push(model);
                }
                SolveResult::Unsat => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // x1⊕x2=1, x2⊕x3=0 has exactly 2 solutions over 3 variables.
        assert_eq!(cell.len(), 2);

        // Retiring the guard removes the hash layer *and* its blocking
        // clauses: the full space of 8 assignments is visible again.
        solver.retire_guard(guard);
        assert!(solver.is_consistent());
        let guard2 = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1], true), guard2);
        let mut second_cell = 0;
        loop {
            match solver.solve_under_assumptions(&[guard2.assumption()]) {
                SolveResult::Sat(model) => {
                    assert!(model.value(Var::from_dimacs(1)));
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause_under(Clause::new(blocking), guard2);
                    second_cell += 1;
                }
                SolveResult::Unsat => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // x1 = 1 leaves 4 of the 8 assignments.
        assert_eq!(second_cell, 4);
        solver.retire_guard(guard2);
        assert!(solver.solve().is_sat());
        assert_eq!(solver.stats().guards_created, 2);
        assert_eq!(solver.stats().guards_retired, 2);
    }

    #[test]
    fn unsatisfiable_guarded_layer_stays_scoped() {
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let guard = solver.new_guard();
        // Contradictory layer: x1⊕x2 = 1 and x1⊕x2 = 0.
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([1, 2], false), guard);
        assert!(solver
            .solve_under_assumptions(&[guard.assumption()])
            .is_unsat());
        assert!(solver.is_consistent());
        solver.retire_guard(guard);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn guard_variables_do_not_leak_into_models() {
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let g = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1], true), g);
        assert_eq!(solver.num_base_vars(), 2);
        assert_eq!(solver.num_vars(), 3);
        let model = solver
            .solve_under_assumptions(&[g.assumption()])
            .model()
            .cloned()
            .expect("satisfiable");
        assert_eq!(model.len(), 2);
        assert!(f.evaluate(&model));
    }

    #[test]
    #[should_panic(expected = "past existing guard variables")]
    fn base_growth_past_guards_is_rejected() {
        let mut solver = Solver::new(2);
        let _guard = solver.new_guard();
        // Widening the base range would make models span the guard variable.
        solver.ensure_vars(4);
    }

    fn gauss_on_config() -> SolverConfig {
        SolverConfig {
            gauss: GaussMode::On,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn gauss_layer_lifecycle_builds_and_retires_matrices() {
        let f = dimacs::parse("p cnf 3 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, gauss_on_config());
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], false), guard);

        let mut cell = Vec::new();
        loop {
            match solver.solve_under_assumptions(&[guard.assumption()]) {
                SolveResult::Sat(model) => {
                    assert!(model.value(Var::from_dimacs(1)) ^ model.value(Var::from_dimacs(2)));
                    assert_eq!(
                        model.value(Var::from_dimacs(2)),
                        model.value(Var::from_dimacs(3))
                    );
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause_under(Clause::new(blocking), guard);
                    cell.push(model);
                }
                SolveResult::Unsat => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cell.len(), 2);
        assert_eq!(solver.stats().gauss_matrices, 1);
        assert_eq!(solver.stats().gauss_rows, 2);
        assert!(solver.stats().gauss_propagations > 0);
        assert_eq!(solver.gauss.num_matrices(), 1);

        // Retirement drops the matrix and the full space reopens.
        solver.retire_guard(guard);
        assert_eq!(solver.gauss.num_matrices(), 0);
        assert!(solver.is_consistent());
        let guard2 = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], false), guard2);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], true), guard2);
        let mut second = 0;
        loop {
            match solver.solve_under_assumptions(&[guard2.assumption()]) {
                SolveResult::Sat(model) => {
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause_under(Clause::new(blocking), guard2);
                    second += 1;
                }
                SolveResult::Unsat => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(second, 2);
    }

    #[test]
    fn gauss_layer_extended_across_solves_merges_into_one_matrix() {
        // Rows arriving in separate batches (with a solve in between) must
        // extend the guard's existing matrix, not build a second one or
        // fall back to the watched engine — and the stats must count one
        // matrix with the union of its rows.
        let f = dimacs::parse("p cnf 4 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, gauss_on_config());
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], false), guard);
        assert!(solver
            .solve_under_assumptions(&[guard.assumption()])
            .is_sat());
        // Second batch under the same guard: together with the first rows
        // it pins a single solution on x1..x4.
        solver.add_xor_under(XorClause::from_dimacs([3, 4], true), guard);
        solver.add_xor_under(XorClause::from_dimacs([1], true), guard);
        let model = solver
            .solve_under_assumptions(&[guard.assumption()])
            .model()
            .cloned()
            .expect("satisfiable");
        // x1 = 1, x1⊕x2 = 1 → x2 = 0, x2⊕x3 = 0 → x3 = 0, x3⊕x4 = 1 → x4 = 1.
        assert_eq!(model.values(), &[true, false, false, true]);
        assert_eq!(solver.stats().gauss_matrices, 1, "one matrix per guard");
        // The unit row became a guarded binary clause, the other three
        // merged into the guard's single matrix.
        assert_eq!(solver.stats().gauss_rows, 3);
        assert_eq!(solver.gauss.num_matrices(), 1);
        solver.retire_guard(guard);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn gauss_auto_threshold_counts_the_whole_layer() {
        // Two one-row batches under the same guard: each batch alone is
        // below the Auto threshold, but the layer as a whole is not, so the
        // second seal must compile a matrix rather than leaving the layer
        // permanently on the watched engine.
        let f = dimacs::parse("p cnf 3 0\n").unwrap();
        let config = SolverConfig {
            gauss: GaussMode::Auto,
            gauss_auto_threshold: 2,
            ..SolverConfig::default()
        };
        let mut solver = Solver::from_formula_with_config(&f, config);
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], true), guard);
        assert!(solver
            .solve_under_assumptions(&[guard.assumption()])
            .is_sat());
        assert_eq!(solver.stats().gauss_matrices, 0, "one row stays watched");
        solver.add_xor_under(XorClause::from_dimacs([2, 3], false), guard);
        assert!(solver
            .solve_under_assumptions(&[guard.assumption()])
            .is_sat());
        assert_eq!(
            solver.stats().gauss_matrices,
            1,
            "the two-row layer crosses the threshold"
        );
        solver.retire_guard(guard);
    }

    #[test]
    fn gauss_detects_cross_row_unsat_layer_as_unit_guard() {
        // x1⊕x2 = 0, x2⊕x3 = 0, x1⊕x3 = 1 sums to 0 = 1: no single row is
        // ever violated, only the combination. The matrix build reduces the
        // layer to the unit clause `g`.
        let f = dimacs::parse("p cnf 3 1\n1 2 3 0\n").unwrap();
        let mut solver = Solver::from_formula_with_config(&f, gauss_on_config());
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 2], false), guard);
        solver.add_xor_under(XorClause::from_dimacs([2, 3], false), guard);
        solver.add_xor_under(XorClause::from_dimacs([1, 3], true), guard);
        assert!(solver
            .solve_under_assumptions(&[guard.assumption()])
            .is_unsat());
        assert!(solver.is_consistent(), "layer UNSAT must stay scoped");
        solver.retire_guard(guard);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn gauss_and_watched_modes_enumerate_identical_cells() {
        let f = dimacs::parse("p cnf 4 2\n1 2 0\n-2 3 4 0\n").unwrap();
        let layers: Vec<Vec<XorClause>> = vec![
            vec![
                XorClause::from_dimacs([1, 2, 3], true),
                XorClause::from_dimacs([2, 4], false),
            ],
            vec![
                XorClause::from_dimacs([1, 4], true),
                XorClause::from_dimacs([1, 2, 3, 4], false),
                XorClause::from_dimacs([3, 4], true),
            ],
        ];
        let off = SolverConfig {
            gauss: GaussMode::Off,
            ..SolverConfig::default()
        };
        let mut gauss_solver = Solver::from_formula_with_config(&f, gauss_on_config());
        let mut watched_solver = Solver::from_formula_with_config(&f, off);
        for layer in &layers {
            let mut sets = Vec::new();
            for solver in [&mut gauss_solver, &mut watched_solver] {
                let guard = solver.new_guard();
                for xor in layer {
                    solver.add_xor_under(xor.clone(), guard);
                }
                let mut models = std::collections::BTreeSet::new();
                loop {
                    match solver.solve_under_assumptions(&[guard.assumption()]) {
                        SolveResult::Sat(model) => {
                            let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                            solver.add_clause_under(Clause::new(blocking), guard);
                            models.insert(model.values().to_vec());
                        }
                        SolveResult::Unsat => break,
                        other => panic!("unexpected {other:?}"),
                    }
                }
                solver.retire_guard(guard);
                sets.push(models);
            }
            assert_eq!(sets[0], sets[1], "gauss and watched modes disagree");
        }
        assert!(gauss_solver.stats().gauss_matrices >= 2);
        assert_eq!(watched_solver.stats().gauss_matrices, 0);
    }

    #[test]
    fn construction_counter_counts_fresh_solvers_only() {
        let before = Solver::constructions_on_thread();
        let f = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let solver = Solver::from_formula(&f);
        let _clone = solver.clone();
        assert_eq!(Solver::constructions_on_thread(), before + 1);
    }
}
