//! The CDCL search loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unigen_cnf::{Clause, CnfFormula, Lit, Model, Var, XorClause};

use crate::budget::Budget;
use crate::clause_db::{ClauseDb, ClauseRef};
use crate::config::SolverConfig;
use crate::decide::Vsids;
use crate::restart::LubyRestarts;
use crate::stats::SolverStats;
use crate::xor_engine::{AddXor, XorEngine, XorPropagation, XorRef};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (together with all clauses added so far) is unsatisfiable.
    Unsat,
    /// The per-call [`Budget`] was exhausted before a definite answer was
    /// reached; corresponds to a `BSAT` timeout in the paper's experiments.
    Unknown,
}

impl SolveResult {
    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns `true` if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }
}

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Branching decision.
    Decision,
    /// Implied by a CNF clause.
    Clause(ClauseRef),
    /// Implied by an xor constraint.
    Xor(XorRef),
    /// Asserted at level zero with no recorded antecedent (top-level unit).
    Unit,
}

/// The source of a conflict discovered during propagation.
#[derive(Debug, Clone, Copy)]
enum ConflictSource {
    Clause(ClauseRef),
    Xor(XorRef),
}

/// A conflict-driven clause-learning SAT solver with native xor support.
///
/// See the crate-level documentation for an overview and an example. The
/// solver is deterministic for a fixed [`SolverConfig::seed`] and input
/// formula, which keeps every experiment in this repository reproducible.
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    clauses: ClauseDb,
    xors: XorEngine,
    /// Current partial assignment, indexed by variable.
    assign: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason for each variable's assignment.
    reason: Vec<Reason>,
    /// Assignment trail in chronological order.
    trail: Vec<Lit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    vsids: Vsids,
    restarts: LubyRestarts,
    config: SolverConfig,
    /// False once a top-level conflict has been derived.
    ok: bool,
    stats: SolverStats,
    learned_limit: f64,
    /// Scratch space for conflict analysis.
    seen: Vec<bool>,
}

impl Solver {
    /// Creates an empty solver over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Solver::with_config(num_vars, SolverConfig::default())
    }

    /// Creates an empty solver with an explicit configuration.
    pub fn with_config(num_vars: usize, config: SolverConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let noise: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..1e-6)).collect();
        Solver {
            num_vars,
            clauses: ClauseDb::new(num_vars, config.clause_decay),
            xors: XorEngine::new(num_vars),
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::Unit; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            vsids: Vsids::new(num_vars, config.var_decay, config.default_polarity, &noise),
            restarts: LubyRestarts::new(config.restart_interval),
            learned_limit: config.learned_clause_limit as f64,
            config,
            ok: true,
            stats: SolverStats::default(),
            seen: vec![false; num_vars],
        }
    }

    /// Builds a solver pre-loaded with all clauses and xor constraints of a
    /// formula.
    pub fn from_formula(formula: &CnfFormula) -> Self {
        Solver::from_formula_with_config(formula, SolverConfig::default())
    }

    /// Builds a solver pre-loaded with a formula, using an explicit
    /// configuration.
    pub fn from_formula_with_config(formula: &CnfFormula, config: SolverConfig) -> Self {
        let mut solver = Solver::with_config(formula.num_vars(), config);
        for clause in formula.clauses() {
            solver.add_clause(clause.clone());
        }
        for xor in formula.xor_clauses() {
            solver.add_xor_clause(xor.clone());
        }
        solver
    }

    /// Returns the number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Returns `false` if a top-level conflict has already been derived (any
    /// further `solve` call will return `Unsat`).
    pub fn is_consistent(&self) -> bool {
        self.ok
    }

    /// Grows the variable range to at least `num_vars`.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        let old = self.num_vars;
        self.num_vars = num_vars;
        self.assign.resize(num_vars, None);
        self.level.resize(num_vars, 0);
        self.reason.resize(num_vars, Reason::Unit);
        self.seen.resize(num_vars, false);
        self.clauses.grow_to(num_vars);
        self.xors.grow_to(num_vars);
        // Rebuild the decision heuristic to cover the new variables while
        // keeping previous phases; activities restart from scratch, which is
        // acceptable because growing happens only between solve calls.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ num_vars as u64);
        let noise: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..1e-6)).collect();
        let old_vsids = std::mem::replace(
            &mut self.vsids,
            Vsids::new(
                num_vars,
                self.config.var_decay,
                self.config.default_polarity,
                &noise,
            ),
        );
        for i in 0..old {
            let v = Var::new(i);
            self.vsids.save_phase(v, old_vsids.saved_phase(v));
        }
    }

    /// Adds a CNF clause. May be called between `solve` calls (the solver is
    /// first unwound to decision level zero).
    ///
    /// Tautological clauses are ignored; the empty clause makes the solver
    /// permanently inconsistent.
    pub fn add_clause(&mut self, clause: Clause) {
        if clause.is_tautology() {
            return;
        }
        if let Some(max) = clause.max_var() {
            self.ensure_vars(max.index() + 1);
        }
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        // Remove literals already false at level zero and drop the clause if
        // any literal is already true at level zero.
        let mut lits: Vec<Lit> = Vec::with_capacity(clause.len());
        for &lit in clause.iter() {
            match self.lit_value(lit) {
                Some(true) => return,
                Some(false) => {}
                None => lits.push(lit),
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(lits[0], Reason::Unit);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.clauses.add_clause(lits, false, 0);
            }
        }
    }

    /// Adds an xor constraint. May be called between `solve` calls.
    pub fn add_xor_clause(&mut self, xor: XorClause) {
        if let Some(max) = xor.max_var() {
            self.ensure_vars(max.index() + 1);
        }
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        match self.xors.add(&xor) {
            AddXor::Tautology => {}
            AddXor::Unsatisfiable => self.ok = false,
            AddXor::Unit(var, value) => match self.value(var) {
                Some(current) if current != value => self.ok = false,
                Some(_) => {}
                None => {
                    self.enqueue(var.lit(value), Reason::Unit);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
            AddXor::Stored(xref) => {
                // If some variables are already assigned at level zero the
                // constraint may already be unit or violated; replaying the
                // level-zero trail through the engine keeps it consistent.
                let mut results = Vec::new();
                for i in 0..self.trail.len() {
                    let var = self.trail[i].var();
                    let assign = &self.assign;
                    self.xors
                        .on_assign(var, |v| assign[v.index()], &mut results);
                }
                for result in results {
                    match result {
                        XorPropagation::Implied { lit, xref } => match self.lit_value(lit) {
                            Some(true) => {}
                            Some(false) => self.ok = false,
                            None => {
                                self.enqueue(lit, Reason::Xor(xref));
                            }
                        },
                        XorPropagation::Conflict { .. } => self.ok = false,
                    }
                }
                if self.ok && self.propagate().is_some() {
                    self.ok = false;
                }
                let _ = xref;
            }
        }
    }

    /// Solves the current formula with an unlimited budget.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_budget(&Budget::new())
    }

    /// Solves the current formula, giving up (with [`SolveResult::Unknown`])
    /// when the budget is exhausted.
    pub fn solve_with_budget(&mut self, budget: &Budget) -> SolveResult {
        self.stats.solve_calls += 1;
        self.backtrack_to(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut meter = budget.start();
        meter.set_conflict_baseline(self.stats.conflicts);
        let mut restart_limit = self.restarts.next_limit();
        let mut conflicts_this_period: u64 = 0;

        loop {
            if meter.exhausted(self.stats.conflicts) {
                self.backtrack_to(0);
                return SolveResult::Unknown;
            }
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_this_period += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let (learnt, backtrack_level, lbd) = self.analyze(conflict);
                    self.backtrack_to(backtrack_level);
                    self.attach_learnt(learnt, lbd);
                    self.vsids.decay();
                    self.clauses.decay_clauses();
                    if self.clauses.num_learned() as f64 > self.learned_limit {
                        self.reduce_learned();
                    }
                }
                None => {
                    if conflicts_this_period >= restart_limit {
                        conflicts_this_period = 0;
                        restart_limit = self.restarts.next_limit();
                        self.stats.restarts += 1;
                        self.backtrack_to(0);
                        continue;
                    }
                    match self.pick_branch_variable() {
                        None => {
                            // All variables assigned: model found.
                            let model = self.extract_model();
                            self.backtrack_to(0);
                            return SolveResult::Sat(model);
                        }
                        Some(var) => {
                            self.stats.decisions += 1;
                            let phase = self.vsids.saved_phase(var);
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(var.lit(phase), Reason::Decision);
                        }
                    }
                }
            }
        }
    }

    /// Returns the current value of a variable (meaningful mid-search or at
    /// level zero between calls).
    pub fn value(&self, var: Var) -> Option<bool> {
        self.assign[var.index()]
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| lit.evaluate(v))
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn extract_model(&self) -> Model {
        Model::new(
            self.assign
                .iter()
                .map(|v| v.expect("model extraction requires a total assignment"))
                .collect(),
        )
    }

    fn pick_branch_variable(&mut self) -> Option<Var> {
        let assign = &self.assign;
        self.vsids.pop_unassigned(|v| assign[v.index()].is_some())
    }

    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert!(
            self.lit_value(lit).is_none(),
            "enqueueing an assigned literal"
        );
        let var = lit.var();
        self.assign[var.index()] = Some(lit.is_positive());
        self.level[var.index()] = self.decision_level();
        self.reason[var.index()] = reason;
        self.trail.push(lit);
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail is non-empty");
            let var = lit.var();
            self.vsids.save_phase(var, lit.is_positive());
            self.assign[var.index()] = None;
            self.reason[var.index()] = Reason::Unit;
            self.vsids.insert(var);
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.qhead.min(target);
    }

    /// Unit propagation over CNF clauses and xor constraints. Returns the
    /// conflicting constraint, if any.
    fn propagate(&mut self) -> Option<ConflictSource> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            if let Some(conflict) = self.propagate_clauses(lit) {
                return Some(conflict);
            }
            if let Some(conflict) = self.propagate_xors(lit.var()) {
                return Some(conflict);
            }
        }
        None
    }

    /// Propagates through CNF clauses watching `¬lit` (which just became
    /// false).
    fn propagate_clauses(&mut self, lit: Lit) -> Option<ConflictSource> {
        let false_lit = !lit;
        let mut watchers = std::mem::take(self.clauses.watchers_mut(false_lit));
        let mut i = 0;
        while i < watchers.len() {
            let cref = watchers[i];
            if self.clauses.clause(cref).deleted {
                watchers.swap_remove(i);
                continue;
            }
            // Ensure the false literal is at position 1.
            {
                let clause = self.clauses.clause_mut(cref);
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
            }
            // If the other watched literal is already true, keep watching.
            let first = self.clauses.clause(cref).lits[0];
            if self.lit_value(first) == Some(true) {
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            let replacement = {
                let clause = self.clauses.clause(cref);
                clause.lits[2..]
                    .iter()
                    .position(|&l| self.lit_value(l) != Some(false))
                    .map(|p| p + 2)
            };
            match replacement {
                Some(pos) => {
                    let clause = self.clauses.clause_mut(cref);
                    clause.lits.swap(1, pos);
                    let new_watch = clause.lits[1];
                    self.clauses.move_watch(cref, new_watch);
                    watchers.swap_remove(i);
                }
                None => {
                    // Clause is unit or conflicting.
                    match self.lit_value(first) {
                        Some(false) => {
                            // Conflict: restore the (whole) watcher list and
                            // abort propagation; the caller backtracks past
                            // the current level, so the unprocessed watchers
                            // keep a valid watch.
                            *self.clauses.watchers_mut(false_lit) = watchers;
                            return Some(ConflictSource::Clause(cref));
                        }
                        _ => {
                            self.enqueue(first, Reason::Clause(cref));
                            i += 1;
                        }
                    }
                }
            }
        }
        *self.clauses.watchers_mut(false_lit) = watchers;
        None
    }

    /// Propagates through xor constraints watching the just-assigned
    /// variable.
    fn propagate_xors(&mut self, var: Var) -> Option<ConflictSource> {
        let mut results = Vec::new();
        {
            let assign = &self.assign;
            self.xors
                .on_assign(var, |v| assign[v.index()], &mut results);
        }
        for result in results {
            match result {
                XorPropagation::Implied { lit, xref } => match self.lit_value(lit) {
                    Some(true) => {}
                    Some(false) => return Some(ConflictSource::Xor(xref)),
                    None => {
                        self.stats.xor_propagations += 1;
                        self.enqueue(lit, Reason::Xor(xref));
                    }
                },
                XorPropagation::Conflict { xref } => {
                    return Some(ConflictSource::Xor(xref));
                }
            }
        }
        None
    }

    /// Returns the antecedent literals of `lit` (the other literals of its
    /// reason constraint, all currently false).
    fn reason_lits(&mut self, lit: Lit) -> Vec<Lit> {
        match self.reason[lit.var().index()] {
            Reason::Decision | Reason::Unit => Vec::new(),
            Reason::Clause(cref) => {
                self.clauses.bump_clause(cref);
                self.clauses
                    .clause(cref)
                    .lits
                    .iter()
                    .copied()
                    .filter(|&l| l != lit)
                    .collect()
            }
            Reason::Xor(xref) => {
                let assign = &self.assign;
                self.xors.reason_lits(xref, lit, |v| assign[v.index()])
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, conflict: ConflictSource) -> (Vec<Lit>, u32, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter: u32 = 0;
        let mut to_clear: Vec<Var> = Vec::new();

        let mut current_lits: Vec<Lit> = match conflict {
            ConflictSource::Clause(cref) => {
                self.clauses.bump_clause(cref);
                self.clauses.clause(cref).lits.clone()
            }
            ConflictSource::Xor(xref) => {
                let assign = &self.assign;
                self.xors.conflict_lits(xref, |v| assign[v.index()])
            }
        };

        let mut index = self.trail.len();
        let uip: Lit;

        loop {
            for &q in &current_lits {
                let var = q.var();
                if self.seen[var.index()] || self.level[var.index()] == 0 {
                    continue;
                }
                self.seen[var.index()] = true;
                to_clear.push(var);
                self.vsids.bump(var);
                if self.level[var.index()] >= current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }

            // Find the next trail literal that participates in the conflict.
            loop {
                debug_assert!(index > 0, "conflict analysis ran off the trail");
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                uip = p;
                break;
            }
            current_lits = self.reason_lits(p);
        }

        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(!uip);
        clause.extend(learnt);

        // Clause minimisation: drop literals whose reason is entirely covered
        // by other literals of the clause (cheap, non-recursive check).
        let minimised = self.minimise(clause, &to_clear);

        for var in to_clear {
            self.seen[var.index()] = false;
        }

        // Compute the backtrack level and place the literal with the highest
        // level (other than the asserting one) at position 1.
        let mut clause = minimised;
        let (backtrack_level, lbd) = if clause.len() == 1 {
            (0, 1)
        } else {
            let mut max_pos = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index()] > self.level[clause[max_pos].var().index()] {
                    max_pos = i;
                }
            }
            clause.swap(1, max_pos);
            let bt = self.level[clause[1].var().index()];
            let mut levels: Vec<u32> = clause.iter().map(|l| self.level[l.var().index()]).collect();
            levels.sort_unstable();
            levels.dedup();
            (bt, levels.len() as u32)
        };

        (clause, backtrack_level, lbd)
    }

    /// Removes redundant literals from a learnt clause: a literal is
    /// redundant if every antecedent of its variable is already present in
    /// the clause (local / non-recursive minimisation).
    fn minimise(&mut self, clause: Vec<Lit>, seen_vars: &[Var]) -> Vec<Lit> {
        // Mark the clause's variables (the asserting literal at index 0 is
        // never removed).
        let mut marked = vec![false; self.num_vars];
        for &lit in &clause {
            marked[lit.var().index()] = true;
        }
        let _ = seen_vars;
        let mut result = Vec::with_capacity(clause.len());
        for (i, &lit) in clause.iter().enumerate() {
            if i == 0 {
                result.push(lit);
                continue;
            }
            let redundant = match self.reason[lit.var().index()] {
                Reason::Decision | Reason::Unit => false,
                _ => {
                    let antecedents = self.reason_lits(!lit);
                    !antecedents.is_empty()
                        && antecedents
                            .iter()
                            .all(|a| self.level[a.var().index()] == 0 || marked[a.var().index()])
                }
            };
            if !redundant {
                result.push(lit);
            }
        }
        result
    }

    fn attach_learnt(&mut self, clause: Vec<Lit>, lbd: u32) {
        self.stats.learned_clauses = self.clauses.num_learned() as u64;
        match clause.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                debug_assert_eq!(self.decision_level(), 0);
                if self.lit_value(clause[0]) == Some(false) {
                    self.ok = false;
                } else if self.lit_value(clause[0]).is_none() {
                    self.enqueue(clause[0], Reason::Unit);
                }
            }
            _ => {
                let asserting = clause[0];
                let cref = self.clauses.add_clause(clause, true, lbd);
                self.stats.learned_clauses = self.clauses.num_learned() as u64;
                debug_assert!(self.lit_value(asserting).is_none());
                self.enqueue(asserting, Reason::Clause(cref));
            }
        }
    }

    fn reduce_learned(&mut self) {
        let reason = &self.reason;
        let trail = &self.trail;
        let locked: std::collections::HashSet<ClauseRef> = trail
            .iter()
            .filter_map(|l| match reason[l.var().index()] {
                Reason::Clause(cref) => Some(cref),
                _ => None,
            })
            .collect();
        let deleted = self.clauses.reduce(|cref| locked.contains(&cref));
        self.stats.deleted_clauses += deleted as u64;
        self.stats.learned_clauses = self.clauses.num_learned() as u64;
        self.learned_limit *= self.config.learned_clause_growth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::dimacs;

    fn solve_text(text: &str) -> (CnfFormula, SolveResult) {
        let formula = dimacs::parse(text).expect("valid DIMACS");
        let mut solver = Solver::from_formula(&formula);
        let result = solver.solve();
        (formula, result)
    }

    #[test]
    fn trivial_sat() {
        let (f, result) = solve_text("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn trivial_unsat() {
        let (_, result) = solve_text("p cnf 1 2\n1 0\n-1 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let (_, result) = solve_text("p cnf 3 0\n");
        assert!(result.is_sat());
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1; both pigeons must be placed, hole holds at most one.
        let (_, result) = solve_text("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn pigeonhole_php_4_3_is_unsat() {
        // 4 pigeons, 3 holes. Variables p_{i,j} = 3*(i-1)+j for i in 1..=4, j in 1..=3.
        let mut f = CnfFormula::new(12);
        let var = |i: usize, j: usize| Lit::from_dimacs((3 * (i - 1) + j) as i64);
        for i in 1..=4 {
            f.add_clause([var(i, 1), var(i, 2), var(i, 3)]).unwrap();
        }
        for j in 1..=3 {
            for i1 in 1..=4 {
                for i2 in (i1 + 1)..=4 {
                    f.add_clause([!var(i1, j), !var(i2, j)]).unwrap();
                }
            }
        }
        let mut solver = Solver::from_formula(&f);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn xor_only_formula() {
        let (f, result) = solve_text("p cnf 3 2\nx 1 2 3 0\nx 1 2 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn contradictory_xors_are_unsat() {
        // x1 ⊕ x2 = 1 and x1 ⊕ x2 = 0.
        let (_, result) = solve_text("p cnf 2 2\nx 1 2 0\nx -1 2 0\n");
        assert!(result.is_unsat());
    }

    #[test]
    fn mixed_cnf_and_xor() {
        let (f, result) = solve_text("p cnf 4 4\n1 2 0\n-1 3 0\nx 1 2 3 4 0\n-4 0\n");
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
    }

    #[test]
    fn xor_chain_forces_unique_solution() {
        // x1 = 1, x1⊕x2 = 1, x2⊕x3 = 1, x3⊕x4 = 1 forces 1,0,1,0.
        let text = "p cnf 4 4\nx 1 0\nx 1 2 0\nx 2 3 0\nx 3 4 0\n";
        let (f, result) = solve_text(text);
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
        assert_eq!(model.values(), &[true, false, true, false]);
    }

    #[test]
    fn incremental_blocking_enumerates_all_models() {
        // x1 ∨ x2 has three models.
        let formula = dimacs::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let mut solver = Solver::from_formula(&formula);
        let mut found = Vec::new();
        loop {
            match solver.solve() {
                SolveResult::Sat(model) => {
                    found.push(model.clone());
                    let blocking: Vec<Lit> = model.to_lits().iter().map(|&l| !l).collect();
                    solver.add_clause(Clause::new(blocking));
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A formula hard enough to need more than zero conflicts.
        let mut f = CnfFormula::new(20);
        // Random-ish xor system plus clauses: just ensure >0 conflicts needed.
        for i in 1..=17 {
            f.add_xor_clause(XorClause::from_dimacs([i, i + 1, i + 2], i % 2 == 0))
                .unwrap();
        }
        for i in 1..=18 {
            f.add_clause([
                Lit::from_dimacs(i as i64),
                Lit::from_dimacs(-(i as i64 + 1)),
            ])
            .unwrap();
        }
        let mut solver = Solver::from_formula(&f);
        let budget = Budget::new().with_conflict_limit(0);
        let result = solver.solve_with_budget(&budget);
        // With a zero-conflict budget the solver must either finish purely by
        // propagation or give up; both are acceptable, but it must not panic
        // and must stay reusable.
        let follow_up = solver.solve();
        assert!(matches!(
            follow_up,
            SolveResult::Sat(_) | SolveResult::Unsat
        ));
        let _ = result;
    }

    #[test]
    fn solver_is_reusable_after_unsat_subset_removed() {
        // Adding clauses one by one; once UNSAT, stays UNSAT.
        let mut solver = Solver::new(2);
        solver.add_clause(Clause::from_dimacs([1]));
        assert!(solver.solve().is_sat());
        solver.add_clause(Clause::from_dimacs([-1]));
        assert!(solver.solve().is_unsat());
        assert!(solver.solve().is_unsat());
        assert!(!solver.is_consistent());
    }

    #[test]
    fn stats_are_populated() {
        let (_, _) = solve_text("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let formula = dimacs::parse("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let mut solver = Solver::from_formula(&formula);
        let _ = solver.solve();
        assert!(solver.stats().solve_calls >= 1);
    }

    #[test]
    fn unique_solution_long_implication_chain() {
        // Implication chain x1 -> x2 -> ... -> x30, plus x1 asserted.
        let mut f = CnfFormula::new(30);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        for i in 1..30 {
            f.add_clause([
                Lit::from_dimacs(-(i as i64)),
                Lit::from_dimacs(i as i64 + 1),
            ])
            .unwrap();
        }
        let mut solver = Solver::from_formula(&f);
        let model = solver.solve().model().cloned().expect("satisfiable");
        assert!(model.values().iter().all(|&b| b));
    }
}
