//! Deterministic fault injection for the solver.
//!
//! The paper's experimental discipline is built on budgets (a 2 500 s
//! timeout on every `BSAT` invocation, 20 h overall), and production
//! sampling workloads are dominated by retried / re-budgeted `BSAT` calls.
//! Exercising those paths requires *making* calls fail on demand: a
//! [`FaultHook`] is an injectable oracle the solver consults at its
//! solve/propagation boundaries, and a tripped hook turns the call into a
//! typed [`crate::SolveResult::Interrupted`] outcome — exactly the shape a
//! genuine budget exhaustion takes, so the recovery ladder above the solver
//! is tested against the same state machine it runs in production.
//!
//! The default is no hook at all ([`crate::SolverConfig::fault_hook`] is
//! `None`), which costs a single pointer test per search-loop iteration —
//! the bench gates in CI pin that the hot path does not regress.

use std::fmt;

/// Why a solve call stopped without reaching a definite answer.
///
/// Carried by [`crate::SolveResult::Interrupted`] and
/// [`crate::EnumerationOutcome::interrupted`]. The first three reasons are
/// produced by [`crate::Budget`] limits, the last two by an injected
/// [`FaultHook`]. In every case the solver is left at decision level zero
/// with its trail, guards and learned clauses consistent, so the caller may
/// simply retry the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The budget's conflict limit fired.
    ConflictLimit,
    /// The budget's wall-clock limit fired. (The only host-dependent
    /// reason; prefer [`crate::Budget::with_step_limit`] for reproducible
    /// interruption schedules.)
    TimeLimit,
    /// The budget's deterministic step limit (propagations + decisions)
    /// fired.
    StepLimit,
    /// An injected fault tripped at a solve or search boundary.
    FaultInjected,
    /// An injected fault poisoned a Gauss–Jordan seal: the pending guarded
    /// xor layers were *not* compiled (they stay pending), so the caller
    /// can retry — typically with Gauss elimination disabled.
    GaussPoisoned,
}

impl InterruptReason {
    /// Returns `true` if the reason is a genuine budget limit (as opposed
    /// to an injected fault).
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            InterruptReason::ConflictLimit
                | InterruptReason::TimeLimit
                | InterruptReason::StepLimit
        )
    }

    /// Returns `true` if the reason is an injected fault.
    pub fn is_fault(&self) -> bool {
        !self.is_budget()
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InterruptReason::ConflictLimit => "conflict-limit",
            InterruptReason::TimeLimit => "time-limit",
            InterruptReason::StepLimit => "step-limit",
            InterruptReason::FaultInjected => "fault-injected",
            InterruptReason::GaussPoisoned => "gauss-poisoned",
        };
        f.write_str(name)
    }
}

/// Where in the solver a [`FaultHook`] is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Entry of a solve/enumeration call, before any search work. A trip
    /// here models "fail the Nth `BSAT` call".
    SolveStart,
    /// Once per search-loop iteration, at the same cadence as the budget
    /// check. A trip here models a budget exhausted mid-search.
    SearchStep,
    /// Immediately before pending guarded xor layers are compiled into
    /// Gauss–Jordan matrices. A trip here poisons the seal: the layers
    /// stay pending and the call returns
    /// [`InterruptReason::GaussPoisoned`].
    GaussSeal,
}

/// An injectable fault oracle, consulted by the solver at the boundaries
/// described by [`FaultSite`].
///
/// Implementations must be deterministic functions of their own state (use
/// a seeded counter scheme, not wall-clock or OS randomness) so that a
/// fault schedule replays identically — the chaos harness relies on it.
/// The hook is shared between clones of a solver via `Arc`, so the
/// call-counting state is global to the sampler it is installed on.
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Returns `true` to inject a fault at `site`. The solver translates a
    /// trip into [`InterruptReason::GaussPoisoned`] at
    /// [`FaultSite::GaussSeal`] and [`InterruptReason::FaultInjected`]
    /// everywhere else.
    fn trip(&self, site: FaultSite) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_and_fault_reasons_partition() {
        for reason in [
            InterruptReason::ConflictLimit,
            InterruptReason::TimeLimit,
            InterruptReason::StepLimit,
            InterruptReason::FaultInjected,
            InterruptReason::GaussPoisoned,
        ] {
            assert_ne!(reason.is_budget(), reason.is_fault());
            assert!(!reason.to_string().is_empty());
        }
    }
}
