//! Gauss–Jordan elimination over guarded xor layers.
//!
//! The watched-variable engine in [`crate::xor_engine`] propagates each xor
//! constraint in isolation: it discovers an implied literal or a conflict
//! only when a *single* row has at most one unassigned variable left. Random
//! hash layers, however, routinely entail units and conflicts through
//! *combinations* of rows (`x⊕y = 0` and `x⊕y⊕z = 1` imply `z` long before
//! either row is unit on its own). CryptoMiniSAT — the solver behind the
//! experiments of the UniGen paper (DAC 2014) and its CAV 2013 predecessor —
//! recovers those through Gaussian elimination; this module brings the same
//! capability to the guarded hash layers here.
//!
//! # Data structure
//!
//! One dense bit matrix per activation guard, built from the guard's xor
//! rows when the layer is *sealed* (first solve after the rows were added).
//! Columns are the variables occurring in the layer — for a hash layer that
//! is a subset of the sampling set — packed into `u64` words; each row also
//! carries its parity bit. The matrix is kept in **reduced row-echelon
//! form**: every row owns a *basic* column that occurs in no other row.
//!
//! # Propagation (the "simplex way")
//!
//! Following Han & Jiang (CAV 2012) and CryptoMiniSAT's `EGaussian`, the
//! matrix reacts to variable assignments:
//!
//! * when a row's **basic** variable is assigned, the row re-pivots onto one
//!   of its unassigned columns and that column is eliminated from every
//!   other row (actual row xors — this is where cross-row reasoning
//!   happens dynamically);
//! * every row with at most one unassigned variable then yields an implied
//!   literal, a conflict, or — when the guard is still unassigned — an
//!   implication of the guard itself (the clause `g ∨ row` is unit on `g`).
//!
//! Because each not-fully-assigned row keeps a *distinct unassigned* basic
//! variable, any unit or conflicting linear combination of two or more rows
//! would contain at least two unassigned variables — so checking rows
//! individually is complete: the matrix propagates everything Gauss–Jordan
//! elimination under the current assignment could derive.
//!
//! # Why backtracking needs no undo hook
//!
//! Row operations are equivalence transformations of the linear system and
//! are valid under *any* assignment, so the matrix is never rolled back.
//! The basic-column bookkeeping is conservative: a basic variable that was
//! assigned (and could not be replaced because its row was fully assigned)
//! becomes a valid pivot again the moment backtracking unassigns it. The
//! only per-assignment state — implication *reasons* — is captured eagerly
//! as literal vectors at propagation time, exactly because later row
//! operations may rewrite the row that justified an earlier implication.
//! Reasons are keyed by the implied variable and stay valid until the
//! variable leaves the trail, after which they are overwritten by the next
//! implication of that variable.

use std::collections::{HashMap, HashSet};

use unigen_cnf::{Lit, Var, XorClause};

/// A guard's key: the index of its activation variable.
pub(crate) type GuardKey = u32;

/// Outcome of compiling a layer's rows into a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuildOutcome {
    /// The matrix is installed and may propagate.
    Built {
        /// Number of (non-redundant) rows this call added to the matrix.
        added: usize,
        /// `true` if this call created the matrix (as opposed to merging
        /// more rows into an existing one) — the stats count each matrix
        /// once.
        fresh: bool,
    },
    /// The rows are jointly unsatisfiable (some combination reduces to
    /// `0 = 1`): the caller must assert the guard's disable literal — the
    /// guarded layer contributes exactly the unit clause `g`.
    LayerUnsat,
}

/// One propagation event discovered by a matrix scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GaussResult {
    /// Some row forces `lit`; `reason` holds the antecedent literals (all
    /// currently false). `lit` may be the guard's disable literal when a
    /// row is violated while the guard is still unassigned. The solver
    /// stores the reason (via [`GaussEngine::store_reason`]) only for the
    /// implication it actually enqueues, so a later event can never
    /// clobber the justification of an assignment already on the trail.
    Implied {
        /// The implied literal.
        lit: Lit,
        /// The antecedent literals justifying `lit`.
        reason: Vec<Lit>,
    },
    /// A row of an *active* guard is violated by the current assignment;
    /// the conflict clause was stored and is retrieved with
    /// [`GaussEngine::conflict_lits`].
    Conflict,
}

/// A row the matrix derived as a GF(2) sum of two or more original xor
/// rows, recorded for proof logging: implication/conflict *reasons* come
/// from the **reduced** rows, which are linear combinations of the logged
/// originals and therefore not RUP-checkable over their expansions alone.
/// Each derive names the exact original row ids whose sum it is, so the
/// checker can verify the combination symbolically and install the derived
/// row's expansion before any clause that depends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RowDerive {
    /// The guard variable owning the matrix.
    pub(crate) guard: Var,
    /// Variables of the derived row (empty for the `0 = 1` layer-unsat
    /// combination).
    pub(crate) vars: Vec<Var>,
    /// Parity of the derived row.
    pub(crate) rhs: bool,
    /// Proof-stream ids of the original rows summed.
    pub(crate) from: Vec<u64>,
}

/// One row: column bitset plus parity, owning one basic column.
#[derive(Debug, Clone)]
struct Row {
    bits: Vec<u64>,
    rhs: bool,
    /// Column index of this row's basic variable.
    basic: usize,
    /// Provenance bitset over the matrix's inserted originals: bit `i` set
    /// means original `origin_ids[i]` participates in the GF(2) sum that
    /// produced this row. Maintained by every row operation alongside
    /// `bits`/`rhs`, so combo ↔ row content stays 1:1. Empty when proof
    /// tracking is off.
    combo: Vec<u64>,
}

impl Row {
    fn get(&self, col: usize) -> bool {
        self.bits[col / 64] >> (col % 64) & 1 != 0
    }

    fn xor_in(&mut self, other: &Row) {
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w ^= o;
        }
        self.rhs ^= other.rhs;
        for (w, o) in self.combo.iter_mut().zip(&other.combo) {
            *w ^= o;
        }
    }

    fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates the set columns of the row.
    fn cols(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// Per-guard dense matrix in reduced row-echelon form.
#[derive(Debug, Clone)]
struct GaussMatrix {
    /// The guard's disable literal `g`; the layer is active while `g` is
    /// false.
    guard: Lit,
    /// Column index → variable.
    cols: Vec<Var>,
    /// Variable index → column index.
    col_of: HashMap<u32, usize>,
    words: usize,
    rows: Vec<Row>,
    /// Proof-stream id of each original row inserted into this matrix, in
    /// insertion order (combo bit `i` ↔ `origin_ids[i]`). Empty when proof
    /// tracking is off.
    origin_ids: Vec<u64>,
    /// Width of every row's `combo` bitset, in words.
    combo_words: usize,
}

/// What a row looks like under the current partial assignment.
struct RowState {
    unassigned: usize,
    /// Some unassigned column of the row (meaningful when `unassigned == 1`).
    unassigned_col: usize,
    /// Parity of the assigned variables' values.
    parity: bool,
}

impl GaussMatrix {
    fn new(guard: Lit) -> Self {
        GaussMatrix {
            guard,
            cols: Vec::new(),
            col_of: HashMap::new(),
            words: 0,
            rows: Vec::new(),
            origin_ids: Vec::new(),
            combo_words: 0,
        }
    }

    /// Registers `var` as a column, growing every row's bitset as needed.
    /// Returns the column index and whether the column is new.
    fn intern_col(&mut self, var: Var) -> (usize, bool) {
        if let Some(&c) = self.col_of.get(&(var.index() as u32)) {
            return (c, false);
        }
        let c = self.cols.len();
        self.cols.push(var);
        self.col_of.insert(var.index() as u32, c);
        let words = c / 64 + 1;
        if words > self.words {
            self.words = words;
            for row in &mut self.rows {
                row.bits.resize(words, 0);
            }
        }
        (c, true)
    }

    /// Reduces a fresh xor row against the matrix and inserts it, keeping
    /// the reduced row-echelon invariant. Returns the variables of any
    /// newly created columns, `Ok(false)` if the row was redundant,
    /// `Ok(true)` if it was inserted, and `Err(from)` if it reduced to
    /// `0 = 1` (the layer is unsatisfiable) — `from` names the proof ids of
    /// the original rows whose sum is the contradiction (empty when proof
    /// tracking is off).
    ///
    /// `origin` is the row's proof-stream id (0 = tracking off).
    /// `row_ops` counts the elimination xors performed.
    fn insert_row(
        &mut self,
        xor: &XorClause,
        origin: u64,
        value_of: impl Fn(Var) -> Option<bool>,
        new_cols: &mut Vec<Var>,
        row_ops: &mut u64,
    ) -> Result<bool, Vec<u64>> {
        for &v in xor.vars() {
            let (_, fresh) = self.intern_col(v);
            if fresh {
                new_cols.push(v);
            }
        }
        let mut combo = Vec::new();
        if origin != 0 {
            self.origin_ids.push(origin);
            let words = self.origin_ids.len().div_ceil(64);
            if words > self.combo_words {
                self.combo_words = words;
                for row in &mut self.rows {
                    row.combo.resize(words, 0);
                }
            }
            combo = vec![0; self.combo_words];
            let bit = self.origin_ids.len() - 1;
            combo[bit / 64] |= 1 << (bit % 64);
        }
        let mut row = Row {
            bits: vec![0; self.words],
            rhs: xor.rhs(),
            basic: 0,
            combo,
        };
        for &v in xor.vars() {
            let c = self.col_of[&(v.index() as u32)];
            row.bits[c / 64] ^= 1 << (c % 64);
        }
        // Eliminate existing basic columns from the new row.
        for existing in &self.rows {
            if row.get(existing.basic) {
                row.xor_in(existing);
                *row_ops += 1;
            }
        }
        if row.is_zero() {
            return if row.rhs {
                Err(self.origins_of(&row.combo))
            } else {
                Ok(false)
            };
        }
        // Pick a basic column, preferring an unassigned variable so the
        // row starts out obeying the propagation invariant.
        let basic = row
            .cols()
            .find(|&c| value_of(self.cols[c]).is_none())
            .or_else(|| row.cols().next())
            .expect("non-zero row has a column");
        row.basic = basic;
        // Jordan step: clear the new basic column from every other row.
        for existing in &mut self.rows {
            if existing.get(basic) {
                existing.xor_in(&row);
                *row_ops += 1;
            }
        }
        self.rows.push(row);
        Ok(true)
    }

    /// Re-pivots any row whose basic column is `col` (whose variable was
    /// just assigned) onto an unassigned column, eliminating that column
    /// from all other rows. Indices of rows modified by the elimination
    /// (including the pivot row) are appended to `modified`.
    fn repivot_on_assign(
        &mut self,
        col: usize,
        value_of: impl Fn(Var) -> Option<bool>,
        row_ops: &mut u64,
        modified: &mut Vec<usize>,
    ) {
        let Some(r) = self.rows.iter().position(|row| row.basic == col) else {
            return;
        };
        let Some(new_basic) = self.rows[r]
            .cols()
            .find(|&c| value_of(self.cols[c]).is_none())
        else {
            // Fully assigned row: it stays as-is and becomes a valid pivot
            // row again once backtracking unassigns its basic variable.
            return;
        };
        self.rows[r].basic = new_basic;
        modified.push(r);
        let pivot = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i != r && row.get(new_basic) {
                row.xor_in(&pivot);
                *row_ops += 1;
                modified.push(i);
            }
        }
    }

    fn state_of(&self, row: &Row, value_of: &impl Fn(Var) -> Option<bool>) -> RowState {
        let mut state = RowState {
            unassigned: 0,
            unassigned_col: 0,
            parity: false,
        };
        for c in row.cols() {
            match value_of(self.cols[c]) {
                Some(v) => state.parity ^= v,
                None => {
                    state.unassigned += 1;
                    state.unassigned_col = c;
                }
            }
        }
        state
    }

    /// The proof-stream ids named by a combo bitset, in insertion order.
    fn origins_of(&self, combo: &[u64]) -> Vec<u64> {
        let mut ids = Vec::new();
        for (wi, &word) in combo.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                ids.push(self.origin_ids[wi * 64 + bit]);
            }
        }
        ids
    }

    /// The falsified literals of the row's assigned variables (the reason
    /// side of an implication or conflict derived from the row).
    fn falsified_lits(&self, row: &Row, value_of: &impl Fn(Var) -> Option<bool>) -> Vec<Lit> {
        row.cols()
            .filter_map(|c| {
                let v = self.cols[c];
                value_of(v).map(|value| v.lit(!value))
            })
            .collect()
    }
}

/// The per-guard Gauss–Jordan matrices plus the bookkeeping that connects
/// them to the solver: pending (not yet sealed) layers, variable→matrix
/// dispatch, eagerly stored implication reasons, and the last conflict.
#[derive(Debug, Clone, Default)]
pub(crate) struct GaussEngine {
    /// Rows added under a guard but not yet compiled (sealed at the next
    /// solve), paired with their proof-stream ids (0 = tracking off).
    /// Insertion-ordered so sealing is deterministic.
    pending: Vec<(GuardKey, Vec<(XorClause, u64)>)>,
    matrices: HashMap<GuardKey, GaussMatrix>,
    /// Variable index → guards whose matrix has the variable as a column.
    touching: HashMap<u32, Vec<GuardKey>>,
    /// Antecedent literals of the most recent implication of each variable.
    reasons: HashMap<u32, Vec<Lit>>,
    /// Conflict literals of the most recent conflict.
    conflict: Vec<Lit>,
    /// Reusable buffer of affected row indices (avoids an allocation per
    /// propagated literal on the hot path).
    affected_scratch: Vec<usize>,
    /// Number of row xors performed (build, insert and re-pivot combined).
    pub(crate) row_ops: u64,
    /// `true` when the solver has a proof sink installed: rows that fire
    /// implications or conflicts enqueue [`RowDerive`] provenance records.
    tracking: bool,
    /// Derives awaiting proof logging; drained by the solver before it
    /// writes any step that may depend on them.
    derives: Vec<RowDerive>,
    /// Combos already logged, per matrix — a derived row may fire many
    /// times across solves but its derivation only needs logging once.
    logged_derives: HashMap<GuardKey, HashSet<Vec<u64>>>,
}

impl GaussEngine {
    /// Queues a row for `guard`; it becomes part of the guard's matrix when
    /// the layer is sealed. `origin` is the row's proof-stream id (0 when
    /// proof tracking is off).
    pub(crate) fn push_pending(&mut self, guard: GuardKey, xor: XorClause, origin: u64) {
        match self.pending.iter_mut().find(|(g, _)| *g == guard) {
            Some((_, rows)) => rows.push((xor, origin)),
            None => self.pending.push((guard, vec![(xor, origin)])),
        }
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    pub(crate) fn take_pending(&mut self) -> Vec<(GuardKey, Vec<(XorClause, u64)>)> {
        std::mem::take(&mut self.pending)
    }

    /// Enables provenance tracking (proof sink installed on the solver).
    pub(crate) fn set_tracking(&mut self, on: bool) {
        self.tracking = on;
    }

    /// Drains the derives recorded since the last call.
    pub(crate) fn take_derives(&mut self) -> Vec<RowDerive> {
        std::mem::take(&mut self.derives)
    }

    /// `true` when derives await logging (fast path for the solver's
    /// logging helper).
    pub(crate) fn has_derives(&self) -> bool {
        !self.derives.is_empty()
    }

    /// Returns `true` if no matrix exists (fast path for propagation).
    pub(crate) fn is_idle(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Number of matrices currently installed.
    #[cfg(test)]
    pub(crate) fn num_matrices(&self) -> usize {
        self.matrices.len()
    }

    /// Compiles `rows` into a matrix for `guard` (merging into an existing
    /// matrix if the guard already has one — rows can arrive across several
    /// solve calls).
    pub(crate) fn build(
        &mut self,
        guard: GuardKey,
        guard_lit: Lit,
        rows: &[(XorClause, u64)],
        value_of: impl Fn(Var) -> Option<bool>,
    ) -> BuildOutcome {
        let fresh = !self.matrices.contains_key(&guard);
        let matrix = self
            .matrices
            .entry(guard)
            .or_insert_with(|| GaussMatrix::new(guard_lit));
        let rows_before = matrix.rows.len();
        let mut new_cols = Vec::new();
        let mut unsat = false;
        for (xor, origin) in rows {
            match matrix.insert_row(xor, *origin, &value_of, &mut new_cols, &mut self.row_ops) {
                Ok(_) => {}
                Err(from) => {
                    // The contradiction `0 = 1` is the sum of the named
                    // originals; record the derivation (a singleton is the
                    // original itself — already logged as a row).
                    if self.tracking && from.len() > 1 {
                        self.derives.push(RowDerive {
                            guard: guard_lit.var(),
                            vars: Vec::new(),
                            rhs: true,
                            from,
                        });
                    }
                    unsat = true;
                    break;
                }
            }
        }
        if unsat {
            self.drop_matrix(guard);
            return BuildOutcome::LayerUnsat;
        }
        let total = matrix.rows.len();
        for v in new_cols {
            self.touching
                .entry(v.index() as u32)
                .or_default()
                .push(guard);
        }
        if total == 0 {
            // Every row was redundant: nothing to watch, drop the shell.
            self.drop_matrix(guard);
        }
        BuildOutcome::Built {
            added: total - rows_before,
            fresh: fresh && total > 0,
        }
    }

    /// Number of rows in the guard's installed matrix (zero if none).
    pub(crate) fn matrix_rows(&self, guard: GuardKey) -> usize {
        self.matrices.get(&guard).map(|m| m.rows.len()).unwrap_or(0)
    }

    fn drop_matrix(&mut self, guard: GuardKey) {
        self.logged_derives.remove(&guard);
        if let Some(matrix) = self.matrices.remove(&guard) {
            for v in &matrix.cols {
                if let Some(list) = self.touching.get_mut(&(v.index() as u32)) {
                    list.retain(|&g| g != guard);
                    if list.is_empty() {
                        self.touching.remove(&(v.index() as u32));
                    }
                }
            }
        }
    }

    /// Removes the guard's matrix and any pending rows. Returns the number
    /// of matrix rows dropped.
    pub(crate) fn retire(&mut self, guard_var: Var) -> usize {
        let key = guard_var.index() as GuardKey;
        self.pending.retain(|(g, _)| *g != key);
        let rows = self.matrices.get(&key).map(|m| m.rows.len()).unwrap_or(0);
        self.drop_matrix(key);
        rows
    }

    /// Records the antecedents of an implication the solver enqueued; they
    /// stay retrievable (via [`GaussEngine::reason_for`]) until the
    /// variable is implied again, which can only happen after backtracking
    /// unassigned it.
    pub(crate) fn store_reason(&mut self, var: Var, reason: Vec<Lit>) {
        self.reasons.insert(var.index() as u32, reason);
    }

    /// The antecedent literals stored for the most recent implication of
    /// `var` (all currently false).
    pub(crate) fn reason_for(&self, var: Var) -> &[Lit] {
        self.reasons
            .get(&(var.index() as u32))
            .expect("gauss reason queried for a variable it never implied")
    }

    /// Stores an explicit conflict clause (used by the solver when an
    /// implied literal turns out to be already false).
    pub(crate) fn set_conflict(&mut self, lits: Vec<Lit>) {
        self.conflict = lits;
    }

    /// The literals of the most recent conflict (all currently false).
    pub(crate) fn conflict_lits(&self) -> Vec<Lit> {
        self.conflict.clone()
    }

    /// Reacts to the assignment of `var`: re-pivots matrices whose basic
    /// variable it is, then scans affected matrices for implications and
    /// conflicts. `var` may also be a guard variable, in which case the
    /// layer's pending implications fire on activation.
    pub(crate) fn on_assign(
        &mut self,
        var: Var,
        value_of: impl Fn(Var) -> Option<bool>,
        results: &mut Vec<GaussResult>,
    ) {
        // Guard event: the matrix (if any) may just have become active.
        let key = var.index() as GuardKey;
        if self.matrices.contains_key(&key) {
            self.scan_matrix(key, &value_of, results);
        }
        // Take (rather than clone) the touching list and the affected-rows
        // buffer: this runs for nearly every propagated literal of a hashed
        // solve, so the loop must not allocate. Nothing inside the loop
        // mutates `touching`, so the list is restored verbatim below.
        let Some(entry) = self.touching.get_mut(&key) else {
            return;
        };
        let guards = std::mem::take(entry);
        let mut affected = std::mem::take(&mut self.affected_scratch);
        for &guard in &guards {
            // Only rows whose contents or column set this assignment could
            // have changed need a state check: rows containing the assigned
            // column, plus rows rewritten by the re-pivot elimination
            // (which may have gained or lost the column in the process).
            // `affected` stays tiny (≤ the layer's row count), so the
            // linear dedup below beats any set structure.
            affected.clear();
            let Some(matrix) = self.matrices.get_mut(&guard) else {
                continue;
            };
            let Some(&col) = matrix.col_of.get(&key) else {
                continue;
            };
            matrix.repivot_on_assign(col, &value_of, &mut self.row_ops, &mut affected);
            for (i, row) in matrix.rows.iter().enumerate() {
                if row.get(col) && !affected.contains(&i) {
                    affected.push(i);
                }
            }
            self.scan_rows(guard, Some(&affected), &value_of, results);
            if matches!(results.last(), Some(GaussResult::Conflict)) {
                break;
            }
        }
        self.affected_scratch = affected;
        self.touching.insert(key, guards);
    }

    /// Scans every row of one matrix under the current assignment, pushing
    /// implications (and at most one conflict, which terminates the scan).
    /// Used on guard activation and at seal time, where any row may fire.
    pub(crate) fn scan_matrix(
        &mut self,
        guard: GuardKey,
        value_of: &impl Fn(Var) -> Option<bool>,
        results: &mut Vec<GaussResult>,
    ) {
        self.scan_rows(guard, None, value_of, results);
    }

    /// Scans the given rows (all of them for `None`) of one matrix under
    /// the current assignment, pushing implications (and at most one
    /// conflict, which terminates the scan).
    fn scan_rows(
        &mut self,
        guard: GuardKey,
        rows: Option<&[usize]>,
        value_of: &impl Fn(Var) -> Option<bool>,
        results: &mut Vec<GaussResult>,
    ) {
        let Some(matrix) = self.matrices.get(&guard) else {
            return;
        };
        let g = matrix.guard;
        // None: the guard is unassigned (layer pending). Some(true): the
        // guard is satisfied (layer dormant). Some(false): layer active.
        let guard_value = value_of(g.var()).map(|v| g.evaluate(v));
        if guard_value == Some(true) {
            return; // dormant: `g ∨ row` is satisfied outright
        }
        let active = guard_value == Some(false);
        // Any row that fires came from the *reduced* matrix; record its
        // derivation from the logged originals so the proof checker can
        // reproduce the implication (singleton combos are the originals
        // themselves, and each distinct combination is logged only once).
        let mut logged = self
            .tracking
            .then(|| self.logged_derives.entry(guard).or_default());
        let derives = &mut self.derives;
        let mut note_derive = |row: &Row| {
            let Some(logged) = logged.as_deref_mut() else {
                return;
            };
            let popcount: u32 = row.combo.iter().map(|w| w.count_ones()).sum();
            if popcount > 1 && logged.insert(row.combo.clone()) {
                derives.push(RowDerive {
                    guard: g.var(),
                    vars: row.cols().map(|c| matrix.cols[c]).collect(),
                    rhs: row.rhs,
                    from: matrix.origins_of(&row.combo),
                });
            }
        };
        let mut conflict: Option<Vec<Lit>> = None;
        let mut indices = 0..matrix.rows.len();
        let mut listed = rows.map(|r| r.iter().copied());
        let mut next = || match listed.as_mut() {
            Some(iter) => iter.next(),
            None => indices.next(),
        };
        while let Some(index) = next() {
            let row = &matrix.rows[index];
            let state = matrix.state_of(row, value_of);
            match state.unassigned {
                0 if state.parity != row.rhs => {
                    note_derive(row);
                    let mut lits = matrix.falsified_lits(row, value_of);
                    if active {
                        lits.push(g);
                        conflict = Some(lits);
                        break;
                    }
                    // Guard unassigned: `g ∨ row` is unit on the guard.
                    results.push(GaussResult::Implied {
                        lit: g,
                        reason: lits,
                    });
                }
                1 if active => {
                    note_derive(row);
                    let v = matrix.cols[state.unassigned_col];
                    let lit = v.lit(row.rhs ^ state.parity);
                    let mut lits = matrix.falsified_lits(row, value_of);
                    lits.push(g);
                    results.push(GaussResult::Implied { lit, reason: lits });
                }
                _ => {}
            }
        }
        if let Some(lits) = conflict {
            self.conflict = lits;
            results.push(GaussResult::Conflict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn value_fn(map: &Map<Var, bool>) -> impl Fn(Var) -> Option<bool> + '_ {
        move |v| map.get(&v).copied()
    }

    fn xor(vars: &[usize], rhs: bool) -> XorClause {
        XorClause::new(vars.iter().map(|&i| Var::new(i)).collect::<Vec<_>>(), rhs)
    }

    fn guard_var() -> Var {
        Var::new(9)
    }

    fn guard_lit() -> Lit {
        guard_var().positive()
    }

    fn implied_lits(results: &[GaussResult]) -> Vec<Lit> {
        results
            .iter()
            .map(|r| match r {
                GaussResult::Implied { lit, .. } => *lit,
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    fn build(engine: &mut GaussEngine, rows: &[XorClause]) -> BuildOutcome {
        let assigned: Map<Var, bool> = Map::new();
        let rows: Vec<(XorClause, u64)> = rows.iter().map(|x| (x.clone(), 0)).collect();
        engine.build(9, guard_lit(), &rows, value_fn(&assigned))
    }

    #[test]
    fn contradictory_rows_reduce_to_layer_unsat() {
        let mut engine = GaussEngine::default();
        // x0⊕x1 = 0, x1⊕x2 = 1, x0⊕x2 = 0 sums to 0 = 1.
        let outcome = build(
            &mut engine,
            &[xor(&[0, 1], false), xor(&[1, 2], true), xor(&[0, 2], false)],
        );
        assert_eq!(outcome, BuildOutcome::LayerUnsat);
        assert!(engine.is_idle());
    }

    #[test]
    fn redundant_rows_are_dropped() {
        let mut engine = GaussEngine::default();
        let outcome = build(
            &mut engine,
            &[xor(&[0, 1], true), xor(&[1, 2], false), xor(&[0, 2], true)],
        );
        assert_eq!(
            outcome,
            BuildOutcome::Built {
                added: 2,
                fresh: true
            }
        );
    }

    #[test]
    fn cross_row_implication_is_found() {
        let mut engine = GaussEngine::default();
        // x0⊕x1 = 0 and x0⊕x1⊕x2 = 1 together force x2 = 1 with *no*
        // assignment at all — the reduction digests it, and activation
        // (assigning ¬g) fires the implication.
        let outcome = build(&mut engine, &[xor(&[0, 1], false), xor(&[0, 1, 2], true)]);
        assert_eq!(
            outcome,
            BuildOutcome::Built {
                added: 2,
                fresh: true
            }
        );
        let mut assigned = Map::new();
        assigned.insert(guard_var(), false); // ¬g: layer active
        let mut results = Vec::new();
        engine.on_assign(guard_var(), value_fn(&assigned), &mut results);
        assert_eq!(implied_lits(&results), vec![Var::new(2).positive()]);
        match &results[0] {
            GaussResult::Implied { reason, .. } => assert!(reason.contains(&guard_lit())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn violated_rows_imply_the_guard_while_unassigned() {
        let mut engine = GaussEngine::default();
        build(&mut engine, &[xor(&[0, 1], true)]);
        let mut assigned = Map::new();
        assigned.insert(Var::new(0), true);
        let mut results = Vec::new();
        engine.on_assign(Var::new(0), value_fn(&assigned), &mut results);
        assert!(results.is_empty(), "guard unassigned, row still open");
        assigned.insert(Var::new(1), true); // parity now violated
        engine.on_assign(Var::new(1), value_fn(&assigned), &mut results);
        assert_eq!(implied_lits(&results), vec![guard_lit()]);
        // The reason is the falsified row, without the guard itself.
        match &results[0] {
            GaussResult::Implied { reason, .. } => {
                assert_eq!(reason.len(), 2);
                assert!(!reason.contains(&guard_lit()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn active_violated_row_is_a_conflict_with_guard_in_the_clause() {
        let mut engine = GaussEngine::default();
        build(&mut engine, &[xor(&[0, 1], true)]);
        let mut assigned = Map::new();
        assigned.insert(guard_var(), false);
        assigned.insert(Var::new(0), true);
        let mut results = Vec::new();
        engine.on_assign(Var::new(0), value_fn(&assigned), &mut results);
        results.clear();
        assigned.insert(Var::new(1), true);
        engine.on_assign(Var::new(1), value_fn(&assigned), &mut results);
        assert_eq!(results, vec![GaussResult::Conflict]);
        let lits = engine.conflict_lits();
        assert_eq!(lits.len(), 3);
        assert!(lits.contains(&guard_lit()));
    }

    #[test]
    fn dormant_matrix_is_silent() {
        let mut engine = GaussEngine::default();
        build(&mut engine, &[xor(&[0, 1], true)]);
        let mut assigned = Map::new();
        assigned.insert(guard_var(), true); // g: layer dormant
        assigned.insert(Var::new(0), true);
        assigned.insert(Var::new(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::new(0), value_fn(&assigned), &mut results);
        engine.on_assign(Var::new(1), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
    }

    #[test]
    fn repivot_keeps_propagating_after_basic_assignment() {
        let mut engine = GaussEngine::default();
        // Two rows over four variables.
        build(
            &mut engine,
            &[xor(&[0, 1, 2], false), xor(&[1, 2, 3], true)],
        );
        let mut assigned = Map::new();
        assigned.insert(guard_var(), false);
        let mut results = Vec::new();
        engine.on_assign(guard_var(), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
        // Assign both basics' candidates one by one; whatever the internal
        // pivots are, after x0 and x1 the system x2 = x0⊕x1, x3 = ¬(x1⊕x2)
        // must imply the rest.
        assigned.insert(Var::new(0), true);
        engine.on_assign(Var::new(0), value_fn(&assigned), &mut results);
        assigned.insert(Var::new(1), true);
        engine.on_assign(Var::new(1), value_fn(&assigned), &mut results);
        // x0⊕x1⊕x2 = 0 with x0 = x1 = 1 forces x2 = 0; then x1⊕x2⊕x3 = 1
        // forces x3 = 0.
        assert!(implied_lits(&results).contains(&Var::new(2).negative()));
    }

    #[test]
    fn tracked_cross_row_implication_records_its_derivation() {
        let mut engine = GaussEngine::default();
        engine.set_tracking(true);
        let assigned: Map<Var, bool> = Map::new();
        let rows = vec![(xor(&[0, 1], false), 7), (xor(&[0, 1, 2], true), 8)];
        engine.build(9, guard_lit(), &rows, value_fn(&assigned));
        let mut assigned = Map::new();
        assigned.insert(guard_var(), false);
        let mut results = Vec::new();
        engine.on_assign(guard_var(), value_fn(&assigned), &mut results);
        assert_eq!(implied_lits(&results), vec![Var::new(2).positive()]);
        let derives = engine.take_derives();
        assert_eq!(derives.len(), 1);
        assert_eq!(derives[0].guard, guard_var());
        assert_eq!(derives[0].vars, vec![Var::new(2)]);
        assert!(derives[0].rhs);
        assert_eq!(derives[0].from, vec![7, 8]);
        // The same combination firing again is not re-logged.
        engine.on_assign(guard_var(), value_fn(&assigned), &mut results);
        assert!(!engine.has_derives());
    }

    #[test]
    fn tracked_layer_unsat_records_the_contradiction() {
        let mut engine = GaussEngine::default();
        engine.set_tracking(true);
        let assigned: Map<Var, bool> = Map::new();
        let rows = vec![
            (xor(&[0, 1], false), 3),
            (xor(&[1, 2], true), 4),
            (xor(&[0, 2], false), 5),
        ];
        let outcome = engine.build(9, guard_lit(), &rows, value_fn(&assigned));
        assert_eq!(outcome, BuildOutcome::LayerUnsat);
        let derives = engine.take_derives();
        assert_eq!(derives.len(), 1);
        assert_eq!(derives[0].guard, guard_var());
        assert!(derives[0].vars.is_empty());
        assert!(derives[0].rhs);
        assert_eq!(derives[0].from, vec![3, 4, 5]);
    }

    #[test]
    fn retire_drops_matrix_and_pending() {
        let mut engine = GaussEngine::default();
        engine.push_pending(9, xor(&[0, 1], true), 0);
        assert!(engine.has_pending());
        build(&mut engine, &[xor(&[2, 3], false)]);
        assert_eq!(engine.retire(Var::new(9)), 1);
        assert!(!engine.has_pending());
        assert!(engine.is_idle());
        let mut assigned = Map::new();
        assigned.insert(Var::new(2), true);
        assigned.insert(Var::new(3), false);
        let mut results = Vec::new();
        engine.on_assign(Var::new(2), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
    }
}
