//! VSIDS decision heuristic with phase saving.

use unigen_cnf::Var;

/// An indexed max-heap over variable activities (the classic MiniSat
/// `OrderHeap`), plus the exponential VSIDS bumping machinery.
#[derive(Debug, Clone)]
pub(crate) struct Vsids {
    /// Activity score per variable.
    activity: Vec<f64>,
    /// Heap of variable indices ordered by activity (max at the root).
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
    /// Current bump increment.
    increment: f64,
    /// Multiplicative decay (applied by growing the increment).
    decay: f64,
    /// Saved phase per variable (used for polarity selection).
    phase: Vec<bool>,
    /// Phase given to variables added by [`Vsids::grow_to`].
    default_phase: bool,
}

const ABSENT: usize = usize::MAX;
const RESCALE_THRESHOLD: f64 = 1e100;

impl Vsids {
    /// Creates the heuristic state for `num_vars` variables.
    ///
    /// `noise` provides a small deterministic perturbation of the initial
    /// activities so that different seeds explore different trees; pass an
    /// empty slice for fully uniform initial activities.
    pub(crate) fn new(num_vars: usize, decay: f64, default_phase: bool, noise: &[f64]) -> Self {
        let mut vsids = Vsids {
            activity: (0..num_vars)
                .map(|i| noise.get(i).copied().unwrap_or(0.0))
                .collect(),
            heap: Vec::with_capacity(num_vars),
            position: vec![ABSENT; num_vars],
            increment: 1.0,
            decay,
            phase: vec![default_phase; num_vars],
            default_phase,
        };
        for i in 0..num_vars {
            vsids.insert(Var::new(i));
        }
        vsids
    }

    /// Extends the heuristic to cover `num_vars` variables, keeping the
    /// activities and saved phases of the existing ones (essential for
    /// incremental solving, where guard variables are added between cells and
    /// the accumulated activity profile must survive).
    ///
    /// `noise` perturbs the initial activities of the *new* variables
    /// (indexed from 0 for the first added variable).
    pub(crate) fn grow_to(&mut self, num_vars: usize, noise: &[f64]) {
        let old = self.activity.len();
        if num_vars <= old {
            return;
        }
        for i in old..num_vars {
            self.activity
                .push(noise.get(i - old).copied().unwrap_or(0.0) * self.increment);
            self.position.push(ABSENT);
            self.phase.push(self.default_phase);
            self.insert(Var::new(i));
        }
    }

    /// Returns the saved phase of `var`.
    pub(crate) fn saved_phase(&self, var: Var) -> bool {
        self.phase[var.index()]
    }

    /// Saves the phase of `var` (called when the trail is unwound).
    pub(crate) fn save_phase(&mut self, var: Var, value: bool) {
        self.phase[var.index()] = value;
    }

    /// Increases the activity of `var` (called for every variable involved in
    /// a conflict).
    pub(crate) fn bump(&mut self, var: Var) {
        let i = var.index();
        self.activity[i] += self.increment;
        if self.activity[i] > RESCALE_THRESHOLD {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.increment *= 1e-100;
        }
        if self.position[i] != ABSENT {
            self.sift_up(self.position[i]);
        }
    }

    /// Applies the activity decay (called once per conflict).
    pub(crate) fn decay(&mut self) {
        self.increment /= self.decay;
    }

    /// Reinserts `var` into the heap (called when the trail is unwound).
    pub(crate) fn insert(&mut self, var: Var) {
        let i = var.index();
        if self.position[i] != ABSENT {
            return;
        }
        self.position[i] = self.heap.len();
        self.heap.push(i as u32);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the unassigned variable with the highest activity,
    /// skipping (and dropping) variables for which `is_assigned` returns
    /// true. Returns `None` when every variable is assigned.
    pub(crate) fn pop_unassigned<F>(&mut self, is_assigned: F) -> Option<Var>
    where
        F: Fn(Var) -> bool,
    {
        while let Some(&top) = self.heap.first() {
            let var = Var::new(top as usize);
            self.remove_top();
            if !is_assigned(var) {
                return Some(var);
            }
        }
        None
    }

    fn remove_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let removed = self.heap.pop().expect("heap is non-empty");
        self.position[removed as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.position[self.heap[0] as usize] = 0;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.activity[self.heap[pos] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len()
                && self.activity[self.heap[left] as usize]
                    > self.activity[self.heap[largest] as usize]
            {
                largest = left;
            }
            if right < self.heap.len()
                && self.activity[self.heap[right] as usize]
                    > self.activity[self.heap[largest] as usize]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a;
        self.position[self.heap[b] as usize] = b;
    }

    #[cfg(test)]
    fn heap_invariant_holds(&self) -> bool {
        (1..self.heap.len()).all(|i| {
            let parent = (i - 1) / 2;
            self.activity[self.heap[parent] as usize] >= self.activity[self.heap[i] as usize]
        }) && self
            .heap
            .iter()
            .enumerate()
            .all(|(pos, &v)| self.position[v as usize] == pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_highest_activity_first() {
        let mut vsids = Vsids::new(4, 0.95, false, &[]);
        vsids.bump(Var::new(2));
        vsids.bump(Var::new(2));
        vsids.bump(Var::new(1));
        assert!(vsids.heap_invariant_holds());
        let first = vsids.pop_unassigned(|_| false).unwrap();
        assert_eq!(first, Var::new(2));
        let second = vsids.pop_unassigned(|_| false).unwrap();
        assert_eq!(second, Var::new(1));
    }

    #[test]
    fn skips_assigned_variables() {
        let mut vsids = Vsids::new(3, 0.95, false, &[]);
        vsids.bump(Var::new(0));
        let picked = vsids.pop_unassigned(|v| v == Var::new(0)).unwrap();
        assert_ne!(picked, Var::new(0));
    }

    #[test]
    fn returns_none_when_all_assigned() {
        let mut vsids = Vsids::new(2, 0.95, false, &[]);
        assert!(vsids.pop_unassigned(|_| true).is_none());
    }

    #[test]
    fn reinsertion_is_idempotent() {
        let mut vsids = Vsids::new(2, 0.95, false, &[]);
        let v = vsids.pop_unassigned(|_| false).unwrap();
        vsids.insert(v);
        vsids.insert(v);
        assert!(vsids.heap_invariant_holds());
        // Both variables must still be retrievable exactly once each.
        let a = vsids.pop_unassigned(|_| false).unwrap();
        let b = vsids.pop_unassigned(|_| false).unwrap();
        assert_ne!(a, b);
        assert!(vsids.pop_unassigned(|_| false).is_none());
    }

    #[test]
    fn phase_saving_roundtrip() {
        let mut vsids = Vsids::new(2, 0.95, true, &[]);
        assert!(vsids.saved_phase(Var::new(0)));
        vsids.save_phase(Var::new(0), false);
        assert!(!vsids.saved_phase(Var::new(0)));
    }

    #[test]
    fn rescaling_preserves_order() {
        let mut vsids = Vsids::new(3, 0.5, false, &[]);
        // Push the increment just past the rescale threshold (2^340 ≈ 2e102),
        // so the first bump triggers a rescale.
        for _ in 0..340 {
            vsids.decay();
        }
        vsids.bump(Var::new(1));
        vsids.bump(Var::new(2));
        vsids.bump(Var::new(2));
        assert!(vsids.heap_invariant_holds());
        assert_eq!(vsids.pop_unassigned(|_| false).unwrap(), Var::new(2));
    }

    #[test]
    fn grow_to_preserves_existing_activity() {
        let mut vsids = Vsids::new(2, 0.95, false, &[]);
        vsids.bump(Var::new(1));
        vsids.grow_to(4, &[]);
        assert!(vsids.heap_invariant_holds());
        // The bumped old variable still wins over the fresh ones.
        assert_eq!(vsids.pop_unassigned(|_| false).unwrap(), Var::new(1));
        vsids.save_phase(Var::new(3), true);
        assert!(vsids.saved_phase(Var::new(3)));
        // All four variables are present exactly once.
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = vsids.pop_unassigned(|_| false) {
            seen.insert(v);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn initial_noise_breaks_ties() {
        let mut vsids = Vsids::new(3, 0.95, false, &[0.0, 0.5, 0.25]);
        assert_eq!(vsids.pop_unassigned(|_| false).unwrap(), Var::new(1));
        assert_eq!(vsids.pop_unassigned(|_| false).unwrap(), Var::new(2));
    }
}
