//! An incremental CDCL SAT solver with native xor-constraint support and
//! bounded witness enumeration, standing in for CryptoMiniSAT in the UniGen
//! reproduction.
//!
//! **Paper map:** implements the `BSAT(F ∧ (h(y) = α), hiThresh, S)`
//! primitive that Algorithm 1 of *Balancing Scalability and Uniformity in
//! SAT Witness Generator* (DAC 2014) invokes on lines 10 and 17, including
//! the sampling-set-projected blocking clauses that make enumerated
//! witnesses distinct on `S` (Section 2), and the per-invocation budgets the
//! paper's experiments impose (Section 4).
//!
//! The paper's algorithm needs exactly two services from its SAT back end:
//!
//! 1. solving CNF formulas conjoined with random **xor constraints** drawn
//!    from the hash family `H_xor(|S|, m, 3)`, and
//! 2. `BSAT(F, N)` — enumerating up to `N` witnesses that are **distinct on
//!    the sampling set** `S`, using blocking clauses restricted to `S`.
//!
//! Both services are issued *many times against the same base formula*: a
//! sampling run solves `F` under a long sequence of different hash layers.
//! This crate therefore exposes an **incremental interface** so that one
//! [`Solver`] survives the whole sequence:
//!
//! * [`Solver::solve_under_assumptions`] solves with a set of assumption
//!   literals installed as the first decision levels (the MiniSat
//!   discipline), so an `Unsat` answer under assumptions leaves the solver
//!   consistent and reusable;
//! * [`Solver::new_guard`] allocates an *activation guard* `g`;
//!   [`Solver::add_xor_under`] / [`Solver::add_clause_under`] attach a hash
//!   layer (and the enumerator's blocking clauses) to it, representing
//!   `g ∨ constraint`. The layer is enabled by assuming
//!   [`Guard::assumption`] (`¬g`) and removed for good by
//!   [`Solver::retire_guard`], which asserts `g` and deletes every clause
//!   mentioning the guard.
//!
//! # What survives a cell, and why it is sound
//!
//! While a guard is active, `¬g` is a pseudo-decision, so `g` is falsified
//! at a decision level ≥ 1 — never at level zero. First-UIP conflict
//! analysis keeps every falsified literal above level zero, so **any learned
//! clause whose derivation touched a guarded constraint contains `g`** and
//! is thereby tagged with its cell. Retiring the guard deletes exactly those
//! clauses (and satisfies any straggler by asserting `g`). Everything else —
//! learned clauses over base-formula variables, VSIDS activities, saved
//! phases, and the clause arena's watch lists — carries over to the next
//! cell, which is where the incremental interface gets its speedup
//! (measured in `BENCH_incremental.json` at the repository root).
//!
//! The crate provides:
//!
//! * [`Solver`] — a conflict-driven clause-learning solver with two-watched
//!   literals over a flat clause arena (blocker literals skip satisfied
//!   clauses without touching clause memory), first-UIP clause learning,
//!   VSIDS decisions with phase saving, Luby restarts, LBD-based
//!   learned-clause reduction, a watched-variable propagation engine for
//!   (optionally guarded) xor constraints with lazily generated reason
//!   clauses, and per-guard Gauss–Jordan matrices ([`SolverConfig::gauss`])
//!   that recover implications and conflicts entailed by *combinations* of a
//!   hash layer's xor rows,
//! * [`enumerate::bounded_solutions`] (the paper's `BSAT`),
//!   [`enumerate::Enumerator`] for incremental enumeration with
//!   sampling-set-restricted blocking clauses, and
//!   [`enumerate::enumerate_cell`] — the guard-scoped hash-cell `BSAT` every
//!   sampler loop in the workspace is built on,
//! * [`Budget`] — per-call conflict/time budgets emulating the paper's
//!   per-`BSAT`-invocation timeouts.
//!
//! # Example
//!
//! ```
//! use unigen_cnf::{CnfFormula, Lit, XorClause};
//! use unigen_satsolver::{Solver, SolveResult};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
//!
//! let mut solver = Solver::from_formula(&f);
//!
//! // One persistent solver, many hash cells:
//! let guard = solver.new_guard();
//! solver.add_xor_under(XorClause::from_dimacs([1, 2, 3], true), guard);
//! match solver.solve_under_assumptions(&[guard.assumption()]) {
//!     SolveResult::Sat(model) => assert!(f.evaluate(&model)),
//!     SolveResult::Unsat => {} // cell is empty; the solver stays usable
//!     other => panic!("unexpected {other:?}"),
//! }
//! solver.retire_guard(guard); // drop the hash layer, keep what was learned
//! assert!(solver.solve().is_sat());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod clause_db;
mod config;
mod decide;
mod fault;
mod gauss;
mod restart;
mod solver;
mod stats;
mod xor_engine;

pub mod enumerate;
pub mod proof;
pub mod support;

pub use budget::Budget;
pub use config::{GaussMode, SolverConfig};
pub use enumerate::{bounded_solutions, enumerate_cell, EnumerationOutcome, Enumerator};
pub use fault::{FaultHook, FaultSite, InterruptReason};
pub use proof::ProofLog;
pub use solver::{Guard, SolveResult, Solver};
pub use stats::SolverStats;
