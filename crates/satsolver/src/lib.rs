//! A CDCL SAT solver with native xor-constraint support and bounded witness
//! enumeration, standing in for CryptoMiniSAT in the UniGen reproduction.
//!
//! **Paper map:** implements the `BSAT(F ∧ (h(y) = α), hiThresh, S)`
//! primitive that Algorithm 1 of *Balancing Scalability and Uniformity in
//! SAT Witness Generator* (DAC 2014) invokes on lines 10 and 17, including
//! the sampling-set-projected blocking clauses that make enumerated
//! witnesses distinct on `S` (Section 2), and the per-invocation budgets the
//! paper's experiments impose (Section 4).
//!
//! The paper's algorithm needs exactly two services from its SAT back end:
//!
//! 1. solving CNF formulas conjoined with random **xor constraints** drawn
//!    from the hash family `H_xor(|S|, m, 3)`, and
//! 2. `BSAT(F, N)` — enumerating up to `N` witnesses that are **distinct on
//!    the sampling set** `S`, using blocking clauses restricted to `S`.
//!
//! This crate provides both:
//!
//! * [`Solver`] — a conflict-driven clause-learning solver with two-watched
//!   literals, first-UIP clause learning, VSIDS decisions with phase saving,
//!   Luby restarts, LBD-based learned-clause reduction, and a watched-variable
//!   propagation engine for xor constraints (with lazily generated reason
//!   clauses, so xor constraints participate in conflict analysis exactly
//!   like ordinary clauses),
//! * [`enumerate::bounded_solutions`] (the paper's `BSAT`) and
//!   [`enumerate::Enumerator`] for incremental enumeration with
//!   sampling-set-restricted blocking clauses,
//! * [`Budget`] — per-call conflict/time budgets emulating the paper's
//!   per-`BSAT`-invocation timeouts.
//!
//! # Example
//!
//! ```
//! use unigen_cnf::{CnfFormula, Lit, XorClause};
//! use unigen_satsolver::{Solver, SolveResult};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
//! f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], true))?;
//!
//! let mut solver = Solver::from_formula(&f);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(f.evaluate(&model)),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod clause_db;
mod config;
mod decide;
mod restart;
mod solver;
mod stats;
mod xor_engine;

pub mod enumerate;
pub mod support;

pub use budget::Budget;
pub use config::SolverConfig;
pub use enumerate::{bounded_solutions, EnumerationOutcome, Enumerator};
pub use solver::{SolveResult, Solver};
pub use stats::SolverStats;
