//! Bounded witness enumeration — the paper's `BSAT(F, N)` primitive.
//!
//! `BSAT(F, N)` returns `min(|R_F|, N)` *distinct* witnesses of `F`. UniGen
//! calls it on `F ∧ (h(x_1 … x_|S|) = α)` with `N = hiThresh`, and relies on
//! one crucial CryptoMiniSAT-era optimisation described in the paper's
//! "Implementation issues" paragraph: because the sampling set `S` determines
//! every satisfying assignment, **blocking clauses can be restricted to the
//! variables in `S`**, which keeps them short and cheap.
//!
//! Distinctness is therefore defined on the projection onto the sampling
//! set: two witnesses that agree on `S` count as the same witness.

use unigen_cnf::{Clause, Model, Var};

use crate::budget::Budget;
use crate::solver::{SolveResult, Solver};

/// Outcome of a bounded enumeration call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// The witnesses found, each distinct on the sampling set.
    pub witnesses: Vec<Model>,
    /// `true` if enumeration stopped because the bound was reached (there may
    /// be more witnesses).
    pub bound_reached: bool,
    /// `true` if the per-call budget ran out before the enumeration finished;
    /// the witnesses found so far are still returned, mirroring how the
    /// paper's experiments treat `BSAT` timeouts.
    pub budget_exhausted: bool,
}

impl EnumerationOutcome {
    /// Returns the number of witnesses found.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Returns `true` if no witness was found.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// Returns `true` if the enumeration is exact, i.e. it neither hit the
    /// bound nor ran out of budget, so `witnesses` is the complete list of
    /// solutions (projected on the sampling set).
    pub fn is_exhaustive(&self) -> bool {
        !self.bound_reached && !self.budget_exhausted
    }
}

/// Incremental bounded enumerator over a [`Solver`].
///
/// The enumerator owns the solver and adds one blocking clause (restricted to
/// the sampling set) per witness produced. It can be driven one witness at a
/// time via [`Enumerator::next_witness`] or drained via
/// [`Enumerator::run`].
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit, Var};
/// use unigen_satsolver::{Enumerator, Solver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // x1 ∨ x2 over sampling set {x1, x2} has 3 witnesses.
/// let mut f = CnfFormula::new(2);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
/// let sampling: Vec<Var> = vec![Var::from_dimacs(1), Var::from_dimacs(2)];
///
/// let solver = Solver::from_formula(&f);
/// let mut enumerator = Enumerator::new(solver, sampling);
/// let outcome = enumerator.run(10, &Default::default());
/// assert_eq!(outcome.len(), 3);
/// assert!(outcome.is_exhaustive());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Enumerator {
    solver: Solver,
    sampling_set: Vec<Var>,
    exhausted: bool,
}

impl Enumerator {
    /// Creates an enumerator over `solver`, treating `sampling_set` as the
    /// projection on which witnesses must be distinct.
    ///
    /// # Panics
    ///
    /// Panics if the sampling set is empty.
    pub fn new(solver: Solver, sampling_set: Vec<Var>) -> Self {
        assert!(
            !sampling_set.is_empty(),
            "enumeration requires a non-empty sampling set"
        );
        Enumerator {
            solver,
            sampling_set,
            exhausted: false,
        }
    }

    /// Returns a reference to the underlying solver (for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Produces the next witness (distinct on the sampling set from all
    /// previously produced ones), or `None` if none remains or the budget ran
    /// out.
    ///
    /// The second component of the pair is `true` when the budget was
    /// exhausted (so `None` does not mean "no more witnesses").
    pub fn next_witness(&mut self, budget: &Budget) -> (Option<Model>, bool) {
        if self.exhausted {
            return (None, false);
        }
        match self.solver.solve_with_budget(budget) {
            SolveResult::Sat(model) => {
                let projection = model.project(&self.sampling_set);
                let blocking: Vec<_> = projection.to_lits().iter().map(|&l| !l).collect();
                self.solver.add_clause(Clause::new(blocking));
                (Some(model), false)
            }
            SolveResult::Unsat => {
                self.exhausted = true;
                (None, false)
            }
            SolveResult::Unknown => (None, true),
        }
    }

    /// Enumerates up to `bound` witnesses, spending at most `budget` per
    /// underlying solver call.
    pub fn run(&mut self, bound: usize, budget: &Budget) -> EnumerationOutcome {
        let mut witnesses = Vec::new();
        let mut budget_exhausted = false;
        while witnesses.len() < bound {
            match self.next_witness(budget) {
                (Some(model), _) => witnesses.push(model),
                (None, true) => {
                    budget_exhausted = true;
                    break;
                }
                (None, false) => break,
            }
        }
        let bound_reached = witnesses.len() >= bound && !self.exhausted;
        EnumerationOutcome {
            witnesses,
            bound_reached,
            budget_exhausted,
        }
    }
}

/// The paper's `BSAT(F, N)`: returns up to `bound` witnesses of the formula
/// loaded into `solver`, distinct on `sampling_set`, within `budget` per
/// solver call.
///
/// This is a convenience wrapper that consumes the solver; use
/// [`Enumerator`] directly when the solver (or its statistics) must survive
/// the call.
pub fn bounded_solutions(
    solver: Solver,
    sampling_set: &[Var],
    bound: usize,
    budget: &Budget,
) -> EnumerationOutcome {
    let mut enumerator = Enumerator::new(solver, sampling_set.to_vec());
    enumerator.run(bound, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use unigen_cnf::{dimacs, CnfFormula, Lit, XorClause};

    fn all_vars(n: usize) -> Vec<Var> {
        (0..n).map(Var::new).collect()
    }

    #[test]
    fn enumerates_exactly_all_models() {
        // x1 ∨ x2 ∨ x3 has 7 models.
        let f = dimacs::parse("p cnf 3 1\n1 2 3 0\n").unwrap();
        let outcome =
            bounded_solutions(Solver::from_formula(&f), &all_vars(3), 100, &Budget::new());
        assert_eq!(outcome.len(), 7);
        assert!(outcome.is_exhaustive());
        for w in &outcome.witnesses {
            assert!(f.evaluate(w));
        }
    }

    #[test]
    fn respects_the_bound() {
        let f = dimacs::parse("p cnf 4 0\n").unwrap();
        let outcome = bounded_solutions(Solver::from_formula(&f), &all_vars(4), 5, &Budget::new());
        assert_eq!(outcome.len(), 5);
        assert!(outcome.bound_reached);
        assert!(!outcome.is_exhaustive());
    }

    #[test]
    fn witnesses_are_distinct_on_sampling_set() {
        // x3 is forced equal to x1 ⊕ x2; sampling set {x1, x2} yields 4
        // distinct projected witnesses even though x3 varies with them.
        let mut f = CnfFormula::new(3);
        f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], false))
            .unwrap();
        let sampling = vec![Var::from_dimacs(1), Var::from_dimacs(2)];
        let outcome = bounded_solutions(Solver::from_formula(&f), &sampling, 100, &Budget::new());
        assert_eq!(outcome.len(), 4);
        let projections: HashSet<_> = outcome
            .witnesses
            .iter()
            .map(|m| m.project(&sampling))
            .collect();
        assert_eq!(projections.len(), 4);
    }

    #[test]
    fn unsat_formula_yields_no_witnesses() {
        let f = dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let outcome = bounded_solutions(Solver::from_formula(&f), &all_vars(1), 10, &Budget::new());
        assert!(outcome.is_empty());
        assert!(outcome.is_exhaustive());
    }

    #[test]
    fn incremental_driving_matches_batch() {
        let f = dimacs::parse("p cnf 3 2\n1 2 0\n-1 3 0\n").unwrap();
        let batch = bounded_solutions(Solver::from_formula(&f), &all_vars(3), 100, &Budget::new());

        let mut enumerator = Enumerator::new(Solver::from_formula(&f), all_vars(3));
        let mut count = 0;
        while let (Some(_), _) = enumerator.next_witness(&Budget::new()) {
            count += 1;
        }
        assert_eq!(count, batch.len());
    }

    #[test]
    #[should_panic]
    fn empty_sampling_set_panics() {
        let f = dimacs::parse("p cnf 1 0\n").unwrap();
        let _ = Enumerator::new(Solver::from_formula(&f), Vec::new());
    }

    #[test]
    fn enumeration_with_xor_constraints() {
        // Exactly the style of query UniGen issues: CNF plus hash xors.
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([1, 3], true))
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([2, 4], false))
            .unwrap();
        let brute = f.enumerate_models_brute_force();
        let outcome =
            bounded_solutions(Solver::from_formula(&f), &all_vars(4), 100, &Budget::new());
        assert_eq!(outcome.len(), brute.len());
    }
}
