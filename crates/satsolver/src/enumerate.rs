//! Bounded witness enumeration — the paper's `BSAT(F, N)` primitive — on top
//! of the incremental solver.
//!
//! `BSAT(F, N)` returns `min(|R_F|, N)` *distinct* witnesses of `F`. UniGen
//! calls it on `F ∧ (h(x_1 … x_|S|) = α)` with `N = hiThresh`, and relies on
//! one crucial CryptoMiniSAT-era optimisation described in the paper's
//! "Implementation issues" paragraph: because the sampling set `S` determines
//! every satisfying assignment, **blocking clauses can be restricted to the
//! variables in `S`**, which keeps them short and cheap.
//!
//! Distinctness is therefore defined on the projection onto the sampling
//! set: two witnesses that agree on `S` count as the same witness.
//!
//! The enumerator *borrows* its solver, so one solver instance can serve the
//! whole sequence of `BSAT` calls a sampling run issues. When driven under a
//! [`Guard`] (see [`Enumerator::under_guard`] and [`enumerate_cell`]), the
//! per-cell state — hash xors, blocking clauses, and every learned clause
//! derived from them — is removed when the guard is retired, while learned
//! clauses about the base formula, variable activities, and saved phases all
//! survive into the next cell. This amortisation across hash cells is where
//! the incremental interface earns its keep.

use unigen_cnf::{Model, Var, XorClause};

use crate::budget::Budget;
use crate::fault::InterruptReason;
use crate::proof::close;
use crate::solver::{Guard, SolveResult, Solver};

/// Outcome of a bounded enumeration call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// The witnesses found, each distinct on the sampling set.
    pub witnesses: Vec<Model>,
    /// `true` if enumeration stopped because the bound was reached (there may
    /// be more witnesses).
    pub bound_reached: bool,
    /// `true` if a solver call was interrupted (budget or injected fault)
    /// before the enumeration finished; the witnesses found so far are
    /// still returned, mirroring how the paper's experiments treat `BSAT`
    /// timeouts. The typed reason is in
    /// [`EnumerationOutcome::interrupted`].
    pub budget_exhausted: bool,
    /// Why the enumeration was interrupted, if it was; `None` when the
    /// call ran to completion (bound reached or cell drained). The solver
    /// was left consistent, so the same call may simply be retried.
    pub interrupted: Option<InterruptReason>,
}

impl EnumerationOutcome {
    /// Returns the number of witnesses found.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Returns `true` if no witness was found.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// Returns `true` if the enumeration is exact, i.e. it neither hit the
    /// bound nor was interrupted, so `witnesses` is the complete list of
    /// solutions (projected on the sampling set).
    pub fn is_exhaustive(&self) -> bool {
        !self.bound_reached && self.interrupted.is_none()
    }
}

/// Incremental bounded enumerator borrowing a [`Solver`].
///
/// The enumerator adds one blocking clause (restricted to the sampling set)
/// per witness produced. It can be driven one witness at a time via
/// [`Enumerator::next_witness`] or drained via [`Enumerator::run`].
///
/// Created with [`Enumerator::new`], the blocking clauses are permanent;
/// created with [`Enumerator::under_guard`], every solve call assumes the
/// guard and the blocking clauses are attached to it, so they vanish when
/// the caller retires the guard — the pattern used for hash-cell `BSAT`
/// calls (see [`enumerate_cell`]).
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit, Var};
/// use unigen_satsolver::{Enumerator, Solver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // x1 ∨ x2 over sampling set {x1, x2} has 3 witnesses.
/// let mut f = CnfFormula::new(2);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
/// let sampling: Vec<Var> = vec![Var::from_dimacs(1), Var::from_dimacs(2)];
///
/// let mut solver = Solver::from_formula(&f);
/// let mut enumerator = Enumerator::new(&mut solver, sampling);
/// let outcome = enumerator.run(10, &Default::default());
/// assert_eq!(outcome.len(), 3);
/// assert!(outcome.is_exhaustive());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Enumerator<'s> {
    solver: &'s mut Solver,
    sampling_set: Vec<Var>,
    guard: Option<Guard>,
    exhausted: bool,
    /// A satisfying trail from the previous witness is still in place, so
    /// the next solve can continue from the blocking clause's backjump point
    /// instead of re-descending from level zero.
    warm: bool,
    /// A `CellBegin` proof step was emitted (certify mode) and its matching
    /// `CellClose` has not been; the close is emitted on drop.
    cell_open: bool,
    /// The most recent [`Enumerator::run`] stopped at its bound, so a
    /// non-exhausted close records `BoundReached` rather than `Interrupted`.
    bound_hit: bool,
}

impl<'s> Enumerator<'s> {
    /// Creates an enumerator over `solver`, treating `sampling_set` as the
    /// projection on which witnesses must be distinct. Blocking clauses are
    /// added permanently.
    ///
    /// # Panics
    ///
    /// Panics if the sampling set is empty.
    pub fn new(solver: &'s mut Solver, sampling_set: Vec<Var>) -> Self {
        Enumerator::with_guard(solver, sampling_set, None)
    }

    /// Creates an enumerator that solves under `guard`'s assumption and
    /// scopes its blocking clauses to the guard, so the enumeration leaves no
    /// trace once the guard is retired.
    ///
    /// # Panics
    ///
    /// Panics if the sampling set is empty.
    pub fn under_guard(solver: &'s mut Solver, sampling_set: Vec<Var>, guard: Guard) -> Self {
        Enumerator::with_guard(solver, sampling_set, Some(guard))
    }

    fn with_guard(solver: &'s mut Solver, sampling_set: Vec<Var>, guard: Option<Guard>) -> Self {
        assert!(
            !sampling_set.is_empty(),
            "enumeration requires a non-empty sampling set"
        );
        let mut cell_open = false;
        {
            let guard_var = guard.map(|g| g.var());
            let sampling = &sampling_set;
            solver.with_proof(|p| {
                p.cell_begin(guard_var, sampling);
                cell_open = true;
            });
        }
        Enumerator {
            solver,
            sampling_set,
            guard,
            exhausted: false,
            warm: false,
            cell_open,
            bound_hit: false,
        }
    }

    /// Returns a reference to the underlying solver (for statistics).
    pub fn solver(&self) -> &Solver {
        self.solver
    }

    /// Produces the next witness (distinct on the sampling set from all
    /// previously produced ones), or `None` if none remains or the call was
    /// interrupted.
    ///
    /// The second component of the pair is the typed interruption reason
    /// when the underlying solve was interrupted (so `None` does not mean
    /// "no more witnesses"); the call may be retried.
    pub fn next_witness(&mut self, budget: &Budget) -> (Option<Model>, Option<InterruptReason>) {
        if self.exhausted {
            return (None, None);
        }
        let assumptions: Vec<_> = self.guard.iter().map(|g| g.assumption()).collect();
        match self
            .solver
            .solve_for_enumeration(&assumptions, budget, self.warm, true)
        {
            SolveResult::Sat(model) => {
                // The full model is logged (the checker evaluates the base
                // formula's clauses, which range over all base variables);
                // the certificate's witness *identity* is its projection
                // onto the cell's sampling set.
                self.solver.with_proof(|p| p.witness(model.values()));
                let projection = model.project(&self.sampling_set);
                let mut blocking: Vec<_> = projection.to_lits().iter().map(|&l| !l).collect();
                if let Some(guard) = self.guard {
                    blocking.push(guard.disable_lit());
                }
                // The satisfying trail is still in place: install the
                // blocking clause with a conflict-style backjump and keep
                // the descent below it for the next witness.
                self.solver.block_and_continue(blocking);
                self.warm = true;
                (Some(model), None)
            }
            SolveResult::Unsat => {
                // The solver has already logged the cell's verdict (the
                // `UnsatUnder` step is emitted at the solve choke point):
                // the blocked residue is unsatisfiable, checkable by RUP.
                self.exhausted = true;
                self.warm = false;
                (None, None)
            }
            SolveResult::Interrupted(reason) => {
                // The solver unwound to level zero; a retry re-descends
                // cold but the already-installed blocking clauses keep the
                // witness sequence aligned with an uninterrupted run.
                self.warm = false;
                (None, Some(reason))
            }
            SolveResult::Unknown => {
                self.warm = false;
                (None, Some(InterruptReason::FaultInjected))
            }
        }
    }

    /// Enumerates up to `bound` witnesses, spending at most `budget` per
    /// underlying solver call.
    pub fn run(&mut self, bound: usize, budget: &Budget) -> EnumerationOutcome {
        let mut witnesses = Vec::new();
        let mut interrupted = None;
        while witnesses.len() < bound {
            match self.next_witness(budget) {
                (Some(model), _) => witnesses.push(model),
                (None, Some(reason)) => {
                    interrupted = Some(reason);
                    break;
                }
                (None, None) => break,
            }
        }
        let bound_reached = witnesses.len() >= bound && !self.exhausted;
        if bound_reached {
            self.bound_hit = true;
        }
        EnumerationOutcome {
            witnesses,
            bound_reached,
            budget_exhausted: interrupted.is_some(),
            interrupted,
        }
    }
}

impl Drop for Enumerator<'_> {
    fn drop(&mut self) {
        if self.cell_open {
            // Only a cell whose `UnsatUnder` verdict was logged may close
            // as `Exhausted`; anything else is explicitly non-exhaustive,
            // so an interrupted enumeration can never masquerade as a
            // complete one in the certificate.
            let reason = if self.exhausted {
                close::EXHAUSTED
            } else if self.bound_hit {
                close::BOUND_REACHED
            } else {
                close::INTERRUPTED
            };
            self.solver.with_proof(|p| p.cell_close(reason));
            self.cell_open = false;
        }
        // A warm (mid-enumeration) trail must not leak into whatever the
        // caller does with the solver next.
        self.solver.end_enumeration();
    }
}

/// The paper's `BSAT(F, N)`: returns up to `bound` witnesses of the formula
/// loaded into `solver`, distinct on `sampling_set`, within `budget` per
/// solver call.
///
/// The blocking clauses stay in the solver afterwards; use
/// [`enumerate_cell`] when the enumeration must leave the solver unchanged.
pub fn bounded_solutions(
    solver: &mut Solver,
    sampling_set: &[Var],
    bound: usize,
    budget: &Budget,
) -> EnumerationOutcome {
    let mut enumerator = Enumerator::new(solver, sampling_set.to_vec());
    enumerator.run(bound, budget)
}

/// One complete hash-cell `BSAT` call against a persistent solver: installs
/// `xors` under a fresh guard, enumerates up to `bound` witnesses distinct on
/// `sampling_set`, then retires the guard so the solver is ready for the next
/// cell with all its base-formula knowledge intact.
///
/// This is the primitive every sampler and counter loop in the workspace is
/// built on; passing an empty `xors` slice gives a side-effect-free `BSAT`
/// over the bare formula (used by preparation phases).
pub fn enumerate_cell(
    solver: &mut Solver,
    sampling_set: &[Var],
    xors: &[XorClause],
    bound: usize,
    budget: &Budget,
) -> EnumerationOutcome {
    let guard = solver.new_guard();
    for xor in xors {
        solver.add_xor_under(xor.clone(), guard);
    }
    let outcome = {
        let mut enumerator = Enumerator::under_guard(solver, sampling_set.to_vec(), guard);
        enumerator.run(bound, budget)
    };
    solver.retire_guard(guard);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use unigen_cnf::{dimacs, CnfFormula, Lit, XorClause};

    fn all_vars(n: usize) -> Vec<Var> {
        (0..n).map(Var::new).collect()
    }

    #[test]
    fn enumerates_exactly_all_models() {
        // x1 ∨ x2 ∨ x3 has 7 models.
        let f = dimacs::parse("p cnf 3 1\n1 2 3 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let outcome = bounded_solutions(&mut solver, &all_vars(3), 100, &Budget::new());
        assert_eq!(outcome.len(), 7);
        assert!(outcome.is_exhaustive());
        for w in &outcome.witnesses {
            assert!(f.evaluate(w));
        }
    }

    #[test]
    fn respects_the_bound() {
        let f = dimacs::parse("p cnf 4 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let outcome = bounded_solutions(&mut solver, &all_vars(4), 5, &Budget::new());
        assert_eq!(outcome.len(), 5);
        assert!(outcome.bound_reached);
        assert!(!outcome.is_exhaustive());
    }

    #[test]
    fn witnesses_are_distinct_on_sampling_set() {
        // x3 is forced equal to x1 ⊕ x2; sampling set {x1, x2} yields 4
        // distinct projected witnesses even though x3 varies with them.
        let mut f = CnfFormula::new(3);
        f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], false))
            .unwrap();
        let sampling = vec![Var::from_dimacs(1), Var::from_dimacs(2)];
        let mut solver = Solver::from_formula(&f);
        let outcome = bounded_solutions(&mut solver, &sampling, 100, &Budget::new());
        assert_eq!(outcome.len(), 4);
        let projections: HashSet<_> = outcome
            .witnesses
            .iter()
            .map(|m| m.project(&sampling))
            .collect();
        assert_eq!(projections.len(), 4);
    }

    #[test]
    fn unsat_formula_yields_no_witnesses() {
        let f = dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let outcome = bounded_solutions(&mut solver, &all_vars(1), 10, &Budget::new());
        assert!(outcome.is_empty());
        assert!(outcome.is_exhaustive());
    }

    #[test]
    fn incremental_driving_matches_batch() {
        let f = dimacs::parse("p cnf 3 2\n1 2 0\n-1 3 0\n").unwrap();
        let mut batch_solver = Solver::from_formula(&f);
        let batch = bounded_solutions(&mut batch_solver, &all_vars(3), 100, &Budget::new());

        let mut solver = Solver::from_formula(&f);
        let mut enumerator = Enumerator::new(&mut solver, all_vars(3));
        let mut count = 0;
        while let (Some(_), _) = enumerator.next_witness(&Budget::new()) {
            count += 1;
        }
        assert_eq!(count, batch.len());
    }

    #[test]
    #[should_panic]
    fn empty_sampling_set_panics() {
        let f = dimacs::parse("p cnf 1 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let _ = Enumerator::new(&mut solver, Vec::new());
    }

    #[test]
    fn enumeration_with_xor_constraints() {
        // Exactly the style of query UniGen issues: CNF plus hash xors.
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([1, 3], true))
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([2, 4], false))
            .unwrap();
        let brute = f.enumerate_models_brute_force();
        let mut solver = Solver::from_formula(&f);
        let outcome = bounded_solutions(&mut solver, &all_vars(4), 100, &Budget::new());
        assert_eq!(outcome.len(), brute.len());
    }

    #[test]
    fn enumerate_cell_leaves_the_solver_reusable() {
        // x1 ∨ x2 ∨ x3 has 7 models; each hash halves the space.
        let f = dimacs::parse("p cnf 3 1\n1 2 3 0\n").unwrap();
        let mut solver = Solver::from_formula(&f);
        let sampling = all_vars(3);

        let base = enumerate_cell(&mut solver, &sampling, &[], 100, &Budget::new());
        assert_eq!(base.len(), 7);

        // A cell carved by a hash constraint…
        let xors = vec![XorClause::from_dimacs([1, 2], true)];
        let cell = enumerate_cell(&mut solver, &sampling, &xors, 100, &Budget::new());
        assert!(cell.is_exhaustive());
        for w in &cell.witnesses {
            assert!(f.evaluate(w));
            assert!(w.value(Var::from_dimacs(1)) ^ w.value(Var::from_dimacs(2)));
        }

        // …leaves no residue: the full model set is still reachable.
        let again = enumerate_cell(&mut solver, &sampling, &[], 100, &Budget::new());
        assert_eq!(again.len(), 7);
        // And the opposite cell plus this cell partition the space.
        let other = enumerate_cell(
            &mut solver,
            &sampling,
            &[XorClause::from_dimacs([1, 2], false)],
            100,
            &Budget::new(),
        );
        assert_eq!(cell.len() + other.len(), 7);
    }

    #[test]
    fn enumerate_cell_agrees_across_gauss_modes() {
        use crate::config::{GaussMode, SolverConfig};

        // A cell wide enough for cross-row reasoning to matter: the layer's
        // rows overlap pairwise, so the matrix path and the watched path
        // take genuinely different propagation routes to the same set.
        let mut f = CnfFormula::new(5);
        f.add_clause([
            Lit::from_dimacs(1),
            Lit::from_dimacs(2),
            Lit::from_dimacs(5),
        ])
        .unwrap();
        f.add_clause([Lit::from_dimacs(-3), Lit::from_dimacs(4)])
            .unwrap();
        let sampling = all_vars(5);
        let layer = vec![
            XorClause::from_dimacs([1, 2, 3], true),
            XorClause::from_dimacs([2, 3, 4], false),
            XorClause::from_dimacs([1, 4, 5], true),
        ];
        let mut sets = Vec::new();
        for gauss in [GaussMode::Off, GaussMode::Auto, GaussMode::On] {
            let config = SolverConfig {
                gauss,
                gauss_auto_threshold: 2,
                ..SolverConfig::default()
            };
            let mut solver = Solver::from_formula_with_config(&f, config);
            let cell = enumerate_cell(&mut solver, &sampling, &layer, 100, &Budget::new());
            assert!(cell.is_exhaustive());
            for w in &cell.witnesses {
                assert!(f.evaluate(w));
                for xor in &layer {
                    assert!(xor.evaluate(w));
                }
            }
            let set: HashSet<_> = cell
                .witnesses
                .iter()
                .map(|w| w.project(&sampling))
                .collect();
            // The guard cycle left no residue in any mode.
            let base = enumerate_cell(&mut solver, &sampling, &[], 100, &Budget::new());
            assert_eq!(base.len(), 21, "base model count in mode {gauss:?}");
            sets.push(set);
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }

    #[test]
    fn interrupted_enumeration_resumes_to_the_same_witness_set() {
        // The fault-tolerance contract: a step-limited enumeration that is
        // interrupted mid-cell can simply keep retrying (with an escalating
        // limit, so it terminates) and ends up with exactly the witness set
        // of an uninterrupted run — the blocking clauses installed before
        // each interruption survive, so nothing is re-enumerated.
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([3, 4], true))
            .unwrap();
        let sampling = all_vars(4);

        let mut reference_solver = Solver::from_formula(&f);
        let reference = enumerate_cell(
            &mut reference_solver,
            &sampling,
            &[XorClause::from_dimacs([1, 4], false)],
            100,
            &Budget::new(),
        );
        assert!(reference.is_exhaustive());

        let mut solver = Solver::from_formula(&f);
        let guard = solver.new_guard();
        solver.add_xor_under(XorClause::from_dimacs([1, 4], false), guard);
        let mut witnesses = Vec::new();
        let mut interruptions = 0;
        {
            let mut enumerator = Enumerator::under_guard(&mut solver, sampling.clone(), guard);
            let mut steps = 1u64;
            loop {
                match enumerator.next_witness(&Budget::new().with_step_limit(steps)) {
                    (Some(model), _) => witnesses.push(model),
                    (None, Some(reason)) => {
                        assert_eq!(reason, InterruptReason::StepLimit);
                        interruptions += 1;
                        steps *= 2;
                    }
                    (None, None) => break,
                }
            }
        }
        solver.retire_guard(guard);
        assert!(interruptions > 0, "the schedule never interrupted");

        let got: HashSet<_> = witnesses.iter().map(|w| w.project(&sampling)).collect();
        let want: HashSet<_> = reference
            .witnesses
            .iter()
            .map(|w| w.project(&sampling))
            .collect();
        assert_eq!(got, want);
        // Guard accounting balanced, no residue left behind.
        assert_eq!(solver.stats().guards_created, solver.stats().guards_retired);
        let base = enumerate_cell(&mut solver, &sampling, &[], 100, &Budget::new());
        assert_eq!(base.len(), 6);
    }

    #[test]
    fn enumerate_cell_matches_scratch_enumeration() {
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(3)])
            .unwrap();
        let sampling = all_vars(4);
        let layers = [
            vec![XorClause::from_dimacs([1, 2, 3], true)],
            vec![
                XorClause::from_dimacs([1, 4], false),
                XorClause::from_dimacs([2, 3], true),
            ],
            vec![XorClause::from_dimacs([3], true)],
        ];
        let mut incremental = Solver::from_formula(&f);
        for layer in &layers {
            let cell = enumerate_cell(&mut incremental, &sampling, layer, 100, &Budget::new());

            let mut hashed = f.clone();
            for xor in layer {
                hashed.add_xor_clause(xor.clone()).unwrap();
            }
            let mut scratch = Solver::from_formula(&hashed);
            let reference = bounded_solutions(&mut scratch, &sampling, 100, &Budget::new());

            let got: HashSet<_> = cell
                .witnesses
                .iter()
                .map(|w| w.project(&sampling))
                .collect();
            let want: HashSet<_> = reference
                .witnesses
                .iter()
                .map(|w| w.project(&sampling))
                .collect();
            assert_eq!(got, want);
        }
    }
}
