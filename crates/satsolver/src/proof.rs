//! DRAT-style proof logging for certified enumeration.
//!
//! When a [`ProofLog`] sink is installed on
//! [`SolverConfig::proof`](crate::SolverConfig), the solver records every
//! inference that contributes to an Unsat or exhaustive-cell verdict as a
//! step in a compact binary stream:
//!
//! * **Learned clauses** are logged as RUP steps (reverse unit propagation:
//!   the clause's negation unit-propagates to a conflict over the database
//!   logged so far) — the classical DRAT discipline.
//! * **Xor rows** are logged at [`Solver::add_xor_under`](crate::Solver)
//!   time; an independent checker re-derives their chunked aux-variable
//!   Tseitin CNF expansion, which is propagation-complete per row, so
//!   watched-xor reasoning checks as plain RUP.
//! * **Gauss-derived rows** — implications justified by *linear
//!   combinations* of original rows, which are not RUP over the originals —
//!   are logged as algebraic `XorDerive` steps carrying the exact set of
//!   original row ids whose GF(2) sum produces the derived row. The checker
//!   verifies the sum symbolically and installs the derived row's expansion.
//! * **Guard lifecycle** steps (`NewGuard`, `RetireGuard`) scope a hash
//!   cell's constraints; an Unsat-under-assumptions verdict is logged as the
//!   clause `¬a₁ ∨ … ∨ ¬aₖ` (`UnsatUnder`), which for a cell guard `g`
//!   assumed as `¬g` is the unit clause `g` — the checkable claim that the
//!   blocked residue of the cell is unsatisfiable.
//! * **Cell packaging** steps (`CellBegin`, `Witness`, `Block`, `CellClose`)
//!   turn an [`enumerate_cell`](crate::enumerate_cell) run into a *cell
//!   certificate*: the witness list, the blocking clause trail, and the
//!   unsat proof of the blocked residue — together a machine-checkable claim
//!   that the cell's witness set is exactly what was returned.
//!
//! The stream is checked offline by the dependency-free `unigen-cert` crate
//! (`crates/cert`), which deliberately shares zero code with this module: it
//! has its own decoder and its own watched-literal propagation, so a bug
//! here cannot silently excuse itself there.
//!
//! Logging is zero-cost when disabled: every call site is behind a single
//! `Option` test, exactly like the fault-injection hooks.

use unigen_cnf::{Lit, Var, XorClause};

/// Step tags of the binary proof format. The `unigen-cert` checker keeps an
/// independent copy of these values; the format is the contract between the
/// two crates, not shared code.
pub mod tag {
    /// A fresh activation guard variable was allocated.
    pub const NEW_GUARD: u8 = 1;
    /// An xor row was added (guarded or unguarded).
    pub const XOR_ROW: u8 = 2;
    /// A row derived as a GF(2) sum of previously logged rows.
    pub const XOR_DERIVE: u8 = 3;
    /// A learned clause, checkable by reverse unit propagation.
    pub const LEARNED: u8 = 4;
    /// A learned clause was deleted from the database.
    pub const DELETE: u8 = 5;
    /// An input clause of the base formula was added.
    pub const AXIOM: u8 = 6;
    /// A clause added under a guard (weakened with the disable literal).
    pub const GUARDED_CLAUSE: u8 = 7;
    /// An enumeration session (cell) opened.
    pub const CELL_BEGIN: u8 = 8;
    /// A model found during enumeration (full assignment over base vars).
    pub const WITNESS: u8 = 9;
    /// The blocking clause installed after a witness.
    pub const BLOCK: u8 = 10;
    /// An Unsat-under-assumptions verdict: the clause of negated
    /// assumptions is entailed (RUP over the database logged so far).
    pub const UNSAT_UNDER: u8 = 11;
    /// The current cell closed (reason byte follows).
    pub const CELL_CLOSE: u8 = 12;
    /// A guard was retired: every clause mentioning it is deleted and the
    /// unit clause `g` becomes an axiom of the remaining database.
    pub const RETIRE_GUARD: u8 = 13;
}

/// Reason bytes of a [`tag::CELL_CLOSE`] step.
pub mod close {
    /// The cell was exhausted; a verdict step must precede the close.
    pub const EXHAUSTED: u8 = 0;
    /// Enumeration stopped at the requested bound.
    pub const BOUND_REACHED: u8 = 1;
    /// Enumeration was interrupted (budget or injected fault); the cell's
    /// certificate is *incomplete* and must not be treated as exhaustive.
    pub const INTERRUPTED: u8 = 2;
}

/// An in-memory binary proof sink.
///
/// The log is a plain byte buffer, so cloning a solver forks the stream:
/// the clone's log is the shared prefix plus its own suffix — a valid
/// standalone proof of the clone's own reasoning. Retrieve the bytes with
/// [`ProofLog::bytes`] (or [`Solver::proof_bytes`](crate::Solver)) and feed
/// them to the `unigen-cert` checker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofLog {
    buf: Vec<u8>,
    steps: u64,
    xor_rows: u64,
}

impl ProofLog {
    /// Creates an empty proof log.
    pub fn new() -> Self {
        ProofLog::default()
    }

    /// The raw proof stream logged so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of steps logged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of bytes logged so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// LEB128 unsigned varint.
    fn u(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    fn i(&mut self, v: i64) {
        self.u(((v << 1) ^ (v >> 63)) as u64);
    }

    /// A literal in DIMACS form (1-based, sign = polarity).
    fn lit(&mut self, l: Lit) {
        self.i(l.to_dimacs());
    }

    /// A variable as its 1-based index.
    fn var(&mut self, v: Var) {
        self.u(v.index() as u64 + 1);
    }

    /// An optional guard variable (0 = none).
    fn opt_var(&mut self, v: Option<Var>) {
        match v {
            Some(v) => self.var(v),
            None => self.u(0),
        }
    }

    fn lits(&mut self, lits: &[Lit]) {
        self.u(lits.len() as u64);
        for &l in lits {
            self.lit(l);
        }
    }

    fn begin(&mut self, tag: u8) {
        self.buf.push(tag);
        self.steps += 1;
    }

    pub(crate) fn new_guard(&mut self, guard: Var) {
        self.begin(tag::NEW_GUARD);
        self.var(guard);
    }

    /// Logs an xor row and returns its stream id (1-based; used by
    /// [`ProofLog::xor_derive`] provenance references).
    pub(crate) fn xor_row(&mut self, guard: Option<Var>, xor: &XorClause) -> u64 {
        self.begin(tag::XOR_ROW);
        self.opt_var(guard);
        self.u(xor.len() as u64);
        for &v in xor.vars() {
            self.var(v);
        }
        self.buf.push(u8::from(xor.rhs()));
        self.xor_rows += 1;
        self.xor_rows
    }

    pub(crate) fn xor_derive(&mut self, guard: Var, vars: &[Var], rhs: bool, from: &[u64]) {
        self.begin(tag::XOR_DERIVE);
        self.var(guard);
        self.u(vars.len() as u64);
        for &v in vars {
            self.var(v);
        }
        self.buf.push(u8::from(rhs));
        self.u(from.len() as u64);
        for &id in from {
            self.u(id);
        }
    }

    pub(crate) fn learned(&mut self, lits: &[Lit]) {
        self.begin(tag::LEARNED);
        self.lits(lits);
    }

    pub(crate) fn delete(&mut self, lits: &[Lit]) {
        self.begin(tag::DELETE);
        self.lits(lits);
    }

    pub(crate) fn axiom(&mut self, lits: &[Lit]) {
        self.begin(tag::AXIOM);
        self.lits(lits);
    }

    pub(crate) fn guarded_clause(&mut self, lits: &[Lit]) {
        self.begin(tag::GUARDED_CLAUSE);
        self.lits(lits);
    }

    pub(crate) fn cell_begin(&mut self, guard: Option<Var>, sampling: &[Var]) {
        self.begin(tag::CELL_BEGIN);
        self.opt_var(guard);
        self.u(sampling.len() as u64);
        for &v in sampling {
            self.var(v);
        }
    }

    pub(crate) fn witness(&mut self, values: &[bool]) {
        self.begin(tag::WITNESS);
        self.u(values.len() as u64);
        let mut byte = 0u8;
        for (i, &v) in values.iter().enumerate() {
            if v {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if values.len() % 8 != 0 {
            self.buf.push(byte);
        }
    }

    pub(crate) fn block(&mut self, lits: &[Lit]) {
        self.begin(tag::BLOCK);
        self.lits(lits);
    }

    pub(crate) fn unsat_under(&mut self, assumptions: &[Lit]) {
        self.begin(tag::UNSAT_UNDER);
        self.lits(assumptions);
    }

    pub(crate) fn cell_close(&mut self, reason: u8) {
        self.begin(tag::CELL_CLOSE);
        self.buf.push(reason);
    }

    pub(crate) fn retire_guard(&mut self, guard: Var) {
        self.begin(tag::RETIRE_GUARD);
        self.var(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_use_minimal_bytes() {
        let mut log = ProofLog::new();
        log.u(0);
        log.u(127);
        log.u(128);
        assert_eq!(log.bytes(), &[0, 127, 0x80, 1]);
    }

    #[test]
    fn steps_and_ids_count_up() {
        let mut log = ProofLog::new();
        log.new_guard(Var::new(5));
        let id1 = log.xor_row(Some(Var::new(5)), &XorClause::new([Var::new(0)], true));
        let id2 = log.xor_row(None, &XorClause::new([Var::new(1)], false));
        assert_eq!((id1, id2), (1, 2));
        assert_eq!(log.steps(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn witness_packs_bits_lsb_first() {
        let mut log = ProofLog::new();
        log.witness(&[true, false, false, false, false, false, false, false, true]);
        // tag, count = 9, then two payload bytes: 0b0000_0001, 0b0000_0001.
        assert_eq!(log.bytes(), &[tag::WITNESS, 9, 0x01, 0x01]);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut log = ProofLog::new();
        log.learned(&[Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
        let mut fork = log.clone();
        fork.learned(&[Lit::from_dimacs(2)]);
        assert!(fork.bytes().starts_with(log.bytes()));
        assert_eq!(log.steps() + 1, fork.steps());
    }
}
