//! Solver statistics.

use std::fmt;

/// Counters accumulated by a [`crate::Solver`] across its lifetime.
///
/// These are the numbers the benchmark harness reports alongside timing:
/// they make it possible to explain *why* long xor constraints over the full
/// support are slow (propagations and conflicts blow up) without resorting to
/// wall-clock time alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed (CNF and xor combined).
    pub propagations: u64,
    /// Number of propagations caused by xor constraints.
    pub xor_propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently retained.
    pub learned_clauses: u64,
    /// Number of learned clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of top-level solve calls.
    pub solve_calls: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} (xor={}) conflicts={} restarts={} learned={} deleted={} solves={}",
            self.decisions,
            self.propagations,
            self.xor_propagations,
            self.conflicts,
            self.restarts,
            self.learned_clauses,
            self.deleted_clauses,
            self.solve_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_counter() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            xor_propagations: 3,
            conflicts: 4,
            restarts: 5,
            learned_clauses: 6,
            deleted_clauses: 7,
            solve_calls: 8,
        };
        let text = stats.to_string();
        for needle in ["decisions=1", "conflicts=4", "restarts=5", "solves=8"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
