//! Solver statistics.

use std::fmt;

/// Counters accumulated by a [`crate::Solver`] across its lifetime.
///
/// These are the numbers the benchmark harness reports alongside timing:
/// they make it possible to explain *why* long xor constraints over the full
/// support are slow (propagations and conflicts blow up) without resorting to
/// wall-clock time alone. The guard counters expose what the incremental
/// interface amortises: how many guarded (per-cell) learned clauses were
/// thrown away at retirement versus how many base-formula learned clauses
/// kept paying off across cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed (CNF and xor combined).
    pub propagations: u64,
    /// Number of propagations caused by xor constraints.
    pub xor_propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently retained.
    pub learned_clauses: u64,
    /// Number of learned clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of top-level solve calls.
    pub solve_calls: u64,
    /// Number of activation guards created.
    pub guards_created: u64,
    /// Number of activation guards retired.
    pub guards_retired: u64,
    /// Number of guarded learned clauses removed by guard retirements (they
    /// mentioned the retired guard and could not outlive their cell).
    pub guarded_learned_retired: u64,
    /// Number of learned clauses that survived the most recent guard
    /// retirement (base-formula knowledge carried into the next cell).
    pub learned_retained: u64,
    /// Number of Gauss–Jordan matrices compiled from guarded xor layers.
    pub gauss_matrices: u64,
    /// Number of matrix rows across all compiled matrices (lifetime total).
    pub gauss_rows: u64,
    /// Number of propagations produced by Gauss–Jordan matrices.
    pub gauss_propagations: u64,
    /// Number of conflicts detected by Gauss–Jordan matrices.
    pub gauss_conflicts: u64,
    /// Number of row-xor operations (eliminations and re-pivots) performed
    /// by the Gauss–Jordan engine.
    pub gauss_row_ops: u64,
    /// Number of proof steps recorded (0 unless certify mode is on).
    pub proof_steps: u64,
    /// Size of the recorded proof stream in bytes (0 unless certify mode
    /// is on).
    pub proof_bytes: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} (xor={} gauss={}) conflicts={} (gauss={}) restarts={} learned={} deleted={} solves={} guards={}/{} guarded_retired={} retained={} gauss_matrices={} gauss_rows={} gauss_row_ops={} proof_steps={} proof_bytes={}",
            self.decisions,
            self.propagations,
            self.xor_propagations,
            self.gauss_propagations,
            self.conflicts,
            self.gauss_conflicts,
            self.restarts,
            self.learned_clauses,
            self.deleted_clauses,
            self.solve_calls,
            self.guards_created,
            self.guards_retired,
            self.guarded_learned_retired,
            self.learned_retained,
            self.gauss_matrices,
            self.gauss_rows,
            self.gauss_row_ops,
            self.proof_steps,
            self.proof_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_counter() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            xor_propagations: 3,
            conflicts: 4,
            restarts: 5,
            learned_clauses: 6,
            deleted_clauses: 7,
            solve_calls: 8,
            guards_created: 9,
            guards_retired: 10,
            guarded_learned_retired: 11,
            learned_retained: 12,
            gauss_matrices: 13,
            gauss_rows: 14,
            gauss_propagations: 15,
            gauss_conflicts: 16,
            gauss_row_ops: 17,
            proof_steps: 18,
            proof_bytes: 19,
        };
        let text = stats.to_string();
        for needle in [
            "decisions=1",
            "restarts=5",
            "solves=8",
            "guards=9/10",
            "guarded_retired=11",
            "retained=12",
            "gauss_matrices=13",
            "gauss_rows=14",
            "gauss=15",
            "gauss=16",
            "gauss_row_ops=17",
            "proof_steps=18",
            "proof_bytes=19",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
