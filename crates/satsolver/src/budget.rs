//! Per-call resource budgets.

use std::time::{Duration, Instant};

/// A resource budget for a single `solve` or enumeration call.
///
/// The paper's experimental setup imposes a 2 500 s timeout on every `BSAT`
/// invocation and 20 h overall; this type is the laptop-scale equivalent.
/// A budget can bound wall-clock time, the number of conflicts, or both;
/// the default budget is unlimited.
///
/// # Example
///
/// ```
/// use unigen_satsolver::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_conflict_limit(10_000)
///     .with_time_limit(Duration::from_millis(500));
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
}

impl Budget {
    /// Creates an unlimited budget.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Returns a copy of this budget with a conflict limit.
    pub fn with_conflict_limit(mut self, conflicts: u64) -> Self {
        self.conflict_limit = Some(conflicts);
        self
    }

    /// Returns a copy of this budget with a wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns the conflict limit, if any.
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflict_limit
    }

    /// Returns the wall-clock limit, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.time_limit
    }

    /// Returns `true` if neither a conflict nor a time limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.conflict_limit.is_none() && self.time_limit.is_none()
    }

    /// Starts metering this budget.
    pub(crate) fn start(&self) -> BudgetMeter {
        BudgetMeter {
            budget: *self,
            started: Instant::now(),
            conflicts_at_start: 0,
        }
    }
}

/// Tracks consumption against a [`Budget`] during one solver call.
#[derive(Debug, Clone)]
pub(crate) struct BudgetMeter {
    budget: Budget,
    started: Instant,
    conflicts_at_start: u64,
}

impl BudgetMeter {
    pub(crate) fn set_conflict_baseline(&mut self, conflicts: u64) {
        self.conflicts_at_start = conflicts;
    }

    /// Returns `true` if the budget is exhausted given the solver's total
    /// conflict count.
    pub(crate) fn exhausted(&self, total_conflicts: u64) -> bool {
        if let Some(limit) = self.budget.conflict_limit {
            if total_conflicts.saturating_sub(self.conflicts_at_start) >= limit {
                return true;
            }
        }
        if let Some(limit) = self.budget.time_limit {
            if self.started.elapsed() >= limit {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert!(!Budget::new().with_conflict_limit(1).is_unlimited());
    }

    #[test]
    fn conflict_limit_is_relative_to_baseline() {
        let budget = Budget::new().with_conflict_limit(10);
        let mut meter = budget.start();
        meter.set_conflict_baseline(100);
        assert!(!meter.exhausted(105));
        assert!(meter.exhausted(110));
        assert!(meter.exhausted(200));
    }

    #[test]
    fn time_limit_expires() {
        let budget = Budget::new().with_time_limit(Duration::from_millis(0));
        let meter = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(meter.exhausted(0));
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let meter = Budget::new().start();
        assert!(!meter.exhausted(u64::MAX));
    }
}
