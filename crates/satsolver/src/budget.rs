//! Per-call resource budgets.

use std::time::{Duration, Instant};

use crate::fault::InterruptReason;

/// A resource budget for a single `solve` or enumeration call.
///
/// The paper's experimental setup imposes a 2 500 s timeout on every `BSAT`
/// invocation and 20 h overall; this type is the laptop-scale equivalent.
/// A budget can bound wall-clock time, the number of conflicts, the number
/// of deterministic search *steps* (propagations + decisions — the
/// host-independent analogue of a timeout), or any combination; the default
/// budget is unlimited.
///
/// A fired budget surfaces as [`crate::SolveResult::Interrupted`] with the
/// matching [`InterruptReason`], and the solver is left consistent at
/// decision level zero so the call can simply be retried.
///
/// # Example
///
/// ```
/// use unigen_satsolver::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_conflict_limit(10_000)
///     .with_step_limit(1_000_000)
///     .with_time_limit(Duration::from_millis(500));
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
    step_limit: Option<u64>,
}

impl Budget {
    /// Creates an unlimited budget.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Returns a copy of this budget with a conflict limit.
    pub fn with_conflict_limit(mut self, conflicts: u64) -> Self {
        self.conflict_limit = Some(conflicts);
        self
    }

    /// Returns a copy of this budget with a wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns a copy of this budget with a deterministic step limit. A
    /// step is one propagated literal or one branching decision, so the
    /// count advances identically on every host — unlike the wall-clock
    /// limit, a step-limited run interrupts at the same point everywhere,
    /// which is what the chaos harness replays.
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Returns the conflict limit, if any.
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflict_limit
    }

    /// Returns the wall-clock limit, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.time_limit
    }

    /// Returns the step limit, if any.
    pub fn step_limit(&self) -> Option<u64> {
        self.step_limit
    }

    /// Returns `true` if no conflict, time or step limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.conflict_limit.is_none() && self.time_limit.is_none() && self.step_limit.is_none()
    }

    /// Starts metering this budget.
    pub(crate) fn start(&self) -> BudgetMeter {
        BudgetMeter {
            budget: *self,
            started: Instant::now(),
            conflicts_at_start: 0,
            steps_at_start: 0,
        }
    }
}

/// Tracks consumption against a [`Budget`] during one solver call.
#[derive(Debug, Clone)]
pub(crate) struct BudgetMeter {
    budget: Budget,
    started: Instant,
    conflicts_at_start: u64,
    steps_at_start: u64,
}

impl BudgetMeter {
    pub(crate) fn set_conflict_baseline(&mut self, conflicts: u64) {
        self.conflicts_at_start = conflicts;
    }

    pub(crate) fn set_step_baseline(&mut self, steps: u64) {
        self.steps_at_start = steps;
    }

    /// Returns the typed reason the budget is exhausted, given the solver's
    /// total conflict and step counts, or `None` while headroom remains.
    /// Deterministic limits (conflicts, steps) are checked before the
    /// wall clock so replayed runs interrupt for the same reason.
    pub(crate) fn exhausted(
        &self,
        total_conflicts: u64,
        total_steps: u64,
    ) -> Option<InterruptReason> {
        if let Some(limit) = self.budget.conflict_limit {
            if total_conflicts.saturating_sub(self.conflicts_at_start) >= limit {
                return Some(InterruptReason::ConflictLimit);
            }
        }
        if let Some(limit) = self.budget.step_limit {
            if total_steps.saturating_sub(self.steps_at_start) >= limit {
                return Some(InterruptReason::StepLimit);
            }
        }
        if let Some(limit) = self.budget.time_limit {
            if self.started.elapsed() >= limit {
                return Some(InterruptReason::TimeLimit);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert!(!Budget::new().with_conflict_limit(1).is_unlimited());
        assert!(!Budget::new().with_step_limit(1).is_unlimited());
    }

    #[test]
    fn conflict_limit_is_relative_to_baseline() {
        let budget = Budget::new().with_conflict_limit(10);
        let mut meter = budget.start();
        meter.set_conflict_baseline(100);
        assert_eq!(meter.exhausted(105, 0), None);
        assert_eq!(
            meter.exhausted(110, 0),
            Some(InterruptReason::ConflictLimit)
        );
        assert_eq!(
            meter.exhausted(200, 0),
            Some(InterruptReason::ConflictLimit)
        );
    }

    #[test]
    fn step_limit_is_relative_to_baseline() {
        let budget = Budget::new().with_step_limit(50);
        let mut meter = budget.start();
        meter.set_step_baseline(1000);
        assert_eq!(meter.exhausted(0, 1049), None);
        assert_eq!(meter.exhausted(0, 1050), Some(InterruptReason::StepLimit));
    }

    #[test]
    fn deterministic_limits_win_over_the_clock() {
        // Conflict and step limits are reported before the (already
        // expired) time limit, so a replay on a slower host interrupts for
        // the same reason.
        let budget = Budget::new()
            .with_step_limit(1)
            .with_time_limit(Duration::from_millis(0));
        let meter = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(meter.exhausted(0, 1), Some(InterruptReason::StepLimit));
        assert_eq!(meter.exhausted(0, 0), Some(InterruptReason::TimeLimit));
    }

    #[test]
    fn time_limit_expires() {
        let budget = Budget::new().with_time_limit(Duration::from_millis(0));
        let meter = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(meter.exhausted(0, 0), Some(InterruptReason::TimeLimit));
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let meter = Budget::new().start();
        assert_eq!(meter.exhausted(u64::MAX, u64::MAX), None);
    }
}
