//! Clause storage, watch lists and learned-clause bookkeeping.
//!
//! Clauses live in a single flat `u32` arena (a 3-word header followed by the
//! literal codes inline), so walking a clause during propagation touches one
//! contiguous cache line instead of chasing a `Vec<Lit>` pointer per clause.
//! Watch lists store a *blocker literal* next to each clause reference; when
//! the blocker is already true the clause is satisfied and propagation skips
//! the clause memory entirely (the MiniSat 2.2 optimisation).
//!
//! Deletion is a tombstone flag; the arena is compacted by
//! [`ClauseDb::collect_garbage`], which the solver only invokes at decision
//! level zero (between `solve` calls) so that no live [`ClauseRef`] other
//! than the remapped watch lists survives compaction.

use std::collections::HashMap;

use unigen_cnf::Lit;

/// Index of a clause inside the [`ClauseDb`] arena: the word offset of its
/// header.
pub(crate) type ClauseRef = u32;

/// One watch-list entry: the watched clause plus a *blocker* literal (some
/// other literal of the clause, usually the other watched one). If the
/// blocker is true the clause is satisfied and need not be dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Watcher {
    pub cref: ClauseRef,
    pub blocker: Lit,
}

/// Arena layout: `[len, flags|lbd, activity(f32 bits), lit0, lit1, …]`.
const HEADER_WORDS: usize = 3;
const FLAG_LEARNED: u32 = 1 << 31;
const FLAG_DELETED: u32 = 1 << 30;
const LBD_MASK: u32 = FLAG_DELETED - 1;

const CLAUSE_RESCALE_THRESHOLD: f64 = 1e20;

/// Arena of clauses plus per-literal watch lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseDb {
    /// The flat literal arena.
    arena: Vec<u32>,
    /// Header offsets of every clause ever added (compacted with the arena).
    headers: Vec<ClauseRef>,
    /// `watches[lit.code()]` lists the clauses currently watching `lit`.
    watches: Vec<Vec<Watcher>>,
    clause_increment: f64,
    clause_decay: f64,
    num_learned: usize,
    /// Words occupied by tombstoned clauses, reclaimed by `collect_garbage`.
    wasted: usize,
}

impl ClauseDb {
    pub(crate) fn new(num_vars: usize, clause_decay: f64) -> Self {
        ClauseDb {
            arena: Vec::new(),
            headers: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            clause_increment: 1.0,
            clause_decay,
            num_learned: 0,
            wasted: 0,
        }
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.watches.len() < num_vars * 2 {
            self.watches.resize(num_vars * 2, Vec::new());
        }
    }

    /// Adds a clause with at least two literals and registers its watches
    /// (each watching literal uses the other as its blocker).
    ///
    /// The caller is responsible for handling empty and unit clauses.
    pub(crate) fn add_clause(&mut self, lits: &[Lit], learned: bool, lbd: u32) -> ClauseRef {
        debug_assert!(
            lits.len() >= 2,
            "watched clauses need at least two literals"
        );
        let cref = self.arena.len() as ClauseRef;
        let flags = if learned { FLAG_LEARNED } else { 0 };
        self.arena.push(lits.len() as u32);
        self.arena.push(flags | lbd.min(LBD_MASK));
        self.arena.push(0f32.to_bits());
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        self.headers.push(cref);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learned {
            self.num_learned += 1;
        }
        cref
    }

    #[inline]
    pub(crate) fn len(&self, cref: ClauseRef) -> usize {
        self.arena[cref as usize] as usize
    }

    #[inline]
    fn lits_start(cref: ClauseRef) -> usize {
        cref as usize + HEADER_WORDS
    }

    #[inline]
    pub(crate) fn lit_at(&self, cref: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.len(cref));
        Lit::from_code(self.arena[Self::lits_start(cref) + i] as usize)
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, cref: ClauseRef, i: usize, j: usize) {
        let start = Self::lits_start(cref);
        self.arena.swap(start + i, start + j);
    }

    /// Iterates over the literals of a clause.
    pub(crate) fn iter_lits(&self, cref: ClauseRef) -> impl Iterator<Item = Lit> + '_ {
        let start = Self::lits_start(cref);
        let end = start + self.len(cref);
        self.arena[start..end]
            .iter()
            .map(|&code| Lit::from_code(code as usize))
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.arena[cref as usize + 1] & FLAG_DELETED != 0
    }

    #[inline]
    pub(crate) fn is_learned(&self, cref: ClauseRef) -> bool {
        self.arena[cref as usize + 1] & FLAG_LEARNED != 0
    }

    #[inline]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.arena[cref as usize + 1] & LBD_MASK
    }

    #[inline]
    fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.arena[cref as usize + 2])
    }

    #[inline]
    fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.arena[cref as usize + 2] = activity.to_bits();
    }

    /// Tombstones a clause. The watch lists drop the entry lazily; the arena
    /// space is reclaimed by the next `collect_garbage`.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        if self.is_deleted(cref) {
            return;
        }
        if self.is_learned(cref) {
            self.num_learned -= 1;
        }
        self.arena[cref as usize + 1] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.len(cref);
    }

    #[inline]
    pub(crate) fn watchers_mut(&mut self, lit: Lit) -> &mut Vec<Watcher> {
        &mut self.watches[lit.code()]
    }

    /// Returns the number of learned, non-deleted clauses.
    pub(crate) fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Bumps the activity of a learned clause.
    pub(crate) fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.is_learned(cref) {
            return;
        }
        let bumped = (self.activity(cref) as f64 + self.clause_increment) as f32;
        self.set_activity(cref, bumped);
        if bumped as f64 > CLAUSE_RESCALE_THRESHOLD {
            self.rescale_activities();
        }
    }

    /// Applies the clause-activity decay (called once per conflict). The
    /// increment is rescaled eagerly so it always fits the f32 activities.
    pub(crate) fn decay_clauses(&mut self) {
        self.clause_increment /= self.clause_decay;
        if self.clause_increment > CLAUSE_RESCALE_THRESHOLD {
            self.rescale_activities();
        }
    }

    fn rescale_activities(&mut self) {
        for i in 0..self.headers.len() {
            let c = self.headers[i];
            if self.is_learned(c) {
                let scaled = self.activity(c) * 1e-20;
                self.set_activity(c, scaled);
            }
        }
        self.clause_increment *= 1e-20;
    }

    /// Deletes roughly half of the learned clauses, preferring clauses with
    /// high LBD and low activity. Clauses for which `is_locked` returns true
    /// (currently acting as a reason) and binary clauses are kept.
    ///
    /// Returns the deleted clause references (their literals stay readable
    /// until the next garbage collection, so the caller can proof-log the
    /// deletions). Watch lists are rebuilt; clause references stay valid
    /// (deletion is a tombstone until the next level-zero garbage
    /// collection).
    pub(crate) fn reduce<F>(&mut self, is_locked: F) -> Vec<ClauseRef>
    where
        F: Fn(ClauseRef) -> bool,
    {
        let mut candidates: Vec<ClauseRef> = self
            .headers
            .iter()
            .copied()
            .filter(|&cref| {
                self.is_learned(cref)
                    && !self.is_deleted(cref)
                    && self.len(cref) > 2
                    && !is_locked(cref)
            })
            .collect();
        // Worst clauses first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            self.lbd(b).cmp(&self.lbd(a)).then(
                self.activity(a)
                    .partial_cmp(&self.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        for &cref in candidates.iter().take(to_delete) {
            self.delete(cref);
        }
        if to_delete > 0 {
            self.rebuild_watches();
        }
        candidates.truncate(to_delete);
        candidates
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.headers.len() {
            let cref = self.headers[i];
            if self.is_deleted(cref) {
                continue;
            }
            let first = self.lit_at(cref, 0);
            let second = self.lit_at(cref, 1);
            self.watches[first.code()].push(Watcher {
                cref,
                blocker: second,
            });
            self.watches[second.code()].push(Watcher {
                cref,
                blocker: first,
            });
        }
    }

    /// Removes the watch-list entries of the given (just-deleted) clauses by
    /// sweeping each affected literal's list once. Keeps propagation from
    /// cache-missing into tombstoned clauses between garbage collections.
    pub(crate) fn sweep_deleted_watchers(&mut self, crefs: &[ClauseRef]) {
        let mut codes: Vec<usize> = Vec::with_capacity(crefs.len() * 2);
        for &cref in crefs {
            codes.push(self.lit_at(cref, 0).code());
            codes.push(self.lit_at(cref, 1).code());
        }
        codes.sort_unstable();
        codes.dedup();
        for code in codes {
            let arena = &self.arena;
            self.watches[code].retain(|w| arena[w.cref as usize + 1] & FLAG_DELETED == 0);
        }
    }

    /// Deletes every learned clause whose LBD exceeds `max_lbd` (binary
    /// clauses always survive), sweeping the affected watch lists. Returns
    /// the deleted clause references (still readable for proof logging).
    ///
    /// Used when a guard is retired: only glucose-style "core" clauses are
    /// worth carrying into the next hash cell — the long-tail ballast costs
    /// more in propagation work than it saves in conflicts.
    pub(crate) fn trim_learned(&mut self, max_lbd: u32) -> Vec<ClauseRef> {
        let victims: Vec<ClauseRef> = self
            .headers
            .iter()
            .copied()
            .filter(|&cref| {
                self.is_learned(cref)
                    && !self.is_deleted(cref)
                    && self.len(cref) > 2
                    && self.lbd(cref) > max_lbd
            })
            .collect();
        for &cref in &victims {
            self.delete(cref);
        }
        self.sweep_deleted_watchers(&victims);
        victims
    }

    /// Returns `true` when enough of the arena is tombstoned that compaction
    /// pays for itself (more dead words than live ones, so the copy cost is
    /// amortised against the space reclaimed).
    pub(crate) fn should_collect(&self) -> bool {
        self.wasted > 4096 && self.wasted * 2 > self.arena.len()
    }

    /// Compacts the arena, dropping tombstoned clauses, and returns the
    /// mapping from old to new clause references for every surviving clause.
    ///
    /// The caller must hold no [`ClauseRef`] across this call other than
    /// through the returned map (the solver only collects at decision level
    /// zero, where no clause acts as a reason that is ever dereferenced).
    pub(crate) fn collect_garbage(&mut self) -> HashMap<ClauseRef, ClauseRef> {
        let mut remap = HashMap::with_capacity(self.headers.len());
        let mut new_arena = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut new_headers = Vec::with_capacity(self.headers.len());
        for &cref in &self.headers {
            if self.is_deleted(cref) {
                continue;
            }
            let start = cref as usize;
            let end = Self::lits_start(cref) + self.len(cref);
            let new_cref = new_arena.len() as ClauseRef;
            new_arena.extend_from_slice(&self.arena[start..end]);
            new_headers.push(new_cref);
            remap.insert(cref, new_cref);
        }
        self.arena = new_arena;
        self.headers = new_headers;
        self.wasted = 0;
        self.rebuild_watches();
        remap
    }

    /// Iterates over the references of all non-deleted clauses.
    #[cfg(test)]
    pub(crate) fn active_crefs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.headers
            .iter()
            .copied()
            .filter(|&cref| !self.is_deleted(cref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn watches(db: &mut ClauseDb, l: Lit) -> Vec<ClauseRef> {
        db.watchers_mut(l).iter().map(|w| w.cref).collect()
    }

    #[test]
    fn add_clause_registers_two_watches_with_blockers() {
        let mut db = ClauseDb::new(3, 0.999);
        let cref = db.add_clause(&[lit(1), lit(-2), lit(3)], false, 0);
        assert!(watches(&mut db, lit(1)).contains(&cref));
        assert!(watches(&mut db, lit(-2)).contains(&cref));
        assert!(watches(&mut db, lit(3)).is_empty());
        // Each watcher's blocker is the *other* watched literal.
        assert_eq!(db.watchers_mut(lit(1))[0].blocker, lit(-2));
        assert_eq!(db.watchers_mut(lit(-2))[0].blocker, lit(1));
    }

    #[test]
    fn arena_roundtrips_literals_and_metadata() {
        let mut db = ClauseDb::new(4, 0.999);
        let a = db.add_clause(&[lit(1), lit(2), lit(-3)], false, 0);
        let b = db.add_clause(&[lit(-1), lit(4)], true, 7);
        assert_eq!(db.len(a), 3);
        assert_eq!(db.len(b), 2);
        assert_eq!(
            db.iter_lits(a).collect::<Vec<_>>(),
            vec![lit(1), lit(2), lit(-3)]
        );
        assert!(!db.is_learned(a) && db.is_learned(b));
        assert_eq!(db.lbd(b), 7);
        db.swap_lits(a, 0, 2);
        assert_eq!(db.lit_at(a, 0), lit(-3));
        assert_eq!(db.lit_at(a, 2), lit(1));
    }

    #[test]
    fn reduce_deletes_half_of_removable_learned_clauses() {
        let mut db = ClauseDb::new(10, 0.999);
        for i in 0..8 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            let c = Var::new((i + 2) % 10).positive();
            db.add_clause(&[a, b, c], true, (i as u32) + 2);
        }
        assert_eq!(db.num_learned(), 8);
        let deleted = db.reduce(|_| false);
        assert_eq!(deleted.len(), 4);
        assert_eq!(db.num_learned(), 4);
        // The surviving clauses should be the ones with the lowest LBD.
        let surviving_lbds: Vec<u32> = db
            .active_crefs()
            .filter(|&c| db.is_learned(c))
            .map(|c| db.lbd(c))
            .collect();
        assert!(surviving_lbds.iter().all(|&l| l <= 5));
    }

    #[test]
    fn locked_clauses_survive_reduction() {
        let mut db = ClauseDb::new(10, 0.999);
        let mut refs = Vec::new();
        for i in 0..4 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            let c = Var::new(i + 2).positive();
            refs.push(db.add_clause(&[a, b, c], true, 10));
        }
        let locked = refs[0];
        db.reduce(|cref| cref == locked);
        assert!(!db.is_deleted(locked));
    }

    #[test]
    fn binary_learned_clauses_are_never_deleted() {
        let mut db = ClauseDb::new(10, 0.999);
        for i in 0..4 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            db.add_clause(&[a, b], true, 10);
        }
        assert!(db.reduce(|_| false).is_empty());
    }

    #[test]
    fn clause_activity_bump_and_rescale() {
        let mut db = ClauseDb::new(4, 0.5);
        let cref = db.add_clause(&[lit(1), lit(2), lit(3)], true, 3);
        for _ in 0..200 {
            db.decay_clauses();
        }
        db.bump_clause(cref);
        assert!(db.activity(cref) > 0.0);
        assert!(db.activity(cref).is_finite());
    }

    #[test]
    fn bumping_original_clause_is_a_noop() {
        let mut db = ClauseDb::new(4, 0.999);
        let cref = db.add_clause(&[lit(1), lit(2)], false, 0);
        db.bump_clause(cref);
        assert_eq!(db.activity(cref), 0.0);
    }

    #[test]
    fn garbage_collection_compacts_and_remaps() {
        let mut db = ClauseDb::new(6, 0.999);
        let a = db.add_clause(&[lit(1), lit(2), lit(3)], false, 0);
        let b = db.add_clause(&[lit(-1), lit(-2)], false, 0);
        let c = db.add_clause(&[lit(4), lit(5), lit(6)], true, 2);
        db.delete(b);
        let remap = db.collect_garbage();
        assert_eq!(remap.len(), 2);
        let new_a = remap[&a];
        let new_c = remap[&c];
        assert!(!remap.contains_key(&b));
        assert_eq!(
            db.iter_lits(new_a).collect::<Vec<_>>(),
            vec![lit(1), lit(2), lit(3)]
        );
        assert_eq!(
            db.iter_lits(new_c).collect::<Vec<_>>(),
            vec![lit(4), lit(5), lit(6)]
        );
        assert!(db.is_learned(new_c));
        // Watches were rebuilt against the new references.
        assert!(watches(&mut db, lit(1)).contains(&new_a));
        assert!(watches(&mut db, lit(-1)).is_empty());
        assert_eq!(db.num_learned(), 1);
    }

    #[test]
    fn should_collect_tracks_waste() {
        let mut db = ClauseDb::new(4, 0.999);
        assert!(!db.should_collect());
        let mut refs = Vec::new();
        for _ in 0..900 {
            refs.push(db.add_clause(&[lit(1), lit(2), lit(3)], true, 2));
        }
        for &r in &refs {
            db.delete(r);
        }
        assert!(db.should_collect());
        db.collect_garbage();
        assert!(!db.should_collect());
    }
}
