//! Clause storage, watch lists and learned-clause bookkeeping.

use unigen_cnf::Lit;

/// Index of a clause inside the [`ClauseDb`] arena.
pub(crate) type ClauseRef = u32;

/// A stored clause (original or learned).
#[derive(Debug, Clone)]
pub(crate) struct StoredClause {
    /// Literals; positions 0 and 1 are the watched literals.
    pub lits: Vec<Lit>,
    /// Whether this clause was learned during search.
    pub learned: bool,
    /// Literal-block distance computed when the clause was learned.
    pub lbd: u32,
    /// Activity used to rank learned clauses for deletion.
    pub activity: f64,
    /// Tombstone flag: deleted clauses stay in the arena but are skipped.
    pub deleted: bool,
}

/// Arena of clauses plus per-literal watch lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<StoredClause>,
    /// `watches[lit.code()]` lists the clauses currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    clause_increment: f64,
    clause_decay: f64,
    num_learned: usize,
}

const CLAUSE_RESCALE_THRESHOLD: f64 = 1e20;

impl ClauseDb {
    pub(crate) fn new(num_vars: usize, clause_decay: f64) -> Self {
        ClauseDb {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            clause_increment: 1.0,
            clause_decay,
            num_learned: 0,
        }
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.watches.len() < num_vars * 2 {
            self.watches.resize(num_vars * 2, Vec::new());
        }
    }

    /// Adds a clause with at least two literals and registers its watches.
    ///
    /// The caller is responsible for handling empty and unit clauses.
    pub(crate) fn add_clause(&mut self, lits: Vec<Lit>, learned: bool, lbd: u32) -> ClauseRef {
        debug_assert!(
            lits.len() >= 2,
            "watched clauses need at least two literals"
        );
        let cref = self.clauses.len() as ClauseRef;
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        if learned {
            self.num_learned += 1;
        }
        self.clauses.push(StoredClause {
            lits,
            learned,
            lbd,
            activity: 0.0,
            deleted: false,
        });
        cref
    }

    #[inline]
    pub(crate) fn clause(&self, cref: ClauseRef) -> &StoredClause {
        &self.clauses[cref as usize]
    }

    #[inline]
    pub(crate) fn clause_mut(&mut self, cref: ClauseRef) -> &mut StoredClause {
        &mut self.clauses[cref as usize]
    }

    #[inline]
    pub(crate) fn watchers_mut(&mut self, lit: Lit) -> &mut Vec<ClauseRef> {
        &mut self.watches[lit.code()]
    }

    /// Moves the watch of `cref` from `old` to `new` (the caller has already
    /// updated the literal order inside the clause).
    pub(crate) fn move_watch(&mut self, cref: ClauseRef, new: Lit) {
        self.watches[new.code()].push(cref);
    }

    /// Returns the number of learned, non-deleted clauses.
    pub(crate) fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Bumps the activity of a learned clause.
    pub(crate) fn bump_clause(&mut self, cref: ClauseRef) {
        let clause = &mut self.clauses[cref as usize];
        if !clause.learned {
            return;
        }
        clause.activity += self.clause_increment;
        if clause.activity > CLAUSE_RESCALE_THRESHOLD {
            for c in &mut self.clauses {
                if c.learned {
                    c.activity *= 1e-20;
                }
            }
            self.clause_increment *= 1e-20;
        }
    }

    /// Applies the clause-activity decay (called once per conflict).
    pub(crate) fn decay_clauses(&mut self) {
        self.clause_increment /= self.clause_decay;
    }

    /// Deletes roughly half of the learned clauses, preferring clauses with
    /// high LBD and low activity. Clauses for which `is_locked` returns true
    /// (currently acting as a reason) and binary clauses are kept.
    ///
    /// Returns the number of clauses deleted. Watch lists are rebuilt.
    pub(crate) fn reduce<F>(&mut self, is_locked: F) -> usize
    where
        F: Fn(ClauseRef) -> bool,
    {
        let mut candidates: Vec<ClauseRef> = (0..self.clauses.len() as ClauseRef)
            .filter(|&cref| {
                let c = &self.clauses[cref as usize];
                c.learned && !c.deleted && c.lits.len() > 2 && !is_locked(cref)
            })
            .collect();
        // Worst clauses first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        let mut deleted = 0;
        for &cref in candidates.iter().take(to_delete) {
            let clause = &mut self.clauses[cref as usize];
            clause.deleted = true;
            deleted += 1;
            self.num_learned -= 1;
        }
        if deleted > 0 {
            self.rebuild_watches();
        }
        deleted
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.deleted || clause.lits.len() < 2 {
                continue;
            }
            self.watches[clause.lits[0].code()].push(i as ClauseRef);
            self.watches[clause.lits[1].code()].push(i as ClauseRef);
        }
    }

    /// Iterates over the non-deleted clauses (used by tests and invariant
    /// checks).
    #[cfg(test)]
    pub(crate) fn iter_active(&self) -> impl Iterator<Item = &StoredClause> {
        self.clauses.iter().filter(|c| !c.deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn add_clause_registers_two_watches() {
        let mut db = ClauseDb::new(3, 0.999);
        let cref = db.add_clause(vec![lit(1), lit(-2), lit(3)], false, 0);
        assert!(db.watchers_mut(lit(1)).contains(&cref));
        assert!(db.watchers_mut(lit(-2)).contains(&cref));
        assert!(db.watchers_mut(lit(3)).is_empty());
    }

    #[test]
    fn reduce_deletes_half_of_removable_learned_clauses() {
        let mut db = ClauseDb::new(10, 0.999);
        for i in 0..8 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            let c = Var::new((i + 2) % 10).positive();
            db.add_clause(vec![a, b, c], true, (i as u32) + 2);
        }
        assert_eq!(db.num_learned(), 8);
        let deleted = db.reduce(|_| false);
        assert_eq!(deleted, 4);
        assert_eq!(db.num_learned(), 4);
        // The surviving clauses should be the ones with the lowest LBD.
        let surviving_lbds: Vec<u32> = db
            .iter_active()
            .filter(|c| c.learned)
            .map(|c| c.lbd)
            .collect();
        assert!(surviving_lbds.iter().all(|&l| l <= 5));
    }

    #[test]
    fn locked_clauses_survive_reduction() {
        let mut db = ClauseDb::new(10, 0.999);
        let mut refs = Vec::new();
        for i in 0..4 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            let c = Var::new(i + 2).positive();
            refs.push(db.add_clause(vec![a, b, c], true, 10));
        }
        let locked = refs[0];
        db.reduce(|cref| cref == locked);
        assert!(!db.clause(locked).deleted);
    }

    #[test]
    fn binary_learned_clauses_are_never_deleted() {
        let mut db = ClauseDb::new(10, 0.999);
        for i in 0..4 {
            let a = Var::new(i).positive();
            let b = Var::new(i + 1).negative();
            db.add_clause(vec![a, b], true, 10);
        }
        assert_eq!(db.reduce(|_| false), 0);
    }

    #[test]
    fn clause_activity_bump_and_rescale() {
        let mut db = ClauseDb::new(4, 0.5);
        let cref = db.add_clause(vec![lit(1), lit(2), lit(3)], true, 3);
        for _ in 0..200 {
            db.decay_clauses();
        }
        db.bump_clause(cref);
        assert!(db.clause(cref).activity > 0.0);
        assert!(db.clause(cref).activity.is_finite());
    }

    #[test]
    fn bumping_original_clause_is_a_noop() {
        let mut db = ClauseDb::new(4, 0.999);
        let cref = db.add_clause(vec![lit(1), lit(2)], false, 0);
        db.bump_clause(cref);
        assert_eq!(db.clause(cref).activity, 0.0);
    }
}
