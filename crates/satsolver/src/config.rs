//! Solver configuration.

/// Tunable parameters of the CDCL search.
///
/// The defaults follow MiniSat-style folklore values and are what every
/// experiment in this repository uses; they are exposed so that the ablation
/// benches (and curious users) can vary them.
///
/// # Example
///
/// ```
/// use unigen_satsolver::SolverConfig;
/// let config = SolverConfig {
///     restart_interval: 64,
///     ..SolverConfig::default()
/// };
/// assert_eq!(config.restart_interval, 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Base number of conflicts between Luby restarts.
    pub restart_interval: u64,
    /// Multiplicative decay applied to variable activities after each
    /// conflict (VSIDS).
    pub var_decay: f64,
    /// Multiplicative decay applied to learned-clause activities after each
    /// conflict.
    pub clause_decay: f64,
    /// Initial number of learned clauses tolerated before the first
    /// clause-database reduction.
    pub learned_clause_limit: usize,
    /// Growth factor applied to the learned-clause limit after each
    /// reduction.
    pub learned_clause_growth: f64,
    /// Default polarity assigned to a variable the first time it is decided
    /// (phase saving takes over afterwards).
    pub default_polarity: bool,
    /// Random seed controlling tie-breaking noise injected into initial
    /// variable activities; two solvers built with the same seed and the same
    /// formula explore the same search tree.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart_interval: 100,
            var_decay: 0.95,
            clause_decay: 0.999,
            learned_clause_limit: 4000,
            learned_clause_growth: 1.3,
            default_polarity: false,
            seed: 0x5eed_cafe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SolverConfig::default();
        assert!(c.var_decay > 0.0 && c.var_decay < 1.0);
        assert!(c.clause_decay > 0.0 && c.clause_decay < 1.0);
        assert!(c.restart_interval > 0);
        assert!(c.learned_clause_growth > 1.0);
    }
}
