//! Solver configuration.

use std::sync::Arc;

use crate::fault::FaultHook;
use crate::proof::ProofLog;

/// How the solver propagates *guarded* xor layers (hash cells).
///
/// Unguarded xor constraints always use the watched-variable engine; this
/// knob only controls whether a guard's rows are additionally compiled into
/// a per-guard Gauss–Jordan matrix (see [`crate::Solver::add_xor_under`]),
/// which discovers implications and conflicts entailed by *combinations*
/// of rows at the cost of dense row arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaussMode {
    /// Never build matrices; every xor uses watched-variable propagation.
    Off,
    /// Build a matrix for every guarded layer, regardless of size.
    On,
    /// Build a matrix only for layers with at least
    /// [`SolverConfig::gauss_auto_threshold`] rows — wide hash layers are
    /// where cross-row reasoning pays for itself, while tiny layers stay
    /// on the cheaper watched engine.
    #[default]
    Auto,
}

/// Tunable parameters of the CDCL search.
///
/// The defaults follow MiniSat-style folklore values and are what every
/// experiment in this repository uses; they are exposed so that the ablation
/// benches (and curious users) can vary them.
///
/// # Example
///
/// ```
/// use unigen_satsolver::SolverConfig;
/// let config = SolverConfig {
///     restart_interval: 64,
///     ..SolverConfig::default()
/// };
/// assert_eq!(config.restart_interval, 64);
/// ```
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Base number of conflicts between Luby restarts.
    pub restart_interval: u64,
    /// Multiplicative decay applied to variable activities after each
    /// conflict (VSIDS).
    pub var_decay: f64,
    /// Multiplicative decay applied to learned-clause activities after each
    /// conflict.
    pub clause_decay: f64,
    /// Initial number of learned clauses tolerated before the first
    /// clause-database reduction.
    pub learned_clause_limit: usize,
    /// Growth factor applied to the learned-clause limit after each
    /// reduction.
    pub learned_clause_growth: f64,
    /// Default polarity assigned to a variable the first time it is decided
    /// (phase saving takes over afterwards).
    pub default_polarity: bool,
    /// Random seed controlling tie-breaking noise injected into initial
    /// variable activities; two solvers built with the same seed and the same
    /// formula explore the same search tree.
    pub seed: u64,
    /// Gauss–Jordan elimination policy for guarded xor layers.
    pub gauss: GaussMode,
    /// Minimum number of rows a guarded layer needs before
    /// [`GaussMode::Auto`] compiles it into a matrix.
    pub gauss_auto_threshold: usize,
    /// Injectable fault oracle consulted at solve/search/seal boundaries
    /// (see [`FaultHook`]); `None` — the default — costs one pointer test
    /// per search-loop iteration and injects nothing.
    pub fault_hook: Option<Arc<dyn FaultHook>>,
    /// DRAT-style proof sink enabling *certify mode*: when `Some`, the
    /// solver records every learned clause, deletion, xor-row expansion,
    /// Gauss derivation, guard lifecycle event, and enumeration step into
    /// the in-memory [`ProofLog`], so each Unsat / exhaustive-cell verdict
    /// can be re-validated offline by the independent `unigen-cert`
    /// checker. `None` — the default — costs one `Option` test per logging
    /// site and records nothing (the same zero-cost discipline as
    /// [`SolverConfig::fault_hook`]). Install the sink at construction
    /// time; retrieve the stream via `Solver::proof_bytes`.
    pub proof: Option<ProofLog>,
}

// `Arc<dyn FaultHook>` has no structural equality; two configs are equal
// when they share the same hook instance (or both have none) — identity is
// the right notion for an injected oracle with internal counters.
impl PartialEq for SolverConfig {
    fn eq(&self, other: &Self) -> bool {
        let hooks_equal = match (&self.fault_hook, &other.fault_hook) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        hooks_equal
            // Proof logs diverge by construction (each solver's stream is
            // its own); configs agree when certify mode is on in both.
            && self.proof.is_some() == other.proof.is_some()
            && self.restart_interval == other.restart_interval
            && self.var_decay == other.var_decay
            && self.clause_decay == other.clause_decay
            && self.learned_clause_limit == other.learned_clause_limit
            && self.learned_clause_growth == other.learned_clause_growth
            && self.default_polarity == other.default_polarity
            && self.seed == other.seed
            && self.gauss == other.gauss
            && self.gauss_auto_threshold == other.gauss_auto_threshold
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart_interval: 100,
            var_decay: 0.95,
            clause_decay: 0.999,
            learned_clause_limit: 4000,
            learned_clause_growth: 1.3,
            default_polarity: false,
            seed: 0x5eed_cafe,
            gauss: GaussMode::Auto,
            gauss_auto_threshold: 2,
            fault_hook: None,
            proof: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SolverConfig::default();
        assert!(c.var_decay > 0.0 && c.var_decay < 1.0);
        assert!(c.clause_decay > 0.0 && c.clause_decay < 1.0);
        assert!(c.restart_interval > 0);
        assert!(c.learned_clause_growth > 1.0);
        assert_eq!(c.gauss, GaussMode::Auto);
        assert!(c.gauss_auto_threshold >= 1);
        assert!(c.fault_hook.is_none());
        assert!(c.proof.is_none());
    }

    #[test]
    fn proof_compares_by_presence() {
        let on = SolverConfig {
            proof: Some(ProofLog::new()),
            ..SolverConfig::default()
        };
        assert_eq!(on, on.clone());
        assert_ne!(on, SolverConfig::default());
    }

    #[test]
    fn fault_hooks_compare_by_identity() {
        use crate::fault::FaultSite;

        #[derive(Debug)]
        struct Never;
        impl FaultHook for Never {
            fn trip(&self, _site: FaultSite) -> bool {
                false
            }
        }

        let hook: Arc<dyn FaultHook> = Arc::new(Never);
        let a = SolverConfig {
            fault_hook: Some(Arc::clone(&hook)),
            ..SolverConfig::default()
        };
        let b = a.clone();
        assert_eq!(a, b);
        let c = SolverConfig {
            fault_hook: Some(Arc::new(Never)),
            ..SolverConfig::default()
        };
        assert_ne!(a, c);
        assert_ne!(a, SolverConfig::default());
    }
}
