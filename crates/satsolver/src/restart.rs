//! Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence
/// `1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …`.
///
/// The solver restarts after `luby(i) * restart_interval` conflicts in its
/// `i`-th restart period, the schedule shown by Luby, Sinclair and Zuckerman
/// to be universally optimal for Las Vegas algorithms and used by MiniSat
/// and CryptoMiniSAT alike.
pub(crate) fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    // Classic MiniSat formulation over a zero-based index: find the finite
    // subsequence that contains the index, then the position within it.
    let mut x = i - 1;
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Iterator over restart thresholds (`luby(i) * base` for `i = 1, 2, …`).
#[derive(Debug, Clone)]
pub(crate) struct LubyRestarts {
    base: u64,
    index: u64,
}

impl LubyRestarts {
    pub(crate) fn new(base: u64) -> Self {
        LubyRestarts { base, index: 0 }
    }

    /// Returns the conflict budget of the next restart period.
    pub(crate) fn next_limit(&mut self) -> u64 {
        self.index += 1;
        luby(self.index) * self.base.max(1)
    }

    /// Rewinds the sequence to its start. Called on every cold solve entry:
    /// a long-lived incremental solver would otherwise crawl ever deeper
    /// into the Luby sequence and effectively stop restarting, degrading
    /// search on later cells relative to a freshly built solver.
    pub(crate) fn reset(&mut self) {
        self.index = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        let got: Vec<u64> = (1..=expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn luby_values_are_powers_of_two() {
        for i in 1..200u64 {
            assert!(luby(i).is_power_of_two());
        }
    }

    #[test]
    fn restart_iterator_scales_by_base() {
        let mut r = LubyRestarts::new(100);
        assert_eq!(r.next_limit(), 100);
        assert_eq!(r.next_limit(), 100);
        assert_eq!(r.next_limit(), 200);
        assert_eq!(r.next_limit(), 100);
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut r = LubyRestarts::new(0);
        assert_eq!(r.next_limit(), 1);
    }
}
