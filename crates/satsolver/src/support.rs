//! Independent-support checking.
//!
//! The paper assumes the sampling set `S` is an *independent support* of `F`:
//! no two witnesses of `F` differ only outside `S` (equivalently, the values
//! of `S` determine the values of all other variables in every witness). The
//! benchmark providers supplied such sets; our circuit substrate produces
//! them by construction (the primary inputs of a Tseitin encoding).
//!
//! This module provides a solver-based verification of the property — the
//! classical Padoa-style self-composition check — so that tests and users can
//! validate sampling sets instead of trusting them. Deciding whether a
//! *given* set is an independent support is co-NP-complete; the check below
//! issues a single SAT call on a formula roughly twice the size of `F`, which
//! is perfectly affordable at the scale of this repository's benchmarks.

use unigen_cnf::{Clause, CnfFormula, Lit, Var};

use crate::budget::Budget;
use crate::solver::{SolveResult, Solver};

/// Result of an independent-support check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupportCheck {
    /// The candidate set is an independent support.
    Independent,
    /// The candidate set is not an independent support; the two witnesses
    /// returned agree on the candidate set but differ elsewhere.
    Dependent {
        /// Variable (outside the candidate set) on which the two witnesses
        /// disagree.
        witness_var: Var,
    },
    /// The check could not be completed within the given budget.
    Unknown,
}

/// Checks whether `candidate` is an independent support of `formula`.
///
/// The check builds the self-composition `F(X) ∧ F(X') ∧ (S = S') ∧ (X ≠ X')`
/// and asks the solver for a witness: the candidate is an independent support
/// iff the composition is unsatisfiable.
///
/// # Errors
///
/// This function does not return errors; an exhausted budget is reported as
/// [`SupportCheck::Unknown`].
///
/// # Panics
///
/// Panics if `candidate` mentions a variable outside the formula's range.
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
/// use unigen_satsolver::support::{verify_independent_support, SupportCheck};
/// use unigen_satsolver::Budget;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // x3 = x1 ⊕ x2, so {x1, x2} is an independent support.
/// let mut f = CnfFormula::new(3);
/// f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], false))?;
/// let s = [Var::from_dimacs(1), Var::from_dimacs(2)];
/// assert_eq!(
///     verify_independent_support(&f, &s, &Budget::new()),
///     SupportCheck::Independent
/// );
/// # Ok(())
/// # }
/// ```
pub fn verify_independent_support(
    formula: &CnfFormula,
    candidate: &[Var],
    budget: &Budget,
) -> SupportCheck {
    let n = formula.num_vars();
    for &v in candidate {
        assert!(
            v.index() < n,
            "candidate variable {v} outside the formula's range"
        );
    }
    let in_candidate: Vec<bool> = {
        let mut mask = vec![false; n];
        for &v in candidate {
            mask[v.index()] = true;
        }
        mask
    };

    // Build F(X) ∧ F(X') with X' = variables n..2n, plus selector variables
    // d_v (one per non-candidate variable v) meaning "v and v' differ".
    let shift = |lit: Lit| -> Lit { Lit::new(Var::new(lit.var().index() + n), lit.is_positive()) };

    let mut composed = CnfFormula::new(2 * n);
    for clause in formula.clauses() {
        composed
            .push_clause(clause.clone())
            .expect("original clause is within range");
        composed
            .push_clause(Clause::new(clause.iter().map(|&l| shift(l))))
            .expect("shifted clause is within range");
    }
    for xor in formula.xor_clauses() {
        composed
            .add_xor_clause(xor.clone())
            .expect("original xor is within range");
        composed
            .add_xor_clause(unigen_cnf::XorClause::new(
                xor.vars().iter().map(|&v| Var::new(v.index() + n)),
                xor.rhs(),
            ))
            .expect("shifted xor is within range");
    }
    // Equality on the candidate set: v ↔ v'.
    for &v in candidate {
        let v2 = Var::new(v.index() + n);
        composed
            .add_clause([v.negative(), v2.positive()])
            .expect("in range");
        composed
            .add_clause([v.positive(), v2.negative()])
            .expect("in range");
    }
    // Difference selectors for non-candidate variables:
    //   d_v → (v ⊕ v'), encoded as (¬d_v ∨ v ∨ v') ∧ (¬d_v ∨ ¬v ∨ ¬v').
    let mut selectors = Vec::new();
    let mut selector_vars: Vec<(Var, Var)> = Vec::new();
    for (i, &is_candidate) in in_candidate.iter().enumerate() {
        if is_candidate {
            continue;
        }
        let v = Var::new(i);
        let v2 = Var::new(i + n);
        let d = composed.new_var();
        composed
            .add_clause([d.negative(), v.positive(), v2.positive()])
            .expect("in range");
        composed
            .add_clause([d.negative(), v.negative(), v2.negative()])
            .expect("in range");
        selectors.push(d.positive());
        selector_vars.push((d, v));
    }
    if selectors.is_empty() {
        // Every variable is in the candidate set; trivially independent.
        return SupportCheck::Independent;
    }
    // At least one non-candidate variable differs.
    composed
        .add_clause(selectors.clone())
        .expect("selector clause is within range");

    let mut solver = Solver::from_formula(&composed);
    match solver.solve_with_budget(budget) {
        SolveResult::Unsat => SupportCheck::Independent,
        SolveResult::Sat(model) => {
            let witness_var = selector_vars
                .iter()
                .find(|(d, _)| model.value(*d))
                .map(|&(_, v)| v)
                .unwrap_or_else(|| {
                    // The disjunction forces at least one selector to be true,
                    // but the selector may be true without the variables
                    // differing only if the solver chose so; fall back to an
                    // explicit scan.
                    selector_vars
                        .iter()
                        .map(|&(_, v)| v)
                        .find(|&v| model.value(v) != model.value(Var::new(v.index() + n)))
                        .expect("some non-candidate variable differs")
                });
            SupportCheck::Dependent { witness_var }
        }
        SolveResult::Unknown | SolveResult::Interrupted(_) => SupportCheck::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::XorClause;

    #[test]
    fn tseitin_style_definition_gives_independent_support() {
        // x3 ↔ (x1 ∧ x2): {x1, x2} is independent.
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::from_dimacs(-3), Lit::from_dimacs(1)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(-3), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([
            Lit::from_dimacs(3),
            Lit::from_dimacs(-1),
            Lit::from_dimacs(-2),
        ])
        .unwrap();
        let s = [Var::from_dimacs(1), Var::from_dimacs(2)];
        assert_eq!(
            verify_independent_support(&f, &s, &Budget::new()),
            SupportCheck::Independent
        );
    }

    #[test]
    fn free_variable_breaks_independence() {
        // x1 ∨ x2 with candidate {x1}: x2 is unconstrained, so two witnesses
        // can agree on x1 and differ on x2.
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let s = [Var::from_dimacs(1)];
        match verify_independent_support(&f, &s, &Budget::new()) {
            SupportCheck::Dependent { witness_var } => {
                assert_eq!(witness_var, Var::from_dimacs(2));
            }
            other => panic!("expected Dependent, got {other:?}"),
        }
    }

    #[test]
    fn full_support_is_trivially_independent() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let s = [Var::from_dimacs(1), Var::from_dimacs(2)];
        assert_eq!(
            verify_independent_support(&f, &s, &Budget::new()),
            SupportCheck::Independent
        );
    }

    #[test]
    fn paper_example_from_section_two() {
        // (a ∨ ¬b) ∧ (¬a ∨ b) has independent supports {a}, {b} and {a, b}.
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(-2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(2)])
            .unwrap();
        for s in [vec![Var::from_dimacs(1)], vec![Var::from_dimacs(2)]] {
            assert_eq!(
                verify_independent_support(&f, &s, &Budget::new()),
                SupportCheck::Independent
            );
        }
    }

    #[test]
    fn xor_definitions_are_recognised() {
        // x3 = x1 ⊕ x2 and x4 = x1 ⊕ x3: {x1, x2} determines everything.
        let mut f = CnfFormula::new(4);
        f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], false))
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([1, 3, 4], false))
            .unwrap();
        let s = [Var::from_dimacs(1), Var::from_dimacs(2)];
        assert_eq!(
            verify_independent_support(&f, &s, &Budget::new()),
            SupportCheck::Independent
        );
        // But {x1} alone is not enough.
        assert!(matches!(
            verify_independent_support(&f, &[Var::from_dimacs(1)], &Budget::new()),
            SupportCheck::Dependent { .. }
        ));
    }
}
