//! Watched-variable propagation for xor constraints, with optional
//! activation guards.
//!
//! Each xor constraint `v_1 ⊕ … ⊕ v_k = rhs` watches two of its variables.
//! When a watched variable is assigned, the engine tries to move the watch to
//! another unassigned variable; if none exists the constraint has at most one
//! unassigned variable left, so it either implies a value for that variable
//! or — if everything is assigned — is checked for consistency.
//!
//! Because xor constraints are polarity-symmetric, watch lists are indexed by
//! *variable*, not by literal. Reason and conflict clauses are generated
//! lazily from the current assignment (the disjunction of the falsified
//! literals of the other variables), which lets xor constraints participate
//! in standard first-UIP conflict analysis without being expanded to CNF.
//!
//! # Guards
//!
//! A constraint may carry a *guard literal* `g`, in which case it represents
//! the clause set of `g ∨ (v_1 ⊕ … ⊕ v_k = rhs)`: the constraint is **active**
//! while `g` is false (the solver assumes `¬g`), **dormant** while `g` is
//! true, and **pending** while `g` is unassigned. Reason and conflict clauses
//! of an active guarded constraint include `g`, so learned clauses derived
//! from it are automatically tagged with the guard and become satisfied (and
//! removable) once the guard is retired by asserting `g`. This is what lets
//! one solver instance serve every hash cell of a sampling run without ever
//! unlearning base-formula knowledge.

use std::collections::HashMap;

use unigen_cnf::{Lit, Var, XorClause};

/// Index of an xor constraint inside the [`XorEngine`].
pub(crate) type XorRef = u32;

/// Outcome of propagating an assignment through the xor constraints that
/// watch the assigned variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum XorPropagation {
    /// The constraint forces `lit` to be true (for a guarded constraint this
    /// can be the guard literal itself, when the parity is already violated).
    Implied {
        /// The implied literal.
        lit: Lit,
        /// The constraint that implies it.
        xref: XorRef,
    },
    /// The constraint is violated by the current (total on its variables)
    /// assignment.
    Conflict {
        /// The violated constraint.
        xref: XorRef,
    },
}

/// Assignment-state of one constraint's parity part (guard not considered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum XorState {
    /// Two or more variables are unassigned.
    Open,
    /// Exactly one variable is unassigned; the literal makes the parity hold.
    Implied(Lit),
    /// All variables are assigned and the parity holds.
    Satisfied,
    /// All variables are assigned and the parity is violated.
    Violated,
}

/// A stored xor constraint.
#[derive(Debug, Clone)]
pub(crate) struct StoredXor {
    vars: Vec<Var>,
    rhs: bool,
    /// Indices (into `vars`) of the two watched variables.
    watch: [usize; 2],
    /// Guard literal: the constraint is active only while this is false.
    guard: Option<Lit>,
    /// Retired constraints are skipped and their slot is reused.
    retired: bool,
}

/// The xor constraint store plus per-variable watch lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct XorEngine {
    xors: Vec<StoredXor>,
    /// `watches[var.index()]` lists the constraints watching `var` (including
    /// guard variables, which are watched permanently).
    watches: Vec<Vec<XorRef>>,
    /// Constraints indexed by their guard variable, for retirement.
    by_guard: HashMap<u32, Vec<XorRef>>,
    /// Slots of retired constraints, reused by subsequent `add` calls.
    free: Vec<XorRef>,
}

/// Result of adding an xor constraint to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AddXor {
    /// Constraint stored and watched normally.
    Stored(XorRef),
    /// The constraint reduces to a unit assignment `var = value`.
    Unit(Var, bool),
    /// The constraint is trivially satisfied (empty, rhs = 0).
    Tautology,
    /// The constraint is trivially unsatisfiable (empty, rhs = 1).
    Unsatisfiable,
}

impl XorEngine {
    pub(crate) fn new(num_vars: usize) -> Self {
        XorEngine {
            xors: Vec::new(),
            watches: vec![Vec::new(); num_vars],
            by_guard: HashMap::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.watches.len() < num_vars {
            self.watches.resize(num_vars, Vec::new());
        }
    }

    /// Adds a normalised xor constraint, optionally guarded by `guard` (a
    /// literal whose truth disables the constraint). Degenerate constraints
    /// are reported to the caller, who decides how to combine them with the
    /// guard.
    pub(crate) fn add(&mut self, xor: &XorClause, guard: Option<Lit>) -> AddXor {
        match xor.len() {
            0 => {
                if xor.rhs() {
                    AddXor::Unsatisfiable
                } else {
                    AddXor::Tautology
                }
            }
            1 => AddXor::Unit(xor.vars()[0], xor.rhs()),
            _ => {
                let vars = xor.vars().to_vec();
                debug_assert!(
                    guard.map_or(true, |g| !vars.contains(&g.var())),
                    "guard variable must not occur in the constraint"
                );
                // Callers may introduce variables (fresh guards in
                // particular) beyond the construction-time bound; grow the
                // watch lists rather than indexing past them.
                let needed = vars
                    .iter()
                    .map(|v| v.index())
                    .chain(guard.map(|g| g.var().index()))
                    .max()
                    .expect("at least two variables")
                    + 1;
                self.grow_to(needed);
                let stored = StoredXor {
                    vars,
                    rhs: xor.rhs(),
                    watch: [0, 1],
                    guard,
                    retired: false,
                };
                let xref = match self.free.pop() {
                    Some(slot) => {
                        self.xors[slot as usize] = stored;
                        slot
                    }
                    None => {
                        self.xors.push(stored);
                        (self.xors.len() - 1) as XorRef
                    }
                };
                let xor = &self.xors[xref as usize];
                self.watches[xor.vars[0].index()].push(xref);
                self.watches[xor.vars[1].index()].push(xref);
                if let Some(g) = guard {
                    self.watches[g.var().index()].push(xref);
                    self.by_guard
                        .entry(g.var().index() as u32)
                        .or_default()
                        .push(xref);
                }
                AddXor::Stored(xref)
            }
        }
    }

    /// Moves both watches of `xref` onto unassigned variables where possible
    /// (called right after `add` when some variables are already assigned, so
    /// the two-watch invariant holds from the start).
    pub(crate) fn position_watches<F>(&mut self, xref: XorRef, value_of: F)
    where
        F: Fn(Var) -> Option<bool>,
    {
        let xor = &mut self.xors[xref as usize];
        let mut unassigned = xor
            .vars
            .iter()
            .enumerate()
            .filter(|&(_, &v)| value_of(v).is_none())
            .map(|(i, _)| i);
        let first = unassigned.next();
        let second = unassigned.next();
        let new_watch = match (first, second) {
            (Some(a), Some(b)) => [a, b],
            (Some(a), None) => [a, if a == 0 { 1 } else { 0 }],
            _ => return,
        };
        let old_watch = xor.watch;
        if (old_watch[0] == new_watch[0] && old_watch[1] == new_watch[1])
            || (old_watch[0] == new_watch[1] && old_watch[1] == new_watch[0])
        {
            return;
        }
        let old_vars = [xor.vars[old_watch[0]], xor.vars[old_watch[1]]];
        let new_vars = [xor.vars[new_watch[0]], xor.vars[new_watch[1]]];
        xor.watch = new_watch;
        for v in old_vars {
            self.watches[v.index()].retain(|&x| x != xref);
        }
        for v in new_vars {
            self.watches[v.index()].push(xref);
        }
    }

    /// Examines the parity part of a constraint under the current assignment
    /// (the guard is *not* consulted).
    pub(crate) fn probe<F>(&self, xref: XorRef, value_of: F) -> XorState
    where
        F: Fn(Var) -> Option<bool>,
    {
        let xor = &self.xors[xref as usize];
        let mut parity = false;
        let mut unassigned: Option<Var> = None;
        for &v in &xor.vars {
            match value_of(v) {
                Some(value) => parity ^= value,
                None => {
                    if unassigned.is_some() {
                        return XorState::Open;
                    }
                    unassigned = Some(v);
                }
            }
        }
        match unassigned {
            Some(v) => XorState::Implied(v.lit(xor.rhs ^ parity)),
            None if parity == xor.rhs => XorState::Satisfied,
            None => XorState::Violated,
        }
    }

    /// Processes the assignment of `var`, updating watches and reporting any
    /// implication or conflict discovered.
    ///
    /// `value_of` must report the current partial assignment. At most one
    /// implication/conflict is returned per call per constraint; the caller
    /// enqueues implied literals and calls back in for subsequently assigned
    /// variables, exactly as with CNF watch lists.
    pub(crate) fn on_assign<F>(&mut self, var: Var, value_of: F, results: &mut Vec<XorPropagation>)
    where
        F: Fn(Var) -> Option<bool>,
    {
        let watching = std::mem::take(&mut self.watches[var.index()]);
        let mut retained: Vec<XorRef> = Vec::with_capacity(watching.len());

        for xref in watching {
            if self.xors[xref as usize].retired {
                // Stale entry for a retired constraint; drop it.
                continue;
            }
            // Guard-variable event: the constraint may just have activated.
            if let Some(g) = self.xors[xref as usize].guard {
                if g.var() == var {
                    retained.push(xref);
                    let guard_true = value_of(var).map(|v| g.evaluate(v));
                    if guard_true != Some(false) {
                        // Dormant (or, impossibly, unassigned): nothing to do.
                        continue;
                    }
                    match self.probe(xref, &value_of) {
                        XorState::Implied(lit) => {
                            results.push(XorPropagation::Implied { lit, xref });
                        }
                        XorState::Violated => {
                            results.push(XorPropagation::Conflict { xref });
                        }
                        XorState::Open | XorState::Satisfied => {}
                    }
                    continue;
                }
            }

            let xor = &mut self.xors[xref as usize];
            // Which watch slot does `var` occupy?
            let slot = if xor.vars[xor.watch[0]] == var {
                0
            } else if xor.vars[xor.watch[1]] == var {
                1
            } else {
                // Stale entry (watch was moved elsewhere); drop it.
                continue;
            };
            let other_slot = 1 - slot;
            let other_var = xor.vars[xor.watch[other_slot]];

            // Try to move this watch to an unassigned, unwatched variable.
            let replacement = xor
                .vars
                .iter()
                .enumerate()
                .find(|&(i, &v)| {
                    i != xor.watch[other_slot] && i != xor.watch[slot] && value_of(v).is_none()
                })
                .map(|(i, _)| i);

            if let Some(new_index) = replacement {
                let new_var = xor.vars[new_index];
                xor.watch[slot] = new_index;
                self.watches[new_var.index()].push(xref);
                // Do not retain: the watch has moved away from `var`.
                continue;
            }

            // No replacement: every variable except possibly `other_var` is
            // assigned. Keep watching `var` so the constraint is revisited
            // after backtracking.
            retained.push(xref);

            let assigned_parity = xor
                .vars
                .iter()
                .filter(|&&v| v != other_var)
                .fold(false, |acc, &v| {
                    acc ^ value_of(v).expect("all non-other variables are assigned")
                });

            let guard = xor.guard;
            let rhs = xor.rhs;
            // How the guard gates the outcome: None ≡ always active.
            let guard_value = guard.map(|g| value_of(g.var()).map(|v| g.evaluate(v)));
            match value_of(other_var) {
                None => {
                    let active = matches!(guard_value, None | Some(Some(false)));
                    if active {
                        let implied_value = rhs ^ assigned_parity;
                        results.push(XorPropagation::Implied {
                            lit: other_var.lit(implied_value),
                            xref,
                        });
                    }
                    // Guard unassigned or true: the clause `g ∨ …` still has
                    // two non-false literals (or is satisfied); nothing to do.
                }
                Some(other_value) => {
                    if assigned_parity ^ other_value != rhs {
                        match guard_value {
                            // Unguarded or active: genuine conflict.
                            None | Some(Some(false)) => {
                                results.push(XorPropagation::Conflict { xref });
                            }
                            // Guard unassigned: the clause `g ∨ lits` is unit
                            // on the guard, so the guard is implied.
                            Some(None) => {
                                results.push(XorPropagation::Implied {
                                    lit: guard.expect("guard_value is Some"),
                                    xref,
                                });
                            }
                            // Guard true: constraint dormant.
                            Some(Some(true)) => {}
                        }
                    }
                }
            }
        }

        // Merge retained entries back with whatever was added concurrently
        // (watch moves from other constraints processed in this call).
        self.watches[var.index()].extend(retained);
    }

    /// Returns the reason literals for `implied` being forced by constraint
    /// `xref`: the falsified literals of every other variable of the
    /// constraint, plus the (falsified) guard literal if the constraint is
    /// guarded. Together with `implied` they form a clause entailed by the
    /// (guarded) constraint under the current assignment.
    ///
    /// When `implied` *is* the guard literal, the reason is the falsified
    /// literal of every constraint variable.
    pub(crate) fn reason_lits<F>(&self, xref: XorRef, implied: Lit, value_of: F) -> Vec<Lit>
    where
        F: Fn(Var) -> Option<bool>,
    {
        let xor = &self.xors[xref as usize];
        if xor.guard == Some(implied) {
            return xor
                .vars
                .iter()
                .map(|&v| {
                    let value = value_of(v).expect("reason variables must be assigned");
                    v.lit(!value)
                })
                .collect();
        }
        let mut lits: Vec<Lit> = xor
            .vars
            .iter()
            .filter(|&&v| v != implied.var())
            .map(|&v| {
                let value = value_of(v).expect("reason variables must be assigned");
                v.lit(!value)
            })
            .collect();
        if let Some(g) = xor.guard {
            debug_assert_eq!(
                value_of(g.var()).map(|v| g.evaluate(v)),
                Some(false),
                "a guarded constraint only implies literals while active"
            );
            lits.push(g);
        }
        lits
    }

    /// Returns the conflict literals for a violated constraint: the falsified
    /// literals of *all* of its variables, plus the (falsified) guard literal
    /// if the constraint is guarded.
    pub(crate) fn conflict_lits<F>(&self, xref: XorRef, value_of: F) -> Vec<Lit>
    where
        F: Fn(Var) -> Option<bool>,
    {
        let xor = &self.xors[xref as usize];
        let mut lits: Vec<Lit> = xor
            .vars
            .iter()
            .map(|&v| {
                let value = value_of(v).expect("conflict variables must be assigned");
                v.lit(!value)
            })
            .collect();
        if let Some(g) = xor.guard {
            lits.push(g);
        }
        lits
    }

    /// Retires every constraint guarded by `guard_var`: the constraints stop
    /// propagating, their memory is released, and their slots are reused by
    /// later `add` calls. Returns the number of constraints retired.
    ///
    /// Watch entries of the retired constraints are purged exhaustively: a
    /// slot handed back out by a later `add` must never be resolved through
    /// a stale entry left behind for its previous occupant. An entry for a
    /// constraint is only ever pushed onto the lists of the constraint's
    /// own variables and its guard (see `add`, `position_watches` and
    /// `on_assign`), so sweeping exactly those lists covers every possible
    /// stale entry — including ones whose watch slot no longer points at
    /// them — without walking the whole engine.
    pub(crate) fn retire(&mut self, guard_var: Var) -> usize {
        let Some(refs) = self.by_guard.remove(&(guard_var.index() as u32)) else {
            return 0;
        };
        for &xref in &refs {
            let xor = &mut self.xors[xref as usize];
            debug_assert!(!xor.retired, "constraint retired twice");
            xor.retired = true;
            for v in std::mem::take(&mut xor.vars) {
                self.watches[v.index()].retain(|&x| x != xref);
            }
        }
        self.watches[guard_var.index()].retain(|x| !refs.contains(x));
        self.free.extend(refs.iter().copied());
        refs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn value_fn(map: &HashMap<Var, bool>) -> impl Fn(Var) -> Option<bool> + '_ {
        move |v| map.get(&v).copied()
    }

    #[test]
    fn add_classifies_degenerate_constraints() {
        let mut engine = XorEngine::new(4);
        assert_eq!(
            engine.add(&XorClause::new([], false), None),
            AddXor::Tautology
        );
        assert_eq!(
            engine.add(&XorClause::new([], true), None),
            AddXor::Unsatisfiable
        );
        assert_eq!(
            engine.add(&XorClause::new([Var::new(2)], true), None),
            AddXor::Unit(Var::new(2), true)
        );
        assert!(matches!(
            engine.add(&XorClause::from_dimacs([1, 2], true), None),
            AddXor::Stored(_)
        ));
    }

    #[test]
    fn watch_moves_to_unassigned_variable() {
        let mut engine = XorEngine::new(4);
        engine.add(&XorClause::from_dimacs([1, 2, 3], true), None);
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert!(
            results.is_empty(),
            "two unassigned vars remain, no implication"
        );
    }

    #[test]
    fn propagates_last_unassigned_variable() {
        let mut engine = XorEngine::new(4);
        engine.add(&XorClause::from_dimacs([1, 2, 3], true), None);
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        results.clear();

        assigned.insert(Var::from_dimacs(3), true);
        engine.on_assign(Var::from_dimacs(3), value_fn(&assigned), &mut results);
        // x1 ⊕ x2 ⊕ x3 = 1 with x1 = x3 = 1 forces x2 = 1.
        assert_eq!(results.len(), 1);
        match &results[0] {
            XorPropagation::Implied { lit, .. } => {
                assert_eq!(*lit, Var::from_dimacs(2).positive());
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn detects_conflict_when_fully_assigned() {
        let mut engine = XorEngine::new(3);
        engine.add(&XorClause::from_dimacs([1, 2], true), None);
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        results.clear();
        // Now assign x2 = 1 (violating x1 ⊕ x2 = 1).
        assigned.insert(Var::from_dimacs(2), true);
        engine.on_assign(Var::from_dimacs(2), value_fn(&assigned), &mut results);
        assert!(matches!(results[0], XorPropagation::Conflict { .. }));
    }

    #[test]
    fn reason_lits_are_falsified_other_literals() {
        let mut engine = XorEngine::new(4);
        let xref = match engine.add(&XorClause::from_dimacs([1, 2, 3], false), None) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        assigned.insert(Var::from_dimacs(3), false);
        // x1 ⊕ x2 ⊕ x3 = 0 with x1=1, x3=0 forces x2=1.
        let implied = Var::from_dimacs(2).positive();
        let reason = engine.reason_lits(xref, implied, value_fn(&assigned));
        // Reason literals: ¬x1 (false) and x3 (false) — both currently false.
        assert_eq!(reason.len(), 2);
        assert!(reason.contains(&Var::from_dimacs(1).negative()));
        assert!(reason.contains(&Var::from_dimacs(3).positive()));
    }

    #[test]
    fn conflict_lits_cover_every_variable() {
        let mut engine = XorEngine::new(3);
        let xref = match engine.add(&XorClause::from_dimacs([1, 2], true), None) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), false);
        assigned.insert(Var::from_dimacs(2), false);
        let lits = engine.conflict_lits(xref, value_fn(&assigned));
        assert_eq!(lits.len(), 2);
        // Both variables are false, so the falsified literals are positive.
        assert!(lits.contains(&Var::from_dimacs(1).positive()));
        assert!(lits.contains(&Var::from_dimacs(2).positive()));
    }

    #[test]
    fn dormant_guarded_constraint_does_not_propagate() {
        let mut engine = XorEngine::new(4);
        let guard = Var::new(3).positive();
        engine.add(&XorClause::from_dimacs([1, 2], true), Some(guard));
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        // Guard unassigned: x2 would be implied were the constraint active,
        // but the clause g ∨ … still has two non-false literals.
        assert!(results.is_empty());
    }

    #[test]
    fn activating_a_guard_fires_pending_implications() {
        let mut engine = XorEngine::new(4);
        let guard = Var::new(3).positive();
        let xref = match engine.add(&XorClause::from_dimacs([1, 2], true), Some(guard)) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
        // Assume ¬g: the constraint activates and implies x2 = 0.
        assigned.insert(Var::new(3), false);
        engine.on_assign(Var::new(3), value_fn(&assigned), &mut results);
        assert_eq!(
            results,
            vec![XorPropagation::Implied {
                lit: Var::from_dimacs(2).negative(),
                xref
            }]
        );
        // The reason for the implication includes the guard literal.
        let reason = engine.reason_lits(xref, Var::from_dimacs(2).negative(), value_fn(&assigned));
        assert!(reason.contains(&guard));
    }

    #[test]
    fn violated_guarded_constraint_implies_its_guard() {
        let mut engine = XorEngine::new(4);
        let guard = Var::new(3).positive();
        let xref = match engine.add(&XorClause::from_dimacs([1, 2], true), Some(guard)) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        results.clear();
        // x1 = x2 = 1 violates the parity; with g unassigned the clause
        // g ∨ lits is unit on the guard.
        assigned.insert(Var::from_dimacs(2), true);
        engine.on_assign(Var::from_dimacs(2), value_fn(&assigned), &mut results);
        assert_eq!(results, vec![XorPropagation::Implied { lit: guard, xref }]);
        let reason = engine.reason_lits(xref, guard, value_fn(&assigned));
        assert_eq!(reason.len(), 2);
    }

    #[test]
    fn retirement_silences_and_reuses_slots() {
        let mut engine = XorEngine::new(5);
        let guard = Var::new(4).positive();
        let xref = match engine.add(&XorClause::from_dimacs([1, 2, 3], true), Some(guard)) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(engine.retire(Var::new(4)), 1);
        // Retired constraints no longer propagate.
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        assigned.insert(Var::from_dimacs(2), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        engine.on_assign(Var::from_dimacs(2), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
        // The slot is reused by the next add.
        let reused = match engine.add(&XorClause::from_dimacs([1, 2], false), None) {
            AddXor::Stored(x) => x,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reused, xref);
    }

    #[test]
    fn slot_reuse_after_watch_moves_does_not_inherit_stale_watches() {
        // Regression test: drive a guarded constraint's watches around the
        // variable set, retire it, and reuse its slot for a constraint over
        // the *same* variables. No watch entry of the old constraint may
        // survive to fire (or double-fire) against the new occupant.
        let mut engine = XorEngine::new(6);
        let guard = Var::new(5).positive();
        let xref = match engine.add(&XorClause::from_dimacs([1, 2, 3, 4], true), Some(guard)) {
            AddXor::Stored(x) => x,
            other => panic!("unexpected {other:?}"),
        };
        // Move one watch off x1 by assigning it.
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert!(results.is_empty());

        // Retire (with the moved watches still in place) and re-add over
        // the same variables, reusing the slot.
        assert_eq!(engine.retire(Var::new(5)), 1);
        let reused = match engine.add(&XorClause::from_dimacs([1, 2], false), None) {
            AddXor::Stored(x) => x,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reused, xref, "slot must be reused");

        // Unassign everything and drive the new constraint: x1 = 1 forces
        // x2 = 1 (parity 0). The old 4-variable constraint must contribute
        // nothing — in particular no event from x3/x4 watch lists.
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert_eq!(
            results,
            vec![XorPropagation::Implied {
                lit: Var::from_dimacs(2).positive(),
                xref: reused
            }]
        );
        results.clear();
        assigned.insert(Var::from_dimacs(3), false);
        assigned.insert(Var::from_dimacs(4), false);
        engine.on_assign(Var::from_dimacs(3), value_fn(&assigned), &mut results);
        engine.on_assign(Var::from_dimacs(4), value_fn(&assigned), &mut results);
        assert!(results.is_empty(), "stale refs fired: {results:?}");
    }

    #[test]
    fn add_grows_watch_lists_for_variables_beyond_construction_bound() {
        // Regression test: a guard variable allocated mid-run can exceed the
        // engine's construction-time variable count; `add` must grow the
        // watch lists instead of indexing out of bounds.
        let mut engine = XorEngine::new(2);
        let guard = Var::new(7).positive();
        let xref = match engine.add(&XorClause::from_dimacs([1, 2], true), Some(guard)) {
            AddXor::Stored(x) => x,
            other => panic!("unexpected {other:?}"),
        };
        // Activating the guard propagates through the grown lists.
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert!(results.is_empty());
        assigned.insert(Var::new(7), false);
        engine.on_assign(Var::new(7), value_fn(&assigned), &mut results);
        assert_eq!(
            results,
            vec![XorPropagation::Implied {
                lit: Var::from_dimacs(2).negative(),
                xref
            }]
        );
        // Retirement across the grown range works too.
        assert_eq!(engine.retire(Var::new(7)), 1);
    }

    #[test]
    fn add_grows_watch_lists_for_constraint_variables_too() {
        let mut engine = XorEngine::new(1);
        assert!(matches!(
            engine.add(&XorClause::from_dimacs([5, 9], true), None),
            AddXor::Stored(_)
        ));
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(5), false);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(5), value_fn(&assigned), &mut results);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn position_watches_prefers_unassigned_variables() {
        let mut engine = XorEngine::new(5);
        let xref = match engine.add(&XorClause::from_dimacs([1, 2, 3, 4], true), None) {
            AddXor::Stored(x) => x,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        assigned.insert(Var::from_dimacs(2), false);
        engine.position_watches(xref, value_fn(&assigned));
        // Watches moved off the assigned vars 1 and 2 onto 3 and 4: assigning
        // 3 now triggers an event that finds no replacement and implies 4.
        assigned.insert(Var::from_dimacs(3), false);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(3), value_fn(&assigned), &mut results);
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0],
            XorPropagation::Implied { lit, .. } if lit.var() == Var::from_dimacs(4)
        ));
    }
}
