//! Watched-variable propagation for xor constraints.
//!
//! Each xor constraint `v_1 ⊕ … ⊕ v_k = rhs` watches two of its variables.
//! When a watched variable is assigned, the engine tries to move the watch to
//! another unassigned variable; if none exists the constraint has at most one
//! unassigned variable left, so it either implies a value for that variable
//! or — if everything is assigned — is checked for consistency.
//!
//! Because xor constraints are polarity-symmetric, watch lists are indexed by
//! *variable*, not by literal. Reason and conflict clauses are generated
//! lazily from the current assignment (the disjunction of the falsified
//! literals of the other variables), which lets xor constraints participate
//! in standard first-UIP conflict analysis without being expanded to CNF.

use unigen_cnf::{Lit, Var, XorClause};

/// Index of an xor constraint inside the [`XorEngine`].
pub(crate) type XorRef = u32;

/// Outcome of propagating an assignment through the xor constraints that
/// watch the assigned variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum XorPropagation {
    /// The constraint forces `lit` to be true.
    Implied {
        /// The implied literal.
        lit: Lit,
        /// The constraint that implies it.
        xref: XorRef,
    },
    /// The constraint is violated by the current (total on its variables)
    /// assignment.
    Conflict {
        /// The violated constraint.
        xref: XorRef,
    },
}

/// A stored xor constraint.
#[derive(Debug, Clone)]
pub(crate) struct StoredXor {
    vars: Vec<Var>,
    rhs: bool,
    /// Indices (into `vars`) of the two watched variables.
    watch: [usize; 2],
}

/// The xor constraint store plus per-variable watch lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct XorEngine {
    xors: Vec<StoredXor>,
    /// `watches[var.index()]` lists the constraints watching `var`.
    watches: Vec<Vec<XorRef>>,
}

/// Result of adding an xor constraint to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AddXor {
    /// Constraint stored and watched normally.
    Stored(XorRef),
    /// The constraint reduces to a unit assignment `var = value`.
    Unit(Var, bool),
    /// The constraint is trivially satisfied (empty, rhs = 0).
    Tautology,
    /// The constraint is trivially unsatisfiable (empty, rhs = 1).
    Unsatisfiable,
}

impl XorEngine {
    pub(crate) fn new(num_vars: usize) -> Self {
        XorEngine {
            xors: Vec::new(),
            watches: vec![Vec::new(); num_vars],
        }
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.watches.len() < num_vars {
            self.watches.resize(num_vars, Vec::new());
        }
    }

    /// Adds a normalised xor constraint.
    pub(crate) fn add(&mut self, xor: &XorClause) -> AddXor {
        match xor.len() {
            0 => {
                if xor.rhs() {
                    AddXor::Unsatisfiable
                } else {
                    AddXor::Tautology
                }
            }
            1 => AddXor::Unit(xor.vars()[0], xor.rhs()),
            _ => {
                let xref = self.xors.len() as XorRef;
                let vars = xor.vars().to_vec();
                self.watches[vars[0].index()].push(xref);
                self.watches[vars[1].index()].push(xref);
                self.xors.push(StoredXor {
                    vars,
                    rhs: xor.rhs(),
                    watch: [0, 1],
                });
                AddXor::Stored(xref)
            }
        }
    }

    /// Processes the assignment of `var`, updating watches and reporting any
    /// implication or conflict discovered.
    ///
    /// `value_of` must report the current partial assignment. At most one
    /// implication/conflict is returned per call per constraint; the caller
    /// enqueues implied literals and calls back in for subsequently assigned
    /// variables, exactly as with CNF watch lists.
    pub(crate) fn on_assign<F>(&mut self, var: Var, value_of: F, results: &mut Vec<XorPropagation>)
    where
        F: Fn(Var) -> Option<bool>,
    {
        let watching = std::mem::take(&mut self.watches[var.index()]);
        let mut retained: Vec<XorRef> = Vec::with_capacity(watching.len());

        for xref in watching {
            let xor = &mut self.xors[xref as usize];
            // Which watch slot does `var` occupy?
            let slot = if xor.vars[xor.watch[0]] == var {
                0
            } else if xor.vars[xor.watch[1]] == var {
                1
            } else {
                // Stale entry (watch was moved elsewhere); drop it.
                continue;
            };
            let other_slot = 1 - slot;
            let other_var = xor.vars[xor.watch[other_slot]];

            // Try to move this watch to an unassigned, unwatched variable.
            let replacement = xor
                .vars
                .iter()
                .enumerate()
                .find(|&(i, &v)| {
                    i != xor.watch[other_slot] && i != xor.watch[slot] && value_of(v).is_none()
                })
                .map(|(i, _)| i);

            if let Some(new_index) = replacement {
                let new_var = xor.vars[new_index];
                xor.watch[slot] = new_index;
                self.watches[new_var.index()].push(xref);
                // Do not retain: the watch has moved away from `var`.
                continue;
            }

            // No replacement: every variable except possibly `other_var` is
            // assigned. Keep watching `var` so the constraint is revisited
            // after backtracking.
            retained.push(xref);

            let assigned_parity = xor
                .vars
                .iter()
                .filter(|&&v| v != other_var)
                .fold(false, |acc, &v| {
                    acc ^ value_of(v).expect("all non-other variables are assigned")
                });

            match value_of(other_var) {
                None => {
                    let implied_value = xor.rhs ^ assigned_parity;
                    results.push(XorPropagation::Implied {
                        lit: other_var.lit(implied_value),
                        xref,
                    });
                }
                Some(other_value) => {
                    if assigned_parity ^ other_value != xor.rhs {
                        results.push(XorPropagation::Conflict { xref });
                    }
                }
            }
        }

        // Merge retained entries back with whatever was added concurrently
        // (watch moves from other constraints processed in this call).
        self.watches[var.index()].extend(retained);
    }

    /// Returns the reason literals for `implied` being forced by constraint
    /// `xref`: the falsified literals of every other variable of the
    /// constraint. Together with `implied` they form a clause entailed by the
    /// constraint under the current assignment.
    pub(crate) fn reason_lits<F>(&self, xref: XorRef, implied: Lit, value_of: F) -> Vec<Lit>
    where
        F: Fn(Var) -> Option<bool>,
    {
        self.xors[xref as usize]
            .vars
            .iter()
            .filter(|&&v| v != implied.var())
            .map(|&v| {
                let value = value_of(v).expect("reason variables must be assigned");
                v.lit(!value)
            })
            .collect()
    }

    /// Returns the conflict literals for a violated constraint: the falsified
    /// literals of *all* of its variables.
    pub(crate) fn conflict_lits<F>(&self, xref: XorRef, value_of: F) -> Vec<Lit>
    where
        F: Fn(Var) -> Option<bool>,
    {
        self.xors[xref as usize]
            .vars
            .iter()
            .map(|&v| {
                let value = value_of(v).expect("conflict variables must be assigned");
                v.lit(!value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn value_fn(map: &HashMap<Var, bool>) -> impl Fn(Var) -> Option<bool> + '_ {
        move |v| map.get(&v).copied()
    }

    #[test]
    fn add_classifies_degenerate_constraints() {
        let mut engine = XorEngine::new(4);
        assert_eq!(engine.add(&XorClause::new([], false)), AddXor::Tautology);
        assert_eq!(engine.add(&XorClause::new([], true)), AddXor::Unsatisfiable);
        assert_eq!(
            engine.add(&XorClause::new([Var::new(2)], true)),
            AddXor::Unit(Var::new(2), true)
        );
        assert!(matches!(
            engine.add(&XorClause::from_dimacs([1, 2], true)),
            AddXor::Stored(_)
        ));
    }

    #[test]
    fn watch_moves_to_unassigned_variable() {
        let mut engine = XorEngine::new(4);
        engine.add(&XorClause::from_dimacs([1, 2, 3], true));
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        assert!(
            results.is_empty(),
            "two unassigned vars remain, no implication"
        );
    }

    #[test]
    fn propagates_last_unassigned_variable() {
        let mut engine = XorEngine::new(4);
        engine.add(&XorClause::from_dimacs([1, 2, 3], true));
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        results.clear();

        assigned.insert(Var::from_dimacs(3), true);
        engine.on_assign(Var::from_dimacs(3), value_fn(&assigned), &mut results);
        // x1 ⊕ x2 ⊕ x3 = 1 with x1 = x3 = 1 forces x2 = 1.
        assert_eq!(results.len(), 1);
        match &results[0] {
            XorPropagation::Implied { lit, .. } => {
                assert_eq!(*lit, Var::from_dimacs(2).positive());
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn detects_conflict_when_fully_assigned() {
        let mut engine = XorEngine::new(3);
        engine.add(&XorClause::from_dimacs([1, 2], true));
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        let mut results = Vec::new();
        engine.on_assign(Var::from_dimacs(1), value_fn(&assigned), &mut results);
        results.clear();
        // Now assign x2 = 1 (violating x1 ⊕ x2 = 1).
        assigned.insert(Var::from_dimacs(2), true);
        engine.on_assign(Var::from_dimacs(2), value_fn(&assigned), &mut results);
        assert!(matches!(results[0], XorPropagation::Conflict { .. }));
    }

    #[test]
    fn reason_lits_are_falsified_other_literals() {
        let mut engine = XorEngine::new(4);
        let xref = match engine.add(&XorClause::from_dimacs([1, 2, 3], false)) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), true);
        assigned.insert(Var::from_dimacs(3), false);
        // x1 ⊕ x2 ⊕ x3 = 0 with x1=1, x3=0 forces x2=1.
        let implied = Var::from_dimacs(2).positive();
        let reason = engine.reason_lits(xref, implied, value_fn(&assigned));
        // Reason literals: ¬x1 (false) and x3 (false) — both currently false.
        assert_eq!(reason.len(), 2);
        assert!(reason.contains(&Var::from_dimacs(1).negative()));
        assert!(reason.contains(&Var::from_dimacs(3).positive()));
    }

    #[test]
    fn conflict_lits_cover_every_variable() {
        let mut engine = XorEngine::new(3);
        let xref = match engine.add(&XorClause::from_dimacs([1, 2], true)) {
            AddXor::Stored(xref) => xref,
            other => panic!("unexpected {other:?}"),
        };
        let mut assigned = HashMap::new();
        assigned.insert(Var::from_dimacs(1), false);
        assigned.insert(Var::from_dimacs(2), false);
        let lits = engine.conflict_lits(xref, value_fn(&assigned));
        assert_eq!(lits.len(), 2);
        // Both variables are false, so the falsified literals are positive.
        assert!(lits.contains(&Var::from_dimacs(1).positive()));
        assert!(lits.contains(&Var::from_dimacs(2).positive()));
    }
}
