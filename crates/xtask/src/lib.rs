//! Source-level repo lints, in the `cargo xtask` tradition (a workspace
//! binary instead of an external tool — nothing to install, versioned
//! with the code it checks).
//!
//! `cargo run -p xtask -- lint` walks the workspace sources and enforces
//! three rules that `rustc`/`clippy` cannot express:
//!
//! * **`std-sync`** — `std::sync::{Mutex, Condvar}` and
//!   `std::thread::spawn` are forbidden outside `crates/conc`: every
//!   concurrent component must build on the `conc` abstraction layer so
//!   the model checker can explore it. (Atomics are allowed — they pass
//!   through `conc::atomic` by convention, but a raw atomic cannot hide a
//!   blocking protocol from the checker.)
//! * **`wall-clock`** — `Instant::now` / `SystemTime` are forbidden
//!   outside the solver budget's wall-clock path and bench code: the
//!   bit-identity contract (PR 4/7) requires that no sampling decision
//!   ever branches on real time.
//! * **`no-unwrap`** — `.unwrap()` / `.expect(` are forbidden in library
//!   code (test modules, `tests/`, and binaries are exempt): library
//!   errors must flow through the typed error enums.
//!
//! Pre-existing violations are grandfathered in the repo-root
//! `lint-allow.txt` (format: `<rule> <path>` per line, `#` comments).
//! The allowlist is debt, not license — new files should not be added.
//!
//! The scanner is deliberately line-based (no syn, no parsing): it strips
//! `//` comments, skips `#[cfg(test)]` modules by brace counting, and
//! matches substrings. That misses pathological encodings (a forbidden
//! path split across lines) and that is fine — the lint exists to catch
//! honest drift, and the real enforcement for the sync layer is that
//! model-checked tests only exercise `conc` types.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in the order they are applied.
pub const RULES: [&str; 3] = ["std-sync", "wall-clock", "no-unwrap"];

/// A single lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

/// Entry point for the `xtask` binary. Returns the process exit code.
pub fn run(mut args: impl Iterator<Item = String>) -> i32 {
    match args.next().as_deref() {
        Some("lint") => match lint_workspace() {
            Ok(violations) => {
                if violations.is_empty() {
                    println!("xtask lint: clean");
                    0
                } else {
                    for v in &violations {
                        println!("{v}");
                    }
                    println!(
                        "xtask lint: {} violation(s); fix them or (for pre-existing debt only) \
                         add `<rule> <path>` to lint-allow.txt",
                        violations.len()
                    );
                    1
                }
            }
            Err(e) => {
                eprintln!("xtask lint: error: {e}");
                2
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            2
        }
    }
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when run via
/// cargo, the current directory otherwise.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Lints every tracked source tree under the workspace root and filters
/// the result through `lint-allow.txt`.
pub fn lint_workspace() -> Result<Vec<Violation>, String> {
    let root = workspace_root();
    let allow = load_allowlist(&root.join("lint-allow.txt"))?;
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        violations.extend(
            lint_source(&rel, &content)
                .into_iter()
                .filter(|v| !allow.contains(&(v.rule.to_string(), v.path.clone()))),
        );
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses `lint-allow.txt`: one `<rule> <path>` pair per line.
fn load_allowlist(path: &Path) -> Result<BTreeSet<(String, String)>, String> {
    let mut allow = BTreeSet::new();
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(allow),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    for (no, line) in content.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), None) if RULES.contains(&rule) => {
                allow.insert((rule.to_string(), path.to_string()));
            }
            _ => {
                return Err(format!(
                    "lint-allow.txt:{}: expected `<rule> <path>` with rule in {RULES:?}",
                    no + 1
                ));
            }
        }
    }
    Ok(allow)
}

/// Which rules apply to a workspace-relative path. The infrastructure
/// crates are exempt wholesale: `crates/conc` *is* the sanctioned home of
/// raw `std::sync`, `crates/xtask` is the linter itself (its sources
/// contain every forbidden token as a pattern), and `vendor/` is
/// third-party stand-in code.
fn applicable_rules(path: &str) -> Vec<&'static str> {
    if path.starts_with("vendor/")
        || path.starts_with("crates/conc/")
        || path.starts_with("crates/xtask/")
    {
        return Vec::new();
    }
    let mut rules = vec!["std-sync"];
    let is_bench = path.starts_with("crates/bench/") || path.contains("/benches/");
    if !is_bench {
        rules.push("wall-clock");
    }
    // Library code only: crate and root `src/` trees, minus binaries.
    let in_lib = (path.contains("/src/") || path.starts_with("src/"))
        && !path.ends_with("/main.rs")
        && !path.contains("/bin/");
    if in_lib && !is_bench {
        rules.push("no-unwrap");
    }
    rules
}

/// Lints one file's contents. Exposed (rather than only the directory
/// walk) so the self-tests can feed synthetic sources through the exact
/// production code path.
pub fn lint_source(path: &str, content: &str) -> Vec<Violation> {
    let rules = applicable_rules(path);
    if rules.is_empty() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    // Brace-counted skip state for `#[cfg(test)] mod …` blocks.
    let mut pending_cfg_test = false;
    let mut skip_depth: Option<i64> = None;
    for (idx, raw) in content.lines().enumerate() {
        let code = raw.split("//").next().unwrap_or("").trim_end();
        let trimmed = code.trim_start();
        if let Some(depth) = skip_depth.as_mut() {
            *depth += brace_delta(code);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") || trimmed.is_empty() {
                // Further attributes between the cfg and the item.
                continue;
            }
            pending_cfg_test = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                let depth = brace_delta(code);
                if depth > 0 {
                    skip_depth = Some(depth);
                }
                // `mod foo;` (depth 0) refers to a file that is linted —
                // or rather skipped — on its own merits.
                continue;
            }
            // `#[cfg(test)]` on a non-module item (helper fn, import):
            // test-only too, but without braces tracked we only skip the
            // single item line. Good enough for this codebase's idiom.
            continue;
        }
        for rule in &rules {
            if let Some(hit) = match_rule(rule, trimmed) {
                violations.push(Violation {
                    rule,
                    path: path.to_string(),
                    line: idx + 1,
                    text: hit,
                });
            }
        }
    }
    violations
}

fn brace_delta(code: &str) -> i64 {
    let mut delta = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

fn match_rule(rule: &str, code: &str) -> Option<String> {
    let hit =
        |needle: &str| -> Option<String> { code.contains(needle).then(|| code.trim().to_string()) };
    match rule {
        "std-sync" => {
            if code.starts_with("use std::sync")
                && (code.contains("Mutex") || code.contains("Condvar"))
            {
                return Some(code.trim().to_string());
            }
            if code.starts_with("use std::thread") && code.contains("spawn") {
                return Some(code.trim().to_string());
            }
            hit("std::sync::Mutex")
                .or_else(|| hit("std::sync::Condvar"))
                .or_else(|| hit("std::thread::spawn"))
        }
        "wall-clock" => hit("Instant::now").or_else(|| hit("SystemTime")),
        "no-unwrap" => hit(".unwrap()").or_else(|| hit(".expect(")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_std_sync_in_library_code() {
        let src = "use std::sync::{Arc, Mutex};\nfn f() { let _ = std::sync::Condvar::new(); }\n";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["std-sync", "std-sync"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn flags_std_thread_spawn_but_not_conc_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); conc::thread::spawn(|| {}); }\n";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["std-sync"]);
        let clean = lint_source(
            "crates/core/src/service.rs",
            "fn f() { conc::thread::spawn(|| {}); }\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn conc_xtask_and_vendor_are_exempt() {
        let src = "use std::sync::Mutex;\nfn f() { x.unwrap(); Instant::now(); }\n";
        assert!(lint_source("crates/conc/src/rt.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/lib.rs", src).is_empty());
        assert!(lint_source("vendor/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/unigen.rs", src)),
            vec!["wall-clock"]
        );
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/core/benches/speed.rs", src).is_empty());
    }

    #[test]
    fn flags_unwrap_in_lib_but_not_tests_or_bins() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"boom\"); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/sampler.rs", src)),
            vec!["no-unwrap", "no-unwrap"]
        );
        assert!(lint_source("crates/core/tests/service.rs", src).is_empty());
        assert!(lint_source("crates/core/src/main.rs", src).is_empty());
        assert!(lint_source("crates/core/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }\n";
        assert!(lint_source("crates/core/src/sampler.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped_by_brace_counting() {
        let src = "\
fn lib() {}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let _ = Instant::now();
        let _ = (x, Mutex::new(()));
    }
}

fn after() { tail.unwrap(); }
";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["no-unwrap"]);
        assert_eq!(v[0].line, 15, "the post-module line is still linted: {v:?}");
    }

    #[test]
    fn comments_are_stripped() {
        let src = "// std::sync::Mutex is forbidden\nfn f() {} // x.unwrap()\n";
        assert!(lint_source("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn allowlist_parses_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("xtask-allow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "# debt\nno-unwrap crates/core/src/support.rs\n").unwrap();
        let allow = load_allowlist(&good).unwrap();
        assert!(allow.contains(&(
            "no-unwrap".to_string(),
            "crates/core/src/support.rs".to_string()
        )));
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "not-a-rule crates/core/src/support.rs\n").unwrap();
        assert!(load_allowlist(&bad).is_err());
        let missing = load_allowlist(&dir.join("absent.txt")).unwrap();
        assert!(missing.is_empty());
    }

    /// The real tree must be clean — this is the same check CI runs, kept
    /// as a unit test so `cargo test` alone catches drift.
    #[test]
    fn workspace_is_clean() {
        let violations = lint_workspace().expect("lint walk failed");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
