//! Source-level repo lints and the offline proof checker runner, in the
//! `cargo xtask` tradition (a workspace binary instead of an external
//! tool — nothing to install, versioned with the code it checks).
//!
//! `cargo run -p xtask -- lint` walks the workspace sources and enforces
//! four rules that `rustc`/`clippy` cannot express:
//!
//! * **`std-sync`** — `std::sync::{Mutex, Condvar}` and
//!   `std::thread::spawn` are forbidden outside `crates/conc`: every
//!   concurrent component must build on the `conc` abstraction layer so
//!   the model checker can explore it. (Atomics are allowed — they pass
//!   through `conc::atomic` by convention, but a raw atomic cannot hide a
//!   blocking protocol from the checker.)
//! * **`wall-clock`** — `Instant::now` / `SystemTime` are forbidden
//!   outside the solver budget's wall-clock path and bench code: the
//!   bit-identity contract (PR 4/7) requires that no sampling decision
//!   ever branches on real time.
//! * **`no-unwrap`** — `.unwrap()` / `.expect(` are forbidden in library
//!   code (test modules, `tests/`, and binaries are exempt): library
//!   errors must flow through the typed error enums.
//! * **`allow-justify`** — `#[allow(…)]` attributes in library code must
//!   carry a trailing `// lint: <why>` justification: a lint opt-out with
//!   no recorded reason is indistinguishable from a shortcut.
//! * **`ffi-confined`** — `unsafe` and `extern "C"` are forbidden
//!   everywhere except `crates/net/src/sys.rs`, the one sanctioned
//!   syscall shim (epoll FFI): every other crate carries
//!   `#![forbid(unsafe_code)]`, and this rule keeps new FFI from
//!   sprouting outside the shim where it would escape that audit.
//!
//! Pre-existing violations are grandfathered in the repo-root
//! `lint-allow.txt` (format: `<rule> <path>` per line, `#` comments).
//! The allowlist is debt, not license — new files should not be added —
//! and it must stay *live* debt: an entry whose `(rule, path)` no longer
//! matches any violation is itself reported (as `stale-allow`, which
//! cannot be allowlisted), so paid-down debt leaves the list the same PR
//! that pays it.
//!
//! `cargo run -p xtask -- certify <formula.cnf> <proof.bin>` re-checks a
//! dumped enumeration proof stream (`unigen_cli --proof-dump`) against its
//! DIMACS formula using the independent `unigen-cert` checker. The DIMACS
//! parser here is deliberately its own few lines (clause lines plus
//! CryptoMiniSAT-style `x` xor lines) rather than a `unigen-cnf` import,
//! keeping the offline verification path free of the solver stack it
//! audits.
//!
//! The scanner is deliberately line-based (no syn, no parsing): it strips
//! `//` comments, skips `#[cfg(test)]` modules by brace counting, and
//! matches substrings. That misses pathological encodings (a forbidden
//! path split across lines) and that is fine — the lint exists to catch
//! honest drift, and the real enforcement for the sync layer is that
//! model-checked tests only exercise `conc` types.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in the order they are applied.
pub const RULES: [&str; 5] = [
    "std-sync",
    "wall-clock",
    "no-unwrap",
    "allow-justify",
    "ffi-confined",
];

/// A single lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

/// Entry point for the `xtask` binary. Returns the process exit code.
pub fn run(mut args: impl Iterator<Item = String>) -> i32 {
    match args.next().as_deref() {
        Some("lint") => match lint_workspace() {
            Ok(violations) => {
                if violations.is_empty() {
                    println!("xtask lint: clean");
                    0
                } else {
                    for v in &violations {
                        println!("{v}");
                    }
                    println!(
                        "xtask lint: {} violation(s); fix them or (for pre-existing debt only) \
                         add `<rule> <path>` to lint-allow.txt",
                        violations.len()
                    );
                    1
                }
            }
            Err(e) => {
                eprintln!("xtask lint: error: {e}");
                2
            }
        },
        Some("certify") => match (args.next(), args.next(), args.next()) {
            (Some(cnf), Some(proof), None) => match certify(Path::new(&cnf), Path::new(&proof)) {
                Ok(summary) => {
                    println!("xtask certify: {summary}");
                    0
                }
                Err(e) => {
                    eprintln!("xtask certify: REJECTED: {e}");
                    1
                }
            },
            _ => {
                eprintln!("usage: cargo run -p xtask -- certify <formula.cnf> <proof.bin>");
                2
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint | certify <formula.cnf> <proof.bin>>");
            2
        }
    }
}

/// Offline certification: parses `cnf` (DIMACS, with CryptoMiniSAT-style
/// `x` xor lines), checks `proof` against it with the independent
/// `unigen-cert` checker, and requires every cell certificate complete.
/// Returns a human-readable summary of what was verified.
pub fn certify(cnf: &Path, proof: &Path) -> Result<String, String> {
    let text =
        std::fs::read_to_string(cnf).map_err(|e| format!("reading {}: {e}", cnf.display()))?;
    let formula = parse_dimacs(&text)?;
    let bytes = std::fs::read(proof).map_err(|e| format!("reading {}: {e}", proof.display()))?;
    let report = unigen_cert::Checker::check(&formula, &bytes).map_err(|e| e.to_string())?;
    report.require_complete().map_err(|e| e.to_string())?;
    let exhausted = report.cells.iter().filter(|c| c.exhaustive()).count();
    let witnesses: usize = report.cells.iter().map(|c| c.witnesses.len()).sum();
    Ok(format!(
        "{} steps over {} bytes verified; {} cell(s) ({} exhausted, {} witnesses){}",
        report.steps,
        report.bytes,
        report.cells.len(),
        exhausted,
        witnesses,
        if report.refuted {
            "; final database refuted"
        } else {
            ""
        }
    ))
}

/// A minimal DIMACS reader producing the checker's formula view: `c`
/// comments, one `p cnf <vars> <clauses>` line, `0`-terminated clause
/// lines, and `x` xor lines where each negated literal flips the parity
/// (rhs starts at `true`). Counts in the problem line are advisory, as in
/// the real parsers this mirrors.
fn parse_dimacs(text: &str) -> Result<unigen_cert::Formula, String> {
    let mut formula: Option<unigen_cert::Formula> = None;
    let mut num_vars = 0u64;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |message: String| format!("line {}: {message}", no + 1);
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if formula.is_some() {
                return Err(err("duplicate problem line".to_string()));
            }
            let mut tokens = rest.split_whitespace();
            if tokens.next() != Some("cnf") {
                return Err(err("expected `p cnf <vars> <clauses>`".to_string()));
            }
            let vars: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("missing or invalid variable count".to_string()))?;
            num_vars = vars as u64;
            formula = Some(unigen_cert::Formula::new(vars));
            continue;
        }
        let Some(formula) = formula.as_mut() else {
            return Err(err("clause before the `p cnf` problem line".to_string()));
        };
        let (is_xor, body) = match line.strip_prefix('x') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits: Vec<i64> = Vec::new();
        let mut terminated = false;
        for token in body.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| err(format!("invalid literal `{token}`")))?;
            if value == 0 {
                terminated = true;
                break;
            }
            if value.unsigned_abs() > num_vars {
                return Err(err(format!("literal {value} out of range")));
            }
            lits.push(value);
        }
        if !terminated {
            return Err(err("clause is not terminated by 0".to_string()));
        }
        if is_xor {
            let mut rhs = true;
            let vars: Vec<u64> = lits
                .iter()
                .map(|&v| {
                    if v < 0 {
                        rhs = !rhs;
                    }
                    v.unsigned_abs()
                })
                .collect();
            formula.add_xor(&vars, rhs);
        } else {
            formula.add_clause(&lits);
        }
    }
    formula.ok_or_else(|| "missing `p cnf` problem line".to_string())
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when run via
/// cargo, the current directory otherwise.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Lints every tracked source tree under the workspace root and filters
/// the result through `lint-allow.txt`.
pub fn lint_workspace() -> Result<Vec<Violation>, String> {
    let root = workspace_root();
    let allow_path = root.join("lint-allow.txt");
    lint_tree(&root, &allow_path)
}

/// The full lint pass over one tree: walk, lint, filter through the
/// allowlist at `allow_path`, and report **stale** allowlist entries — a
/// `(rule, path)` that suppressed nothing is paid-down debt that must
/// leave the list. Stale entries surface as `stale-allow` violations,
/// which is not an allowlistable rule: staleness cannot grandfather
/// itself. Split from [`lint_workspace`] so the self-tests can run the
/// exact production pass over a synthetic tree.
fn lint_tree(root: &Path, allow_path: &Path) -> Result<Vec<Violation>, String> {
    let allow = load_allowlist(allow_path)?;
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        for v in lint_source(&rel, &content) {
            let key = (v.rule.to_string(), v.path.clone());
            if allow.contains_key(&key) {
                used.insert(key);
            } else {
                violations.push(v);
            }
        }
    }
    for ((rule, path), line) in &allow {
        if !used.contains(&(rule.clone(), path.clone())) {
            violations.push(Violation {
                rule: "stale-allow",
                path: "lint-allow.txt".to_string(),
                line: *line,
                text: format!("`{rule} {path}` no longer matches any violation — remove the entry"),
            });
        }
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses `lint-allow.txt`: one `<rule> <path>` pair per line, mapped to
/// the 1-based line it was declared on (for stale-entry reports).
fn load_allowlist(path: &Path) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut allow = BTreeMap::new();
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(allow),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    for (no, line) in content.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), None) if RULES.contains(&rule) => {
                allow.insert((rule.to_string(), path.to_string()), no + 1);
            }
            _ => {
                return Err(format!(
                    "lint-allow.txt:{}: expected `<rule> <path>` with rule in {RULES:?}",
                    no + 1
                ));
            }
        }
    }
    Ok(allow)
}

/// Which rules apply to a workspace-relative path. The infrastructure
/// crates are exempt wholesale: `crates/conc` *is* the sanctioned home of
/// raw `std::sync`, `crates/xtask` is the linter itself (its sources
/// contain every forbidden token as a pattern), and `vendor/` is
/// third-party stand-in code.
fn applicable_rules(path: &str) -> Vec<&'static str> {
    if path.starts_with("vendor/")
        || path.starts_with("crates/conc/")
        || path.starts_with("crates/xtask/")
    {
        return Vec::new();
    }
    let mut rules = vec!["std-sync"];
    // The epoll FFI shim is the one sanctioned home of `unsafe`; every
    // other file (library, test, or binary) must stay FFI-free.
    if path != "crates/net/src/sys.rs" {
        rules.push("ffi-confined");
    }
    let is_bench = path.starts_with("crates/bench/") || path.contains("/benches/");
    if !is_bench {
        rules.push("wall-clock");
    }
    // Library code only: crate and root `src/` trees, minus binaries.
    let in_lib = (path.contains("/src/") || path.starts_with("src/"))
        && !path.ends_with("/main.rs")
        && !path.contains("/bin/");
    if in_lib && !is_bench {
        rules.push("no-unwrap");
        rules.push("allow-justify");
    }
    rules
}

/// Lints one file's contents. Exposed (rather than only the directory
/// walk) so the self-tests can feed synthetic sources through the exact
/// production code path.
pub fn lint_source(path: &str, content: &str) -> Vec<Violation> {
    let rules = applicable_rules(path);
    if rules.is_empty() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    // Brace-counted skip state for `#[cfg(test)] mod …` blocks.
    let mut pending_cfg_test = false;
    let mut skip_depth: Option<i64> = None;
    for (idx, raw) in content.lines().enumerate() {
        let code = raw.split("//").next().unwrap_or("").trim_end();
        let trimmed = code.trim_start();
        if let Some(depth) = skip_depth.as_mut() {
            *depth += brace_delta(code);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") || trimmed.is_empty() {
                // Further attributes between the cfg and the item.
                continue;
            }
            pending_cfg_test = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                let depth = brace_delta(code);
                if depth > 0 {
                    skip_depth = Some(depth);
                }
                // `mod foo;` (depth 0) refers to a file that is linted —
                // or rather skipped — on its own merits.
                continue;
            }
            // `#[cfg(test)]` on a non-module item (helper fn, import):
            // test-only too, but without braces tracked we only skip the
            // single item line. Good enough for this codebase's idiom.
            continue;
        }
        for rule in &rules {
            if let Some(hit) = match_rule(rule, trimmed, raw) {
                violations.push(Violation {
                    rule,
                    path: path.to_string(),
                    line: idx + 1,
                    text: hit,
                });
            }
        }
    }
    violations
}

fn brace_delta(code: &str) -> i64 {
    let mut delta = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Matches one rule against a line: `code` is the comment-stripped view
/// most rules scan, `raw` the original line — `allow-justify` needs the
/// comment back, because the justification *is* a comment.
fn match_rule(rule: &str, code: &str, raw: &str) -> Option<String> {
    let hit =
        |needle: &str| -> Option<String> { code.contains(needle).then(|| code.trim().to_string()) };
    match rule {
        "allow-justify" => {
            if (code.contains("#[allow(") || code.contains("#![allow("))
                && !raw
                    .split_once("//")
                    .is_some_and(|(_, comment)| comment.trim_start().starts_with("lint:"))
            {
                return Some(code.trim().to_string());
            }
            None
        }
        "std-sync" => {
            if code.starts_with("use std::sync")
                && (code.contains("Mutex") || code.contains("Condvar"))
            {
                return Some(code.trim().to_string());
            }
            if code.starts_with("use std::thread") && code.contains("spawn") {
                return Some(code.trim().to_string());
            }
            hit("std::sync::Mutex")
                .or_else(|| hit("std::sync::Condvar"))
                .or_else(|| hit("std::thread::spawn"))
        }
        "wall-clock" => hit("Instant::now").or_else(|| hit("SystemTime")),
        "no-unwrap" => hit(".unwrap()").or_else(|| hit(".expect(")),
        "ffi-confined" => {
            // `unsafe_code` is the *ban* on unsafe (`#![forbid(unsafe_code)]`),
            // not a use of it.
            if code.contains("unsafe") && !code.contains("unsafe_code") {
                return Some(code.trim().to_string());
            }
            hit("extern \"C\"")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_std_sync_in_library_code() {
        let src = "use std::sync::{Arc, Mutex};\nfn f() { let _ = std::sync::Condvar::new(); }\n";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["std-sync", "std-sync"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn flags_std_thread_spawn_but_not_conc_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); conc::thread::spawn(|| {}); }\n";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["std-sync"]);
        let clean = lint_source(
            "crates/core/src/service.rs",
            "fn f() { conc::thread::spawn(|| {}); }\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn conc_xtask_and_vendor_are_exempt() {
        let src = "use std::sync::Mutex;\nfn f() { x.unwrap(); Instant::now(); }\n";
        assert!(lint_source("crates/conc/src/rt.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/lib.rs", src).is_empty());
        assert!(lint_source("vendor/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_unsafe_and_extern_c_outside_the_syscall_shim() {
        let src =
            "fn f() { unsafe { libc_call() }; }\nextern \"C\" { fn close(fd: i32) -> i32; }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/service.rs", src)),
            vec!["ffi-confined", "ffi-confined"]
        );
        // Tests and binaries are covered too: FFI is confined, not
        // merely discouraged in library code.
        assert_eq!(
            rules_of(&lint_source("crates/net/tests/model_conn.rs", src)),
            vec!["ffi-confined", "ffi-confined"]
        );
        // The shim itself is the sanctioned home.
        assert!(lint_source("crates/net/src/sys.rs", src).is_empty());
        // The *ban* on unsafe is not a use of it.
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(lint_source("crates/core/src/lib.rs", forbid).is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/unigen.rs", src)),
            vec!["wall-clock"]
        );
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/core/benches/speed.rs", src).is_empty());
    }

    #[test]
    fn flags_unwrap_in_lib_but_not_tests_or_bins() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"boom\"); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/sampler.rs", src)),
            vec!["no-unwrap", "no-unwrap"]
        );
        assert!(lint_source("crates/core/tests/service.rs", src).is_empty());
        assert!(lint_source("crates/core/src/main.rs", src).is_empty());
        assert!(lint_source("crates/core/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }\n";
        assert!(lint_source("crates/core/src/sampler.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped_by_brace_counting() {
        let src = "\
fn lib() {}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let _ = Instant::now();
        let _ = (x, Mutex::new(()));
    }
}

fn after() { tail.unwrap(); }
";
        let v = lint_source("crates/core/src/service.rs", src);
        assert_eq!(rules_of(&v), vec!["no-unwrap"]);
        assert_eq!(v[0].line, 15, "the post-module line is still linted: {v:?}");
    }

    #[test]
    fn comments_are_stripped() {
        let src = "// std::sync::Mutex is forbidden\nfn f() {} // x.unwrap()\n";
        assert!(lint_source("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn allowlist_parses_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("xtask-allow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "# debt\nno-unwrap crates/core/src/support.rs\n").unwrap();
        let allow = load_allowlist(&good).unwrap();
        assert_eq!(
            allow.get(&(
                "no-unwrap".to_string(),
                "crates/core/src/support.rs".to_string()
            )),
            Some(&2),
            "entries carry their declaration line"
        );
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "not-a-rule crates/core/src/support.rs\n").unwrap();
        assert!(load_allowlist(&bad).is_err());
        let missing = load_allowlist(&dir.join("absent.txt")).unwrap();
        assert!(missing.is_empty());
    }

    #[test]
    fn flags_unjustified_allow_in_lib_only() {
        let src = "#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        let v = lint_source("crates/core/src/sampler.rs", src);
        assert_eq!(rules_of(&v), vec!["allow-justify"]);
        assert_eq!(v[0].line, 1);
        // A trailing `// lint:` justification satisfies the rule.
        let justified =
            "#[allow(clippy::too_many_arguments)] // lint: mirrors the paper's signature\nfn f() {}\n";
        assert!(lint_source("crates/core/src/sampler.rs", justified).is_empty());
        // Tests, binaries and bench code are out of scope.
        assert!(lint_source("crates/core/tests/service.rs", src).is_empty());
        assert!(lint_source("crates/core/src/bin/tool.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        // Inner attributes are covered too.
        let inner = "#![allow(dead_code)]\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/sampler.rs", inner)),
            vec!["allow-justify"]
        );
    }

    /// End-to-end stale-entry self-test: a synthetic tree with one real
    /// violation, an allowlist entry covering it (live), and one covering
    /// nothing (stale) — run through the exact production pass.
    #[test]
    fn stale_allowlist_entries_are_violations() {
        let root = std::env::temp_dir().join(format!("xtask-stale-{}", std::process::id()));
        let src_dir = root.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(src_dir.join("lib.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        let allow = root.join("allow.txt");
        std::fs::write(
            &allow,
            "no-unwrap src/lib.rs\nwall-clock src/lib.rs # nothing to suppress\n",
        )
        .unwrap();
        let violations = lint_tree(&root, &allow).unwrap();
        assert_eq!(rules_of(&violations), vec!["stale-allow"], "{violations:?}");
        assert_eq!(violations[0].line, 2, "points at the stale entry's line");
        assert!(violations[0].text.contains("wall-clock src/lib.rs"));
        // Removing the stale entry makes the pass clean.
        std::fs::write(&allow, "no-unwrap src/lib.rs\n").unwrap();
        assert!(lint_tree(&root, &allow).unwrap().is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn certify_round_trips_a_dimacs_formula() {
        let f = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\nx1 2 0\n").unwrap();
        assert_eq!((f.num_vars(), f.num_clauses(), f.num_xors()), (3, 1, 1));
        // Negated xor literals flip the parity.
        let g = parse_dimacs("p cnf 2 1\nx-1 2 0\n").unwrap();
        assert_eq!(g.num_xors(), 1);
        assert!(parse_dimacs("1 2 0\n").is_err(), "clause before p-line");
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err(), "out of range");
        assert!(parse_dimacs("p cnf 1 1\n1\n").is_err(), "unterminated");
    }

    /// The real tree must be clean — this is the same check CI runs, kept
    /// as a unit test so `cargo test` alone catches drift.
    #[test]
    fn workspace_is_clean() {
        let violations = lint_workspace().expect("lint walk failed");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
