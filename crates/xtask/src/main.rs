//! Workspace task runner (`cargo xtask` pattern, vendored): repo lints and
//! offline proof certification.

fn main() {
    std::process::exit(xtask::run(std::env::args().skip(1)));
}
