//! Model counters for the UniGen reproduction.
//!
//! **Paper map:** provides the `ApproxModelCounter(F, S, 0.8, 0.8)` call on
//! line 9 of Algorithm 1 in *Balancing Scalability and Uniformity in SAT
//! Witness Generator* (DAC 2014); the counter itself is the ApproxMC
//! algorithm of Chakraborty, Meel and Vardi (CP 2013). The exact counter
//! backs the ideal sampler US in the Figure 1 uniformity study.
//!
//! UniGen needs one counting primitive (line 9 of Algorithm 1): an
//! **approximate model counter** with tolerance 0.8 and confidence 0.8, used
//! once per formula to centre the narrow window `{q−3,…,q}` of candidate
//! hash widths. The uniformity study (Figure 1) additionally needs an
//! **exact** count of `|R_F|` for the ideal sampler US. This crate provides
//! both, built on the workspace's own SAT solver:
//!
//! * [`ExactCounter`] — a DPLL-style `#SAT` procedure with unit propagation,
//!   connected-component decomposition and component caching (a compact
//!   sharpSAT stand-in, adequate for the instance sizes the exact count is
//!   ever needed for),
//! * [`ApproxMc`] — the hashing-based approximate counter of Chakraborty,
//!   Meel and Vardi (CP 2013), the `ApproxModelCounter` the paper invokes;
//!   leap-frogging is **disabled by default** exactly as in the paper's
//!   experiments, but can be enabled for the ablation bench.
//!
//! # Example
//!
//! ```
//! use unigen_cnf::{CnfFormula, Lit};
//! use unigen_counting::{ApproxMc, ApproxMcConfig, ExactCounter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // x1 ∨ x2 over two variables has exactly 3 models.
//! let mut f = CnfFormula::new(2);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
//!
//! let exact = ExactCounter::new().count(&f)?;
//! assert_eq!(exact, 3);
//!
//! let approx = ApproxMc::new(ApproxMcConfig::default()).count(&f, 42)?;
//! assert!(approx.estimate >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approxmc;
mod error;
mod exact;

pub use approxmc::{ApproxMc, ApproxMcConfig, ApproxMcResult};
pub use error::CountingError;
pub use exact::ExactCounter;
