//! Exact model counting (`#SAT`) with component decomposition and caching.
//!
//! This is the sharpSAT stand-in used by the ideal uniform sampler US and by
//! the tests that validate ApproxMC and the Theorem 1 envelope. It is a
//! textbook counting DPLL:
//!
//! 1. unit-propagate; a conflict contributes 0 models,
//! 2. drop satisfied clauses and falsified literals,
//! 3. split the residual formula into connected components (clauses sharing
//!    no variable are independent, so their counts multiply),
//! 4. memoise each component's count in a cache keyed by its residual
//!    clauses,
//! 5. otherwise branch on the most frequent variable and add the two counts.
//!
//! Free variables (variables of the original formula that no residual clause
//! mentions) each double the count. Counts are carried as `u128` and overflow
//! is reported as an error rather than silently wrapping.

use std::collections::{BTreeSet, HashMap};

use unigen_cnf::{CnfFormula, Lit, Var};

use crate::error::CountingError;

/// Exact model counter.
///
/// The counter is stateless between [`ExactCounter::count`] calls except for
/// tuning knobs; create one and reuse it freely.
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit};
/// use unigen_counting::ExactCounter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // (x1 ∨ x2) ∧ (¬x1 ∨ x3): 2 free combinations of (x1,x2) times constraints…
/// let mut f = CnfFormula::new(3);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
/// f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(3)])?;
/// assert_eq!(ExactCounter::new().count(&f)?, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    /// Maximum xor length accepted when expanding xor constraints to CNF.
    max_xor_expansion: usize,
}

/// A residual clause: the literals not yet falsified, none of them satisfied.
type Residual = Vec<Lit>;

impl ExactCounter {
    /// Creates a counter with default settings.
    pub fn new() -> Self {
        ExactCounter {
            max_xor_expansion: 16,
        }
    }

    /// Counts the models of `formula` over its full variable range.
    ///
    /// # Errors
    ///
    /// * [`CountingError::XorTooLong`] if the formula contains an xor
    ///   constraint longer than the expansion limit (16 variables),
    /// * [`CountingError::Overflow`] if the count exceeds `u128`.
    pub fn count(&self, formula: &CnfFormula) -> Result<u128, CountingError> {
        for xor in formula.xor_clauses() {
            if xor.len() > self.max_xor_expansion {
                return Err(CountingError::XorTooLong { len: xor.len() });
            }
        }
        let expanded = formula.expand_xor_to_cnf();

        // Variables actually mentioned by clauses; the rest are free.
        let mut mentioned: BTreeSet<Var> = BTreeSet::new();
        let mut clauses: Vec<Residual> = Vec::with_capacity(expanded.num_clauses());
        for clause in expanded.clauses() {
            if clause.is_tautology() {
                continue;
            }
            if clause.is_empty() {
                return Ok(0);
            }
            for &lit in clause.iter() {
                mentioned.insert(lit.var());
            }
            clauses.push(clause.lits().to_vec());
        }
        let free_vars = formula.num_vars() - mentioned.len();

        let mut cache: HashMap<Vec<Residual>, u128> = HashMap::new();
        let constrained = self.count_clauses(clauses, &mut cache)?;
        shift_left(constrained, free_vars as u32)
    }

    /// Counts the assignments to `vars(clauses)` (the variables mentioned by
    /// the residual set) that satisfy every clause.
    ///
    /// The invariant maintained throughout the recursion is that the count
    /// returned by this function is always relative to exactly the variables
    /// the input clauses mention; callers account for variables that their
    /// own reduction step removed from scope.
    fn count_clauses(
        &self,
        clauses: Vec<Residual>,
        cache: &mut HashMap<Vec<Residual>, u128>,
    ) -> Result<u128, CountingError> {
        let vars_before = component_vars(&clauses);

        // Unit propagation on the residual set. Forced variables have exactly
        // one admissible value and contribute a factor of 1; variables that
        // merely *vanish* (every clause mentioning them became satisfied)
        // are unconstrained and contribute a factor of 2 each.
        let (clauses, forced) = match propagate_units(clauses) {
            None => return Ok(0),
            Some(result) => result,
        };
        let vars_after = component_vars(&clauses);
        let vanished = vars_before.len() - vars_after.len() - forced;
        let free_factor_bits = vanished as u32;

        if clauses.is_empty() {
            return shift_left(1, free_factor_bits);
        }

        // Component decomposition: clause sets over disjoint variables are
        // independent, so their counts multiply.
        let components = split_components(&clauses);
        let mut product: u128 = 1;
        for component in components {
            let count = self.count_component(component, cache)?;
            if count == 0 {
                return Ok(0);
            }
            product = product.checked_mul(count).ok_or(CountingError::Overflow)?;
        }
        shift_left(product, free_factor_bits)
    }

    fn count_component(
        &self,
        mut component: Vec<Residual>,
        cache: &mut HashMap<Vec<Residual>, u128>,
    ) -> Result<u128, CountingError> {
        component.sort();
        if let Some(&cached) = cache.get(&component) {
            return Ok(cached);
        }

        // Branch on the most frequent variable of the component.
        let var = most_frequent_var(&component);
        let before = component_vars(&component);
        let mut total: u128 = 0;
        for value in [false, true] {
            match assign(&component, var, value) {
                None => {}
                Some(reduced) => {
                    // Variables of the component that disappear entirely when
                    // `var` is assigned are unconstrained in this branch, so
                    // each doubles the branch's count. (`before` includes
                    // `var` itself, which is assigned, not free.)
                    let after = component_vars(&reduced);
                    let sub = self.count_clauses(reduced, cache)?;
                    let vanished = before.len() - after.len() - 1;
                    let contribution = shift_left(sub, vanished as u32)?;
                    total = total
                        .checked_add(contribution)
                        .ok_or(CountingError::Overflow)?;
                }
            }
        }
        cache.insert(component, total);
        Ok(total)
    }
}

fn shift_left(value: u128, bits: u32) -> Result<u128, CountingError> {
    value
        .checked_shl(bits)
        .filter(|shifted| bits == 0 || *shifted >> bits == value)
        .ok_or(CountingError::Overflow)
}

/// Applies unit propagation to a residual clause set. Returns `None` on
/// conflict, otherwise the reduced set together with the number of variables
/// eliminated by propagation.
fn propagate_units(mut clauses: Vec<Residual>) -> Option<(Vec<Residual>, usize)> {
    let mut eliminated = 0usize;
    loop {
        let unit = clauses.iter().find(|c| c.len() == 1).map(|c| c[0]);
        let Some(unit) = unit else {
            return Some((clauses, eliminated));
        };
        eliminated += 1;
        let mut next: Vec<Residual> = Vec::with_capacity(clauses.len());
        for clause in clauses.drain(..) {
            if clause.contains(&unit) {
                continue; // satisfied
            }
            let reduced: Residual = clause.into_iter().filter(|&l| l != !unit).collect();
            if reduced.is_empty() {
                return None; // conflict
            }
            next.push(reduced);
        }
        clauses = next;
    }
}

/// Assigns `var := value` in a residual clause set without propagation.
/// Returns `None` if the assignment immediately falsifies a clause.
fn assign(clauses: &[Residual], var: Var, value: bool) -> Option<Vec<Residual>> {
    let true_lit = var.lit(value);
    let false_lit = !true_lit;
    let mut out = Vec::with_capacity(clauses.len());
    for clause in clauses {
        if clause.contains(&true_lit) {
            continue;
        }
        let reduced: Residual = clause.iter().copied().filter(|&l| l != false_lit).collect();
        if reduced.is_empty() {
            return None;
        }
        out.push(reduced);
    }
    Some(out)
}

/// Returns the set of variables mentioned by a clause set.
fn component_vars(clauses: &[Residual]) -> BTreeSet<Var> {
    clauses
        .iter()
        .flat_map(|c| c.iter().map(|l| l.var()))
        .collect()
}

/// Returns the variable occurring in the largest number of clauses.
fn most_frequent_var(clauses: &[Residual]) -> Var {
    let mut counts: HashMap<Var, usize> = HashMap::new();
    for clause in clauses {
        for lit in clause {
            *counts.entry(lit.var()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(v, _)| v)
        .expect("non-empty clause set has at least one variable")
}

/// Splits a clause set into connected components (clauses sharing a variable
/// belong to the same component).
fn split_components(clauses: &[Residual]) -> Vec<Vec<Residual>> {
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        for lit in clause {
            match owner.get(&lit.var()) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(lit.var(), i);
                }
            }
        }
    }

    let mut groups: HashMap<usize, Vec<Residual>> = HashMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(clause.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::XorClause;

    fn brute_force(formula: &CnfFormula) -> u128 {
        formula.enumerate_models_brute_force().len() as u128
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let f = CnfFormula::new(5);
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 32);
    }

    #[test]
    fn unsat_formula_counts_zero() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 0);
    }

    #[test]
    fn single_clause() {
        let mut f = CnfFormula::new(3);
        f.add_clause([
            Lit::from_dimacs(1),
            Lit::from_dimacs(2),
            Lit::from_dimacs(3),
        ])
        .unwrap();
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 7);
    }

    #[test]
    fn independent_components_multiply() {
        // (x1 ∨ x2) and (x3 ∨ x4) are independent: 3 * 3 = 9.
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(3), Lit::from_dimacs(4)])
            .unwrap();
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 9);
    }

    #[test]
    fn free_variables_double_the_count() {
        // One clause over x1, x2 plus two unmentioned variables.
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 3 * 4);
    }

    #[test]
    fn xor_constraints_are_expanded() {
        let mut f = CnfFormula::new(3);
        f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], true))
            .unwrap();
        // Half of the 8 assignments have odd parity.
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 4);
    }

    #[test]
    fn long_xor_is_rejected() {
        let mut f = CnfFormula::new(20);
        f.add_xor_clause(XorClause::from_dimacs(1..=20, true))
            .unwrap();
        assert!(matches!(
            ExactCounter::new().count(&f),
            Err(CountingError::XorTooLong { len: 20 })
        ));
    }

    #[test]
    fn matches_brute_force_on_structured_formulas() {
        // A few structured cases with known interactions.
        let mut f = CnfFormula::new(6);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(3)])
            .unwrap();
        f.add_clause([
            Lit::from_dimacs(-3),
            Lit::from_dimacs(4),
            Lit::from_dimacs(-5),
        ])
        .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([5, 6], true))
            .unwrap();
        assert_eq!(ExactCounter::new().count(&f).unwrap(), brute_force(&f));
    }

    #[test]
    fn matches_brute_force_on_pseudo_random_formulas() {
        // Deterministic pseudo-random 3-CNF instances, cross-checked against
        // brute force.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..25 {
            let num_vars = 6 + (next() % 5) as usize; // 6..10
            let num_clauses = 4 + (next() % 12) as usize;
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let v = (next() % num_vars as u64) as usize;
                    let sign = next() % 2 == 0;
                    lits.push(Var::new(v).lit(sign));
                }
                f.add_clause(lits).unwrap();
            }
            assert_eq!(
                ExactCounter::new().count(&f).unwrap(),
                brute_force(&f),
                "mismatch on formula: {f}"
            );
        }
    }

    #[test]
    fn xor_chain_has_expected_count() {
        // x1 ⊕ x2 = 0, x2 ⊕ x3 = 0, …: all variables equal, so 2 models.
        let mut f = CnfFormula::new(8);
        for i in 1..8 {
            f.add_xor_clause(XorClause::from_dimacs([i, i + 1], false))
                .unwrap();
        }
        assert_eq!(ExactCounter::new().count(&f).unwrap(), 2);
    }
}
