//! ApproxMC — the hashing-based approximate model counter (CP 2013).
//!
//! UniGen invokes `ApproxModelCounter(F, 0.8, 0.8)` once per formula (line 9
//! of Algorithm 1) to obtain an estimate `C` of `|R_F|` with
//! `Pr[C/1.8 ≤ |R_F| ≤ 1.8·C] ≥ 0.8`, from which the candidate hash widths
//! `{q−3,…,q}` are derived. The counter implemented here follows the CP 2013
//! construction:
//!
//! * `ApproxMCCore`: add `i` random xor constraints from `H_xor(|S|, i, 3)`
//!   for increasing `i` until the surviving cell has between 1 and `pivot`
//!   witnesses (found with `BSAT`), then report `cell · 2^i`;
//! * outer loop: repeat the core `t` times with fresh randomness and return
//!   the **median** of the successful estimates.
//!
//! The paper's experiments explicitly *disable* leap-frogging (starting the
//! core's search for `i` at the previous success) because it voids the CP'13
//! guarantee; the same default applies here, with an opt-in flag kept for the
//! ablation benchmark.

use rand::Rng;

use unigen_cnf::{CnfFormula, Var};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{enumerate_cell, Budget, Solver};

use crate::error::CountingError;

/// Configuration of [`ApproxMc`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxMcConfig {
    /// Tolerance ε: the estimate is within a factor `1 + ε` of the true count
    /// (with the configured confidence). UniGen calls the counter with 0.8.
    pub tolerance: f64,
    /// Desired confidence `1 − δ`. UniGen calls the counter with 0.8.
    pub confidence: f64,
    /// Override for the number of core iterations. When `None`, the CP 2013
    /// formula `⌈35·log2(3/δ)⌉` is used; the laptop-scale experiments in this
    /// repository override it (documented in EXPERIMENTS.md) because the
    /// full formula costs hundreds of `BSAT` sweeps per formula.
    pub iterations: Option<usize>,
    /// Enable leap-frogging (start each core run's hash-width search at the
    /// previous run's success). Defaults to `false`, matching the paper.
    pub leapfrog: bool,
    /// Per-`BSAT`-call budget.
    pub budget: Budget,
}

impl Default for ApproxMcConfig {
    fn default() -> Self {
        ApproxMcConfig {
            tolerance: 0.8,
            confidence: 0.8,
            iterations: Some(9),
            leapfrog: false,
            budget: Budget::new(),
        }
    }
}

impl ApproxMcConfig {
    /// The cell-size threshold ("pivot") from the CP 2013 analysis:
    /// `2·e^{3/2}·(1 + 1/ε)²`, rounded up.
    pub fn pivot(&self) -> u64 {
        let e_three_half = std::f64::consts::E.powf(1.5);
        (2.0 * e_three_half * (1.0 + 1.0 / self.tolerance).powi(2)).ceil() as u64
    }

    /// Number of core iterations actually used.
    pub fn num_iterations(&self) -> usize {
        match self.iterations {
            Some(n) => n.max(1),
            None => {
                let delta = (1.0 - self.confidence).max(1e-9);
                (35.0 * (3.0 / delta).log2()).ceil() as usize
            }
        }
    }
}

/// Result of an [`ApproxMc::count`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxMcResult {
    /// The median estimate of `|R_F|`.
    pub estimate: u128,
    /// The per-iteration estimates that went into the median.
    pub iteration_estimates: Vec<u128>,
    /// Number of core iterations that failed to find a usable cell.
    pub failed_iterations: usize,
    /// Total number of `BSAT` (bounded enumeration) calls issued.
    pub bsat_calls: usize,
}

/// The approximate model counter.
///
/// See the crate-level documentation for the role it plays in UniGen and
/// [`ApproxMcConfig`] for the knobs.
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit};
/// use unigen_counting::{ApproxMc, ApproxMcConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = CnfFormula::new(3);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
/// let result = ApproxMc::new(ApproxMcConfig::default()).count(&f, 7)?;
/// // The true count is 7; with tolerance 0.8 the estimate must fall in [3, 13]
/// // with high probability (and for counts below the pivot it is exact).
/// assert_eq!(result.estimate, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApproxMc {
    config: ApproxMcConfig,
}

impl ApproxMc {
    /// Creates a counter with the given configuration.
    pub fn new(config: ApproxMcConfig) -> Self {
        ApproxMc { config }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &ApproxMcConfig {
        &self.config
    }

    /// Estimates `|R_F|`, hashing over the formula's sampling set (or its
    /// full support when no sampling set is declared), using `seed` for all
    /// randomness.
    ///
    /// # Errors
    ///
    /// * [`CountingError::BudgetExhausted`] if the initial `BSAT` call cannot
    ///   complete within the per-call budget,
    /// * [`CountingError::NoEstimate`] if every core iteration fails.
    pub fn count(&self, formula: &CnfFormula, seed: u64) -> Result<ApproxMcResult, CountingError> {
        let sampling_set = formula.sampling_set_or_all();
        self.count_with_sampling_set(formula, &sampling_set, seed)
    }

    /// Estimates `|R_F|`, hashing over an explicit sampling set.
    ///
    /// # Errors
    ///
    /// See [`ApproxMc::count`].
    ///
    /// # Panics
    ///
    /// Panics if `sampling_set` is empty.
    pub fn count_with_sampling_set(
        &self,
        formula: &CnfFormula,
        sampling_set: &[Var],
        seed: u64,
    ) -> Result<ApproxMcResult, CountingError> {
        assert!(!sampling_set.is_empty(), "sampling set must be non-empty");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pivot = self.config.pivot();
        let mut bsat_calls = 0usize;

        // The one incremental solver for the whole count: every `BSAT` call
        // below — the base case and all t × widths core cells — runs on it
        // under a per-cell guard, so learned clauses about the formula keep
        // paying off across iterations.
        let mut solver = Solver::from_formula(formula);

        // Base case: if the formula has at most `pivot` witnesses, count them
        // exactly by enumeration (this is also what makes the estimate exact
        // for small formulas, a property the doc-test above relies on).
        let outcome = enumerate_cell(
            &mut solver,
            sampling_set,
            &[],
            pivot as usize + 1,
            &self.config.budget,
        );
        bsat_calls += 1;
        if outcome.budget_exhausted {
            return Err(CountingError::BudgetExhausted);
        }
        if outcome.len() <= pivot as usize {
            return Ok(ApproxMcResult {
                estimate: outcome.len() as u128,
                iteration_estimates: vec![outcome.len() as u128],
                failed_iterations: 0,
                bsat_calls,
            });
        }

        let family = XorHashFamily::new(sampling_set.to_vec());
        let max_width = sampling_set.len();
        let iterations = self.config.num_iterations();
        let mut estimates: Vec<u128> = Vec::with_capacity(iterations);
        let mut failed = 0usize;
        let mut leapfrog_start: Option<usize> = None;

        for _ in 0..iterations {
            let start = if self.config.leapfrog {
                leapfrog_start
                    .map(|m| m.saturating_sub(1).max(1))
                    .unwrap_or(1)
            } else {
                1
            };
            match self.core(
                &mut solver,
                sampling_set,
                &family,
                pivot,
                start,
                max_width,
                &mut rng,
                &mut bsat_calls,
            ) {
                Some((cell, width)) => {
                    leapfrog_start = Some(width);
                    let estimate = (cell as u128) << width.min(127);
                    estimates.push(estimate);
                }
                None => failed += 1,
            }
        }

        if estimates.is_empty() {
            return Err(CountingError::NoEstimate);
        }
        estimates.sort_unstable();
        let estimate = estimates[estimates.len() / 2];
        Ok(ApproxMcResult {
            estimate,
            iteration_estimates: estimates,
            failed_iterations: failed,
            bsat_calls,
        })
    }

    /// One `ApproxMCCore` run: find a hash width whose random cell holds
    /// between 1 and `pivot` witnesses. Returns the cell size and the width.
    #[allow(clippy::too_many_arguments)]
    fn core<R: Rng + ?Sized>(
        &self,
        solver: &mut Solver,
        sampling_set: &[Var],
        family: &XorHashFamily,
        pivot: u64,
        start_width: usize,
        max_width: usize,
        rng: &mut R,
        bsat_calls: &mut usize,
    ) -> Option<(usize, usize)> {
        for width in start_width..=max_width {
            let hash = family.sample(width, rng);
            let outcome = enumerate_cell(
                solver,
                sampling_set,
                &hash.to_xor_clauses(),
                pivot as usize + 1,
                &self.config.budget,
            );
            *bsat_calls += 1;
            if outcome.budget_exhausted {
                // Treat a timed-out cell like a failed iteration, as the
                // paper's experiments do for BSAT timeouts.
                return None;
            }
            let cell = outcome.len();
            if cell >= 1 && cell <= pivot as usize {
                return Some((cell, width));
            }
            // An empty cell means we overshot (too many constraints); the
            // CP'13 core reports failure for this iteration.
            if cell == 0 {
                return None;
            }
        }
        None
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::{Lit, XorClause};
    use unigen_counting_test_support::formula_with_count;

    /// Tiny helper module so the tests can build formulas with a known count.
    mod unigen_counting_test_support {
        use super::*;

        /// Builds a formula over `bits + extra` variables with exactly
        /// `2^bits` models: the first `bits` variables are free, each
        /// remaining variable is forced equal to one of them via an xor.
        pub fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
            let mut f = CnfFormula::new(bits + extra);
            for i in 0..extra {
                let free = Var::new(i % bits);
                let dependent = Var::new(bits + i);
                f.add_xor_clause(XorClause::new([free, dependent], false))
                    .unwrap();
            }
            f.set_sampling_set((0..bits).map(Var::new)).unwrap();
            f
        }
    }

    #[test]
    fn pivot_matches_cp13_formula() {
        let config = ApproxMcConfig {
            tolerance: 0.8,
            ..ApproxMcConfig::default()
        };
        // 2 e^{1.5} (1 + 1/0.8)^2 = 2 · 4.4817 · 5.0625 ≈ 45.4 → 46.
        assert_eq!(config.pivot(), 46);
    }

    #[test]
    fn iteration_formula_kicks_in_without_override() {
        let config = ApproxMcConfig {
            confidence: 0.8,
            iterations: None,
            ..ApproxMcConfig::default()
        };
        // 35 · log2(3 / 0.2) = 35 · 3.9069 ≈ 136.7 → 137.
        assert_eq!(config.num_iterations(), 137);
    }

    #[test]
    fn small_formulas_are_counted_exactly() {
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(3), Lit::from_dimacs(4)])
            .unwrap();
        // 9 models < pivot, so the estimate is exact.
        let result = ApproxMc::new(ApproxMcConfig::default())
            .count(&f, 1)
            .unwrap();
        assert_eq!(result.estimate, 9);
        assert_eq!(result.bsat_calls, 1);
    }

    #[test]
    fn unsat_formula_counts_zero() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        let result = ApproxMc::new(ApproxMcConfig::default())
            .count(&f, 2)
            .unwrap();
        assert_eq!(result.estimate, 0);
    }

    #[test]
    fn estimate_is_within_tolerance_for_structured_formula() {
        // 2^10 = 1024 models over a 10-variable sampling set, plus 6
        // dependent variables.
        let f = formula_with_count(10, 6);
        let config = ApproxMcConfig::default();
        let result = ApproxMc::new(config.clone()).count(&f, 3).unwrap();
        let truth = 1024f64;
        let ratio = result.estimate as f64 / truth;
        let factor = 1.0 + config.tolerance;
        assert!(
            ratio >= 1.0 / factor && ratio <= factor,
            "estimate {} outside tolerance of true count {truth}",
            result.estimate
        );
    }

    #[test]
    fn hashing_respects_sampling_set() {
        let f = formula_with_count(8, 4);
        let sampling = f.sampling_set().unwrap().to_vec();
        let result = ApproxMc::new(ApproxMcConfig::default())
            .count_with_sampling_set(&f, &sampling, 11)
            .unwrap();
        assert!(
            result.estimate >= 128,
            "estimate {} far too small",
            result.estimate
        );
        assert!(
            result.estimate <= 2048,
            "estimate {} far too large",
            result.estimate
        );
    }

    #[test]
    fn counting_constructs_exactly_one_solver() {
        let f = formula_with_count(10, 6);
        let before = Solver::constructions_on_thread();
        let result = ApproxMc::new(ApproxMcConfig::default())
            .count(&f, 7)
            .unwrap();
        assert!(result.bsat_calls > 1, "expected many BSAT calls");
        assert_eq!(
            Solver::constructions_on_thread() - before,
            1,
            "every BSAT cell must reuse the one incremental solver"
        );
    }

    #[test]
    fn leapfrog_produces_comparable_estimates() {
        let f = formula_with_count(9, 3);
        let base = ApproxMc::new(ApproxMcConfig::default())
            .count(&f, 5)
            .unwrap();
        let leap = ApproxMc::new(ApproxMcConfig {
            leapfrog: true,
            ..ApproxMcConfig::default()
        })
        .count(&f, 5)
        .unwrap();
        let ratio = base.estimate as f64 / leap.estimate as f64;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "estimates diverge: {base:?} vs {leap:?}"
        );
    }
}
