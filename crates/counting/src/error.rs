//! Error type shared by the counters.

use std::fmt;

/// Errors produced by the exact and approximate model counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CountingError {
    /// The per-call budget ran out before the counter reached an answer
    /// (the analogue of a `BSAT` timeout in the paper's experiments).
    BudgetExhausted,
    /// The exact counter was asked to expand an xor constraint that is too
    /// long to convert to CNF (the exact counter is only meant for the small
    /// instances used in the uniformity study and the tests).
    XorTooLong {
        /// Number of variables in the offending constraint.
        len: usize,
    },
    /// The model count does not fit in the 128-bit integer used to report it.
    Overflow,
    /// The approximate counter exhausted every candidate hash width without
    /// finding a cell of acceptable size in any iteration.
    NoEstimate,
}

impl fmt::Display for CountingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountingError::BudgetExhausted => {
                write!(f, "counting budget exhausted before an answer was reached")
            }
            CountingError::XorTooLong { len } => write!(
                f,
                "xor constraint with {len} variables is too long for exact counting"
            ),
            CountingError::Overflow => write!(f, "model count exceeds 128 bits"),
            CountingError::NoEstimate => {
                write!(f, "approximate counter failed to produce any estimate")
            }
        }
    }
}

impl std::error::Error for CountingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        for err in [
            CountingError::BudgetExhausted,
            CountingError::XorTooLong { len: 99 },
            CountingError::Overflow,
            CountingError::NoEstimate,
        ] {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }
}
