//! Self-tests for the model checker: for every detector, one test where
//! the checker must find the bug and one where a correct protocol must
//! come back clean (and `complete`, where the state space is small).
//!
//! These run only when the `model` feature is enabled — which it always
//! is for `cargo test` in this workspace, because the `unigen` test
//! builds activate it via feature unification.

#![cfg(feature = "model")]

use std::sync::Arc;

use conc::model::{check, check_ok, Config, FailureKind};
use conc::sync::{Condvar, Mutex};

fn small(max_schedules: u64) -> Config {
    Config {
        max_schedules,
        ..Config::default()
    }
}

// ---------------------------------------------------------------------------
// Plumbing: the controlled scheduler runs bodies at all.
// ---------------------------------------------------------------------------

#[test]
fn single_thread_body_completes() {
    let report = check_ok(small(10), || {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.complete, "{report}");
    assert_eq!(report.schedules, 1, "no choices → exactly one schedule");
}

#[test]
fn spawn_join_passes_values_and_explores_both_orders() {
    let report = check_ok(small(100), || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = conc::thread::spawn(move || {
            *m2.lock().unwrap() += 1;
            7u32
        });
        *m.lock().unwrap() += 1;
        assert_eq!(t.join().unwrap(), 7);
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.complete, "{report}");
    assert!(
        report.schedules > 1,
        "two threads contending must give >1 interleaving: {report}"
    );
}

#[test]
fn panic_in_body_is_reported_with_schedule() {
    let report = check(small(10), || {
        let m = Mutex::new(0);
        *m.lock().unwrap() += 1;
        panic!("deliberate");
    });
    let failure = report.failure.expect("panic must be detected");
    assert!(
        matches!(&failure.kind, FailureKind::Panic(m) if m.contains("deliberate")),
        "{failure:?}"
    );
    assert!(!failure.trace.is_empty(), "failure carries a trace");
}

#[test]
fn assertion_failure_only_in_some_interleavings_is_found() {
    // t0 and t1 both do read-modify-write under proper locking of two
    // *separate* critical sections — the lost-update bug. Only schedules
    // that interleave the sections see x != 2.
    let report = check(small(500), || {
        let m = Arc::new(Mutex::new(0i32));
        let m2 = Arc::clone(&m);
        let t = conc::thread::spawn(move || {
            let read = *m2.lock().unwrap();
            *m2.lock().unwrap() = read + 1;
        });
        let read = *m.lock().unwrap();
        *m.lock().unwrap() = read + 1;
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2, "lost update");
    });
    let failure = report.failure.expect("the lost update must be found");
    assert!(
        matches!(&failure.kind, FailureKind::Panic(m) if m.contains("lost update")),
        "{failure:?}"
    );
}

// ---------------------------------------------------------------------------
// Deadlock and lock-order detection.
// ---------------------------------------------------------------------------

#[test]
fn abba_deadlock_is_found_and_classified() {
    let report = check(small(500), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = conc::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        let _ = t.join();
    });
    let failure = report.failure.expect("AB-BA must fail");
    // Depending on which schedule gets there first, the checker reports
    // either the actual deadlock or the lock-order cycle that predicts it.
    assert!(
        matches!(
            failure.kind,
            FailureKind::Deadlock(_) | FailureKind::LockOrderCycle(_)
        ),
        "{failure:?}"
    );
}

#[test]
fn consistent_lock_order_is_clean_and_reported() {
    let report = check_ok(small(500), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = conc::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join().unwrap();
    });
    assert!(report.complete, "{report}");
    assert!(
        !report.lock_order_edges.is_empty(),
        "the a→b edge must be observed: {report}"
    );
}

// ---------------------------------------------------------------------------
// Condvar semantics: wakeups, lost wakeups.
// ---------------------------------------------------------------------------

#[test]
fn condvar_handshake_is_clean() {
    let report = check_ok(small(500), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = conc::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.complete, "{report}");
}

#[test]
fn lost_wakeup_is_found() {
    // The classic bug: the notifier does not hold the lock while setting
    // the flag... here even simpler — it notifies *before* the waiter
    // waits in some schedules, and checks no predicate under the lock.
    // In the schedule where the notify lands first, the waiter sleeps
    // forever: a lost wakeup.
    let report = check(small(500), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = conc::thread::spawn(move || {
            let (_, cv) = &*p2;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let g = m.lock().unwrap();
        // No predicate: waits unconditionally, once.
        let g = cv.wait(g).unwrap();
        drop(g);
        t.join().unwrap();
    });
    let failure = report.failure.expect("the lost wakeup must be found");
    assert!(
        matches!(failure.kind, FailureKind::LostWakeup(_)),
        "{failure:?}"
    );
}

#[test]
fn notify_all_wakes_every_waiter() {
    let report = check_ok(small(2000), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pair);
                conc::thread::spawn(move || {
                    let (m, cv) = &*p;
                    let mut go = m.lock().unwrap();
                    while !*go {
                        go = cv.wait(go).unwrap();
                    }
                })
            })
            .collect();
        let (m, cv) = &*pair;
        *m.lock().unwrap() = true;
        cv.notify_all();
        for w in waiters {
            w.join().unwrap();
        }
    });
    assert!(report.failure.is_none(), "{report}");
}

// ---------------------------------------------------------------------------
// CheckedCell race detection.
// ---------------------------------------------------------------------------

#[test]
fn unsynchronized_cell_write_is_a_race() {
    let report = check(small(500), || {
        let cell = Arc::new(conc::cell::CheckedCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let t = conc::thread::spawn(move || c2.set(1));
        cell.set(2);
        let _ = t.join();
    });
    let failure = report.failure.expect("write/write race must be found");
    assert!(
        matches!(failure.kind, FailureKind::DataRace(_)),
        "{failure:?}"
    );
}

#[test]
fn lock_protected_cell_is_clean() {
    let report = check_ok(small(500), || {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(conc::cell::CheckedCell::new(0u32));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
        let t = conc::thread::spawn(move || {
            let _g = l2.lock().unwrap();
            c2.with_mut(|v| *v += 1);
        });
        {
            let _g = lock.lock().unwrap();
            cell.with_mut(|v| *v += 1);
        }
        t.join().unwrap();
        assert_eq!(cell.get(), 2);
    });
    assert!(report.complete, "{report}");
}

#[test]
fn join_establishes_happens_before_for_cells() {
    let report = check_ok(small(500), || {
        let cell = Arc::new(conc::cell::CheckedCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let t = conc::thread::spawn(move || c2.set(5));
        t.join().unwrap();
        assert_eq!(cell.get(), 5, "join ordered the write before the read");
    });
    assert!(report.complete, "{report}");
}

// ---------------------------------------------------------------------------
// Exploration accounting.
// ---------------------------------------------------------------------------

#[test]
fn schedule_budget_is_respected_and_counted() {
    // Three workers bumping a shared counter: a state space comfortably
    // larger than a 50-schedule budget.
    let cfg = small(50);
    let report = check(cfg, || {
        let m = Arc::new(Mutex::new(0u32));
        let ts: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                conc::thread::spawn(move || {
                    for _ in 0..2 {
                        *m.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
    });
    assert!(report.failure.is_none(), "{report}");
    assert_eq!(report.schedules, 50, "budget is a hard cap: {report}");
    assert!(!report.complete);
    assert_eq!(report.distinct_schedules, report.schedules);
}

#[test]
fn seeds_change_the_baseline_schedule_but_not_the_verdict() {
    for seed in [1u64, 2, 3] {
        let cfg = Config {
            max_schedules: 200,
            seed,
            ..Config::default()
        };
        let report = check(cfg, || {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let t = conc::thread::spawn(move || *m2.lock().unwrap() += 1);
            *m.lock().unwrap() += 1;
            t.join().unwrap();
        });
        assert!(report.failure.is_none(), "seed {seed}: {report}");
        assert!(report.complete, "seed {seed}: {report}");
    }
}

#[test]
fn config_from_env_reads_overrides() {
    // Serialized against nothing: env mutation is process-global, but no
    // other test in this binary reads these variables.
    std::env::set_var("CONC_SCHEDULES", "77");
    std::env::set_var("CONC_PREEMPTIONS", "5");
    std::env::set_var("CONC_SEED", "12345");
    let cfg = Config::from_env();
    std::env::remove_var("CONC_SCHEDULES");
    std::env::remove_var("CONC_PREEMPTIONS");
    std::env::remove_var("CONC_SEED");
    assert_eq!(cfg.max_schedules, 77);
    assert_eq!(cfg.preemption_bound, 5);
    assert_eq!(cfg.seed, 12345);
}

#[test]
fn atomics_do_not_explode_the_state_space_by_default() {
    let report = check_ok(small(100), || {
        let a = Arc::new(conc::atomic::AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = conc::thread::spawn(move || {
            a2.fetch_add(1, conc::atomic::Ordering::Relaxed);
        });
        a.fetch_add(1, conc::atomic::Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(a.load(conc::atomic::Ordering::Relaxed), 2);
    });
    assert!(report.complete, "{report}");
    assert!(
        report.schedules <= 4,
        "atomics must not be schedule points by default: {report}"
    );
}

// ---------------------------------------------------------------------------
// Teardown: Drop impls that join threads survive failing executions.
// ---------------------------------------------------------------------------

struct JoinsOnDrop {
    handle: Option<conc::thread::JoinHandle<()>>,
}

impl Drop for JoinsOnDrop {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let result = h.join();
            if !std::thread::panicking() {
                result.expect("worker panicked");
            }
        }
    }
}

#[test]
fn failing_execution_with_joining_drop_guard_is_torn_down_cleanly() {
    let report = check(small(300), || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _guard = JoinsOnDrop {
            handle: Some(conc::thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            })),
        };
        let v = *m.lock().unwrap();
        // Fails whenever the spawned thread got there first; the open
        // JoinsOnDrop guard must not turn that panic into a process
        // abort while the execution is torn down.
        assert_eq!(v, 0, "spawned thread ran first");
    });
    let failure = report.failure.expect("some schedule must fail");
    assert!(
        matches!(&failure.kind, FailureKind::Panic(m) if m.contains("spawned thread ran first")),
        "{failure:?}"
    );
}

#[test]
fn passthrough_outside_check_still_works_in_model_builds() {
    // Same primitives, no controlled scheduler: must behave like std.
    let m = Arc::new(Mutex::new(0u32));
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let (m2, p2) = (Arc::clone(&m), Arc::clone(&pair));
    let t = conc::thread::spawn(move || {
        *m2.lock().unwrap() += 1;
        let (flag, cv) = &*p2;
        *flag.lock().unwrap() = true;
        cv.notify_all();
    });
    let (flag, cv) = &*pair;
    let mut g = flag.lock().unwrap();
    while !*g {
        g = cv.wait(g).unwrap();
    }
    drop(g);
    t.join().unwrap();
    assert_eq!(*m.lock().unwrap(), 1);
}
