//! Mutex and condition variable, mirroring `std::sync`.
//!
//! Without the `model` feature these are `#[inline]` newtypes over the
//! `std` primitives. With it, every operation that can order one thread
//! against another becomes a schedule point when the calling thread runs
//! under `crate::model::check`; uncontrolled threads take the
//! passthrough path even in a `model` build.

use std::sync::{LockResult, PoisonError};

#[cfg(feature = "model")]
use crate::rt;

/// A mutual-exclusion primitive with the `std::sync::Mutex` API.
///
/// Under the model backend, the mutex's identity for lock-order tracking
/// is its construction site (`#[track_caller]` on [`Mutex::new`]): every
/// mutex created at one source location forms one *lock class*, which is
/// how per-worker or per-request locks collapse into a finite order graph.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(feature = "model")]
    id: rt::LazyId,
    #[cfg(feature = "model")]
    loc: &'static std::panic::Location<'static>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. `#[track_caller]` so the model backend can
    /// label the lock class with the caller's source location.
    #[track_caller]
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            #[cfg(feature = "model")]
            id: rt::LazyId::new(),
            #[cfg(feature = "model")]
            loc: std::panic::Location::caller(),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        rt::op_lock(&self.id, self.loc);
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard::new(self, inner)),
            Err(poison) => Err(PoisonError::new(MutexGuard::new(self, poison.into_inner()))),
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity, so
    /// this is never a schedule point).
    #[inline]
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        match self.inner.get_mut() {
            Ok(v) => Ok(v),
            Err(poison) => Err(PoisonError::new(poison.into_inner())),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    #[inline]
    pub fn into_inner(self) -> LockResult<T> {
        match self.inner.into_inner() {
            Ok(v) => Ok(v),
            Err(poison) => Err(PoisonError::new(poison.into_inner())),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// An RAII guard with the `std::sync::MutexGuard` API. Releasing it is a
/// schedule point under the model backend.
pub struct MutexGuard<'a, T> {
    // `inner` is an Option only so `Condvar::wait` can release the real
    // lock without announcing a model unlock; it is `Some` for the guard's
    // entire user-visible lifetime.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<'a, T> MutexGuard<'a, T> {
    #[inline]
    fn new(mutex: &'a Mutex<T>, inner: std::sync::MutexGuard<'a, T>) -> Self {
        MutexGuard {
            inner: Some(inner),
            mutex,
        }
    }

    /// Drops the real `std` guard without a model unlock announcement, and
    /// returns the mutex for re-acquisition. Only `Condvar::wait` calls
    /// this (wait semantics release + block in one indivisible model step).
    #[cfg(feature = "model")]
    fn release_silently(mut self) -> &'a Mutex<T> {
        let mutex = self.mutex;
        drop(self.inner.take());
        mutex
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard used after silent release"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard used after silent release"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "model")]
        if self.inner.is_some() {
            // Announce first, then let the field drop release the real
            // lock: the announced thread keeps running until its next
            // schedule point, so the real release always happens before
            // any other controlled thread can try the real acquire.
            rt::op_unlock(&self.mutex.id, self.mutex.loc);
        }
        #[cfg(not(feature = "model"))]
        let _ = &self.mutex;
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable with the `std::sync::Condvar` API.
///
/// The model backend wakes waiters FIFO and never spuriously; production
/// `std` condvars may do both, so callers must keep the standard
/// re-check-the-predicate loop (the model would catch a missing loop only
/// if FIFO order happened to expose it).
pub struct Condvar {
    inner: std::sync::Condvar,
    #[cfg(feature = "model")]
    id: rt::LazyId,
    #[cfg(feature = "model")]
    loc: &'static std::panic::Location<'static>,
}

impl Condvar {
    /// Creates a new condition variable. `#[track_caller]` labels it for
    /// diagnostics under the model backend.
    #[track_caller]
    #[inline]
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            #[cfg(feature = "model")]
            id: rt::LazyId::new(),
            #[cfg(feature = "model")]
            loc: std::panic::Location::caller(),
        }
    }

    /// Blocks the current thread until this condition variable is
    /// notified, atomically releasing `guard` for the duration.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(feature = "model")]
        if rt::in_model_thread() {
            let mutex = guard.release_silently();
            rt::op_cond_wait(&self.id, self.loc, &mutex.id, mutex.loc);
            // The model has granted the re-acquisition, so the real lock
            // is uncontended here.
            return match mutex.inner.lock() {
                Ok(inner) => Ok(MutexGuard::new(mutex, inner)),
                Err(poison) => Err(PoisonError::new(MutexGuard::new(
                    mutex,
                    poison.into_inner(),
                ))),
            };
        }
        let mutex = guard.mutex;
        let mut guard = guard;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard used after silent release"),
        };
        drop(guard);
        match self.inner.wait(inner) {
            Ok(inner) => Ok(MutexGuard::new(mutex, inner)),
            Err(poison) => Err(PoisonError::new(MutexGuard::new(
                mutex,
                poison.into_inner(),
            ))),
        }
    }

    /// Wakes one blocked waiter (the longest-waiting one, under the model
    /// backend).
    #[inline]
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        rt::op_notify(&self.id, self.loc, false);
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    #[inline]
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        rt::op_notify(&self.id, self.loc, true);
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    #[track_caller]
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
