//! The model-checking runtime: a controlled scheduler over real OS threads.
//!
//! One *execution* runs the test body once under a cooperative regime: at
//! every schedule point (mutex/condvar/spawn/join/cell op) the acting
//! thread parks and a controller — running on the thread that called
//! [`crate::model::check`] — decides who continues. Exactly one controlled
//! thread runs at a time, so the model state (lock holders, condvar wait
//! queues, vector clocks, the lock-order graph) is updated race-free under
//! one internal `std` mutex, and the *schedule* (the sequence of choices)
//! fully determines the execution of a deterministic body.
//!
//! The internal coordination deliberately uses raw `std::sync` — this
//! module is the one place in the workspace allowed to (the `xtask` lint
//! pins that), since it is the layer everything else's `conc` ops bottom
//! out in.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Panic payload used to unwind controlled threads when an execution is
/// torn down after a failure. The thread wrapper swallows it; user-facing
/// `Drop` impls never observe it unless they join mid-teardown, which is
/// why joining `Drop` impls must guard on `std::thread::panicking()`.
pub(crate) struct ConcAbort;

/// What kind of object an id in the per-execution object table denotes.
#[derive(Debug)]
enum ObjState {
    Lock {
        holder: Option<usize>,
        vc: VClock,
    },
    Cv {
        waiters: VecDeque<usize>,
    },
    Atomic {
        vc: VClock,
    },
    Cell {
        last_write: Option<(usize, VClock)>,
        reads: Vec<(usize, VClock)>,
    },
}

/// Kind tag used at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Lock,
    Cv,
    Atomic,
    Cell,
}

struct ObjRec {
    state: ObjState,
    /// Creation site of the object — the lock *class* label used by the
    /// lock-order graph and every diagnostic.
    loc: &'static Location<'static>,
}

/// A schedulable operation, announced by a thread at a schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First schedule point of every thread, before any user code runs.
    Begin,
    Lock {
        obj: usize,
        /// `true` when this is the re-acquisition half of a condvar wait.
        from_wait: bool,
    },
    Unlock {
        obj: usize,
    },
    NotifyOne {
        cv: usize,
    },
    NotifyAll {
        cv: usize,
    },
    Atomic {
        obj: usize,
    },
    CellRead {
        obj: usize,
    },
    CellWrite {
        obj: usize,
    },
    Spawn {
        child: usize,
    },
    Join {
        target: usize,
    },
    Yield,
    /// Atomic release-and-wait. Applied at announce time — it never
    /// appears in a `Ready` state (only the re-acquisition is scheduled,
    /// as a `Lock { from_wait: true }`).
    CondWait {
        cv: usize,
        lock: usize,
    },
}

impl Op {
    /// The object the op acts on, if any — the key of the dependence
    /// relation used by the sleep-set reduction.
    fn object(&self) -> Option<usize> {
        match *self {
            Op::Lock { obj, .. }
            | Op::Unlock { obj }
            | Op::Atomic { obj }
            | Op::CellRead { obj }
            | Op::CellWrite { obj } => Some(obj),
            Op::NotifyOne { cv } | Op::NotifyAll { cv } | Op::CondWait { cv, .. } => Some(cv),
            Op::Begin | Op::Spawn { .. } | Op::Join { .. } | Op::Yield => None,
        }
    }
}

/// Two ops commute unless they touch the same object (read/read excepted).
/// Conservative on purpose: a weaker relation only costs reduction, never
/// soundness.
pub(crate) fn dependent(a: &Op, b: &Op) -> bool {
    match (a.object(), b.object()) {
        (Some(x), Some(y)) if x == y => {
            !matches!((a, b), (Op::CellRead { .. }, Op::CellRead { .. }))
        }
        _ => false,
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    /// Real thread spawned but not yet parked at its `Begin` point.
    Starting,
    /// Parked at a schedule point, next op announced.
    Ready(Op),
    /// The one thread currently executing user code.
    Running,
    /// Released its mutex and is waiting for a notify.
    CondBlocked {
        cv: usize,
        lock: usize,
    },
    Exited,
}

struct ThreadRec {
    state: TState,
    vc: VClock,
    /// Locks currently held, in acquisition order.
    held: Vec<usize>,
    name: String,
}

/// One scheduling decision, recorded for the explorer.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Enabled thread ids at this point, ascending.
    pub enabled: Vec<usize>,
    /// The op each enabled thread was about to perform (parallel to
    /// `enabled`).
    pub ops: Vec<Op>,
    /// The thread that was scheduled.
    pub chosen: usize,
    /// The thread that executed the step leading *into* this point.
    pub prev: Option<usize>,
}

/// Why an execution failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A controlled thread's panic escaped to the top of the thread.
    Panic(String),
    /// No thread was runnable and at least one was blocked on a mutex.
    Deadlock(String),
    /// No thread was runnable and every blocked thread was in a condvar
    /// wait — a notify was lost (or never sent).
    LostWakeup(String),
    /// Two threads accessed a [`crate::cell::CheckedCell`] without a
    /// happens-before edge, at least one of them writing.
    DataRace(String),
    /// The per-execution lock-order graph acquired a cycle.
    LockOrderCycle(String),
    /// An execution exceeded the per-schedule step limit (livelock guard).
    StepLimit(String),
    /// Replaying a schedule prefix diverged — the body is nondeterministic
    /// (e.g. branches on wall-clock time or an external RNG).
    Nondeterminism(String),
    /// A controlled thread blocked outside `conc` primitives and stalled
    /// the scheduler past the watchdog timeout.
    Stall(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::Deadlock(m) => write!(f, "deadlock: {m}"),
            FailureKind::LostWakeup(m) => write!(f, "lost wakeup: {m}"),
            FailureKind::DataRace(m) => write!(f, "data race: {m}"),
            FailureKind::LockOrderCycle(m) => write!(f, "lock-order cycle: {m}"),
            FailureKind::StepLimit(m) => write!(f, "step limit: {m}"),
            FailureKind::Nondeterminism(m) => write!(f, "nondeterministic replay: {m}"),
            FailureKind::Stall(m) => write!(f, "scheduler stall: {m}"),
        }
    }
}

/// Everything the controller and the parked threads share.
struct ExecState {
    threads: Vec<ThreadRec>,
    running: Option<usize>,
    /// Threads spawned but not yet parked at `Begin`.
    starting: usize,
    /// Real OS threads that have not yet finished their wrapper.
    real_alive: usize,
    objects: Vec<ObjRec>,
    step: usize,
    decisions: Vec<Decision>,
    prefix: Vec<usize>,
    prefix_pos: usize,
    abort: bool,
    failure: Option<FailureKind>,
    /// Instance-level lock-order graph: edge a → b when b was acquired
    /// while a was held.
    lock_graph: BTreeMap<usize, BTreeSet<usize>>,
    /// Class-level (creation-site) edges, accumulated for the report.
    lock_class_edges: BTreeSet<(String, String)>,
    /// Rolling tail of the executed steps, for failure diagnostics.
    trace: VecDeque<String>,
}

/// Per-execution configuration the runtime needs (a subset of
/// [`crate::model::Config`]).
#[derive(Debug, Clone)]
pub(crate) struct RtConfig {
    pub atomics_are_steps: bool,
    pub max_steps: usize,
    pub stall_timeout: Duration,
}

pub(crate) struct Execution {
    /// Distinguishes executions so lazily-assigned object ids from a
    /// previous schedule are never mistaken for this one's.
    pub(crate) epoch: u32,
    cfg: RtConfig,
    state: StdMutex<ExecState>,
    cond: StdCondvar,
}

/// Result of running one schedule to completion (or failure).
pub(crate) struct ExecOutcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<FailureKind>,
    pub trace: Vec<String>,
    pub lock_class_edges: Vec<(String, String)>,
}

// ---------------------------------------------------------------------------
// Thread-local context: which execution (if any) the current thread is in.
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the current thread's model context, or returns `None` when
/// the thread is uncontrolled (the passthrough path).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// `true` when the current thread runs under a model execution — used by
/// the panic hook to silence expected model-thread panics.
pub(crate) fn in_model_thread() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

// ---------------------------------------------------------------------------
// Lazy per-execution object identity.
// ---------------------------------------------------------------------------

/// Assigns an object (mutex, condvar, atomic, cell) an id in the current
/// execution's object table the first time it is touched there. Packed as
/// `epoch << 32 | (index + 1)` so an id from a previous execution is simply
/// re-registered.
#[derive(Debug, Default)]
pub(crate) struct LazyId {
    packed: std::sync::atomic::AtomicU64,
}

impl LazyId {
    pub(crate) const fn new() -> Self {
        LazyId {
            packed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn resolve(&self, ctx: &Ctx, kind: ObjKind, loc: &'static Location<'static>) -> usize {
        let packed = self.packed.load(Ordering::Relaxed);
        if packed != 0 && (packed >> 32) as u32 == ctx.exec.epoch {
            return (packed & 0xffff_ffff) as usize - 1;
        }
        let idx = ctx.exec.register_object(kind, loc);
        self.packed.store(
            (u64::from(ctx.exec.epoch) << 32) | (idx as u64 + 1),
            Ordering::Relaxed,
        );
        idx
    }
}

// ---------------------------------------------------------------------------
// Vector clocks.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// `self ≤ other` pointwise: everything recorded in `self` happened
    /// before `other`'s point of view.
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

static EPOCH: AtomicU32 = AtomicU32::new(1);

impl Execution {
    pub(crate) fn new(cfg: RtConfig, prefix: Vec<usize>) -> Self {
        Execution {
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
            cfg,
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                running: None,
                starting: 0,
                real_alive: 0,
                objects: Vec::new(),
                step: 0,
                decisions: Vec::new(),
                prefix,
                prefix_pos: 0,
                abort: false,
                failure: None,
                lock_graph: BTreeMap::new(),
                lock_class_edges: BTreeSet::new(),
                trace: VecDeque::new(),
            }),
            cond: StdCondvar::new(),
        }
    }

    fn st(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn register_object(&self, kind: ObjKind, loc: &'static Location<'static>) -> usize {
        let mut st = self.st();
        let state = match kind {
            ObjKind::Lock => ObjState::Lock {
                holder: None,
                vc: VClock::default(),
            },
            ObjKind::Cv => ObjState::Cv {
                waiters: VecDeque::new(),
            },
            ObjKind::Atomic => ObjState::Atomic {
                vc: VClock::default(),
            },
            ObjKind::Cell => ObjState::Cell {
                last_write: None,
                reads: Vec::new(),
            },
        };
        st.objects.push(ObjRec { state, loc });
        st.objects.len() - 1
    }

    /// Registers a new controlled thread (state `Starting`) and returns its
    /// id. Called under the announce of the parent's `Spawn` op, or by the
    /// controller for the root thread.
    fn register_thread(st: &mut ExecState, parent_vc: Option<&VClock>) -> usize {
        let tid = st.threads.len();
        let mut vc = parent_vc.cloned().unwrap_or_default();
        vc.tick(tid);
        st.threads.push(ThreadRec {
            state: TState::Starting,
            vc,
            held: Vec::new(),
            name: format!("t{tid}"),
        });
        // `starting`/`real_alive` are NOT bumped here: the real OS thread
        // only exists once the parent's `Spawn` op is applied (the
        // controller must not wait for a `Begin` that cannot come yet).
        tid
    }

    /// Accounts for a real OS thread that is now guaranteed to start:
    /// called when a `Spawn` op is applied (the parent performs the real
    /// spawn immediately after resuming, before its next schedule point)
    /// and for the root thread.
    fn mark_real_spawn(st: &mut ExecState) {
        st.starting += 1;
        st.real_alive += 1;
    }

    /// The schedule point: records the intent to perform `op`, parks until
    /// the controller schedules this thread, then returns so the caller can
    /// perform the real operation. During teardown the call either unwinds
    /// (fresh `ConcAbort` panic) or, if the thread is already unwinding,
    /// returns immediately as a no-op.
    fn announce(&self, tid: usize, op: Op) {
        let mut st = self.st();
        if op == Op::Begin {
            // Folded into the announce so the controller never observes
            // `starting == 0` with this thread still in `Starting` state
            // (which would look like a deadlock).
            st.starting -= 1;
        }
        if st.abort {
            drop(st);
            abort_unwind();
            return;
        }
        match op {
            Op::CondWait { cv, lock } => {
                // `Condvar::wait` semantics: release the mutex and enter the
                // wait queue in one indivisible step. The caller has already
                // dropped the *real* guard (safe: no other controlled thread
                // is running), so only the model state moves here.
                st.threads[tid].vc.tick(tid);
                Self::release_lock(&mut st, tid, lock);
                match &mut st.objects[cv].state {
                    ObjState::Cv { waiters } => waiters.push_back(tid),
                    other => unreachable!("cond wait on non-cv object: {other:?}"),
                }
                st.threads[tid].state = TState::CondBlocked { cv, lock };
            }
            _ => st.threads[tid].state = TState::Ready(op),
        }
        if st.running == Some(tid) {
            st.running = None;
        }
        self.cond.notify_all();
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
                return;
            }
            if st.threads[tid].state == TState::Running {
                return;
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Condvar-wait announce needs a dedicated op because `Op::CondWait`
    /// never appears in a `Ready` state (the wait itself is immediate; only
    /// the re-acquisition is scheduled).
    fn announce_cond_wait(&self, tid: usize, cv: usize, lock: usize) {
        self.announce(tid, Op::CondWait { cv, lock });
    }

    fn release_lock(st: &mut ExecState, tid: usize, obj: usize) {
        let thread_vc = st.threads[tid].vc.clone();
        match &mut st.objects[obj].state {
            ObjState::Lock { holder, vc } => {
                debug_assert_eq!(*holder, Some(tid), "unlock of a lock not held");
                *holder = None;
                *vc = thread_vc;
            }
            other => unreachable!("unlock of non-lock object: {other:?}"),
        }
        st.threads[tid].held.retain(|&h| h != obj);
    }

    /// Applies the model-state effects of scheduling `tid`'s announced op.
    /// Runs in the controller, under the state lock; may set a failure
    /// (lock-order cycle, data race).
    fn apply_op(&self, st: &mut ExecState, tid: usize) {
        let op = match &st.threads[tid].state {
            TState::Ready(op) => *op,
            other => unreachable!("scheduling a non-ready thread: {other:?}"),
        };
        st.threads[tid].vc.tick(tid);
        let entry = format!(
            "step {:>4}: {} {}",
            st.step,
            st.threads[tid].name,
            describe_op(st, &op)
        );
        st.trace.push_back(entry);
        if st.trace.len() > 512 {
            st.trace.pop_front();
        }
        match op {
            Op::Begin | Op::Yield => {}
            Op::Lock { obj, .. } => {
                let thread_vc = {
                    match &mut st.objects[obj].state {
                        ObjState::Lock { holder, vc } => {
                            debug_assert!(holder.is_none(), "lock granted while held");
                            *holder = Some(tid);
                            vc.clone()
                        }
                        other => unreachable!("lock of non-lock object: {other:?}"),
                    }
                };
                st.threads[tid].vc.join(&thread_vc);
                self.record_lock_order(st, tid, obj);
                st.threads[tid].held.push(obj);
            }
            Op::Unlock { obj } => Self::release_lock(st, tid, obj),
            Op::NotifyOne { cv } => {
                let woken = match &mut st.objects[cv].state {
                    ObjState::Cv { waiters } => waiters.pop_front(),
                    other => unreachable!("notify of non-cv object: {other:?}"),
                };
                if let Some(w) = woken {
                    self.wake_waiter(st, tid, w);
                }
            }
            Op::NotifyAll { cv } => {
                let woken: Vec<usize> = match &mut st.objects[cv].state {
                    ObjState::Cv { waiters } => waiters.drain(..).collect(),
                    other => unreachable!("notify of non-cv object: {other:?}"),
                };
                for w in woken {
                    self.wake_waiter(st, tid, w);
                }
            }
            Op::Atomic { obj } => Self::atomic_hb(st, tid, obj),
            Op::CellRead { obj } => {
                let reader_vc = st.threads[tid].vc.clone();
                let loc = st.objects[obj].loc;
                let mut race: Option<String> = None;
                match &mut st.objects[obj].state {
                    ObjState::Cell { last_write, reads } => {
                        if let Some((wtid, wvc)) = last_write {
                            if *wtid != tid && !wvc.le(&reader_vc) {
                                race = Some(format!(
                                    "t{tid} read CheckedCell@{} concurrently with t{wtid}'s write",
                                    fmt_loc(loc)
                                ));
                            }
                        }
                        if race.is_none() {
                            reads.push((tid, reader_vc));
                        }
                    }
                    other => unreachable!("cell read of non-cell object: {other:?}"),
                }
                if let Some(msg) = race {
                    st.failure.get_or_insert(FailureKind::DataRace(msg));
                }
            }
            Op::CellWrite { obj } => {
                let writer_vc = st.threads[tid].vc.clone();
                let loc = st.objects[obj].loc;
                let mut race: Option<String> = None;
                match &mut st.objects[obj].state {
                    ObjState::Cell { last_write, reads } => {
                        if let Some((wtid, wvc)) = last_write {
                            if *wtid != tid && !wvc.le(&writer_vc) {
                                race = Some(format!(
                                    "t{tid} wrote CheckedCell@{} concurrently with t{wtid}'s write",
                                    fmt_loc(loc)
                                ));
                            }
                        }
                        if race.is_none() {
                            for (rtid, rvc) in reads.iter() {
                                if *rtid != tid && !rvc.le(&writer_vc) {
                                    race = Some(format!(
                                        "t{tid} wrote CheckedCell@{} concurrently with t{rtid}'s \
                                         read",
                                        fmt_loc(loc)
                                    ));
                                    break;
                                }
                            }
                        }
                        if race.is_none() {
                            *last_write = Some((tid, writer_vc));
                            reads.clear();
                        }
                    }
                    other => unreachable!("cell write of non-cell object: {other:?}"),
                }
                if let Some(msg) = race {
                    st.failure.get_or_insert(FailureKind::DataRace(msg));
                }
            }
            Op::Spawn { child } => {
                let parent_vc = st.threads[tid].vc.clone();
                st.threads[child].vc.join(&parent_vc);
                Self::mark_real_spawn(st);
            }
            Op::Join { target } => {
                let target_vc = st.threads[target].vc.clone();
                st.threads[tid].vc.join(&target_vc);
            }
            Op::CondWait { .. } => unreachable!("cond wait is applied at announce time"),
        }
    }

    /// HB bookkeeping for an atomic access: conservatively acquire+release
    /// (thread and atomic clocks join both ways).
    fn atomic_hb(st: &mut ExecState, tid: usize, obj: usize) {
        let thread_vc = st.threads[tid].vc.clone();
        match &mut st.objects[obj].state {
            ObjState::Atomic { vc } => {
                let obj_vc = vc.clone();
                vc.join(&thread_vc);
                st.threads[tid].vc.join(&obj_vc);
            }
            other => unreachable!("atomic op on non-atomic object: {other:?}"),
        }
    }

    fn wake_waiter(&self, st: &mut ExecState, notifier: usize, waiter: usize) {
        let notifier_vc = st.threads[notifier].vc.clone();
        st.threads[waiter].vc.join(&notifier_vc);
        let lock = match st.threads[waiter].state {
            TState::CondBlocked { lock, .. } => lock,
            ref other => unreachable!("woke a non-waiting thread: {other:?}"),
        };
        st.threads[waiter].state = TState::Ready(Op::Lock {
            obj: lock,
            from_wait: true,
        });
    }

    /// Adds `held → acquired` edges and fails on a cycle in the
    /// instance-level graph (class-level edges are kept for the report).
    fn record_lock_order(&self, st: &mut ExecState, tid: usize, acquired: usize) {
        let held = st.threads[tid].held.clone();
        for &h in &held {
            if h == acquired {
                continue;
            }
            st.lock_graph.entry(h).or_default().insert(acquired);
            let from = fmt_loc(st.objects[h].loc);
            let to = fmt_loc(st.objects[acquired].loc);
            if from != to {
                st.lock_class_edges.insert((from, to));
            }
        }
        // Cycle check from `acquired`: can we get back to anything held?
        if held.is_empty() {
            return;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![acquired];
        let mut cycle_with: Option<usize> = None;
        'dfs: while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(succs) = st.lock_graph.get(&n) {
                for &s in succs {
                    if held.contains(&s) {
                        cycle_with = Some(s);
                        break 'dfs;
                    }
                    stack.push(s);
                }
            }
        }
        if let Some(s) = cycle_with {
            let kind = FailureKind::LockOrderCycle(format!(
                "t{tid} acquired {} while holding {}, reversing an earlier order",
                fmt_loc(st.objects[acquired].loc),
                fmt_loc(st.objects[s].loc),
            ));
            st.failure.get_or_insert(kind);
        }
    }

    /// Marks `tid` exited. Called by the thread wrapper after the user
    /// closure returned or unwound; never parks.
    fn thread_exit(&self, tid: usize) {
        let mut st = self.st();
        st.threads[tid].vc.tick(tid);
        st.threads[tid].state = TState::Exited;
        if st.running == Some(tid) {
            st.running = None;
        }
        st.real_alive -= 1;
        self.cond.notify_all();
    }

    /// Records a panic that escaped a controlled thread and tears the
    /// execution down.
    fn record_leaked_panic(&self, tid: usize, msg: String) {
        let mut st = self.st();
        let name = st.threads[tid].name.clone();
        st.failure
            .get_or_insert(FailureKind::Panic(format!("{name} panicked: {msg}")));
        st.abort = true;
        self.cond.notify_all();
    }

    fn enabled(st: &ExecState, tid: usize) -> bool {
        match &st.threads[tid].state {
            TState::Ready(op) => match *op {
                Op::Lock { obj, .. } => {
                    matches!(st.objects[obj].state, ObjState::Lock { holder: None, .. })
                }
                Op::Join { target } => st.threads[target].state == TState::Exited,
                _ => true,
            },
            _ => false,
        }
    }

    /// Human-readable account of why nothing is runnable.
    fn blocked_summary(st: &ExecState) -> (String, bool) {
        let mut parts = Vec::new();
        let mut any_cond = false;
        for (tid, t) in st.threads.iter().enumerate() {
            match &t.state {
                TState::Ready(Op::Lock { obj, from_wait }) => {
                    let holder = match &st.objects[*obj].state {
                        ObjState::Lock { holder, .. } => *holder,
                        _ => None,
                    };
                    // A woken waiter stuck re-acquiring is a mutex block,
                    // not a missing notify.
                    let what = if *from_wait {
                        "re-acquiring"
                    } else {
                        "acquiring"
                    };
                    parts.push(format!(
                        "t{tid} blocked {what} Mutex@{}{}",
                        fmt_loc(st.objects[*obj].loc),
                        holder.map(|h| format!(" held by t{h}")).unwrap_or_default()
                    ));
                }
                TState::Ready(Op::Join { target }) => {
                    parts.push(format!("t{tid} blocked joining t{target}"));
                }
                TState::CondBlocked { cv, .. } => {
                    any_cond = true;
                    parts.push(format!(
                        "t{tid} waiting on Condvar@{} with no notify in flight",
                        fmt_loc(st.objects[*cv].loc)
                    ));
                }
                _ => {}
            }
        }
        (parts.join("; "), any_cond)
    }
}

fn fmt_loc(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

fn describe_op(st: &ExecState, op: &Op) -> String {
    match *op {
        Op::Begin => "begin".into(),
        Op::Lock { obj, from_wait } => format!(
            "{}(Mutex@{})",
            if from_wait { "reacquire" } else { "lock" },
            fmt_loc(st.objects[obj].loc)
        ),
        Op::Unlock { obj } => format!("unlock(Mutex@{})", fmt_loc(st.objects[obj].loc)),
        Op::NotifyOne { cv } => format!("notify_one(Condvar@{})", fmt_loc(st.objects[cv].loc)),
        Op::NotifyAll { cv } => format!("notify_all(Condvar@{})", fmt_loc(st.objects[cv].loc)),
        Op::Atomic { obj } => format!("atomic(@{})", fmt_loc(st.objects[obj].loc)),
        Op::CellRead { obj } => format!("cell_read(@{})", fmt_loc(st.objects[obj].loc)),
        Op::CellWrite { obj } => format!("cell_write(@{})", fmt_loc(st.objects[obj].loc)),
        Op::Spawn { child } => format!("spawn(t{child})"),
        Op::Join { target } => format!("join(t{target})"),
        Op::Yield => "yield".into(),
        Op::CondWait { cv, .. } => format!("cond_wait(Condvar@{})", fmt_loc(st.objects[cv].loc)),
    }
}

/// Unwinds the calling thread out of the aborted execution, unless it is
/// already unwinding (in which case every subsequent schedule point is a
/// no-op so drop glue can run to completion).
pub(crate) fn abort_unwind() {
    if !std::thread::panicking() {
        std::panic::panic_any(ConcAbort);
    }
}

// ---------------------------------------------------------------------------
// Public-ish entry points used by the wrapper types in sync/atomic/thread.
// ---------------------------------------------------------------------------

pub(crate) fn op_lock(id: &LazyId, loc: &'static Location<'static>) {
    let _ = with_ctx(|ctx| {
        let obj = id.resolve(ctx, ObjKind::Lock, loc);
        ctx.exec.announce(
            ctx.tid,
            Op::Lock {
                obj,
                from_wait: false,
            },
        );
    });
}

pub(crate) fn op_unlock(id: &LazyId, loc: &'static Location<'static>) {
    let _ = with_ctx(|ctx| {
        let obj = id.resolve(ctx, ObjKind::Lock, loc);
        ctx.exec.announce(ctx.tid, Op::Unlock { obj });
    });
}

/// Returns `true` when the wait was handled by the model (the caller must
/// have dropped the real guard first, and must re-lock the real mutex on
/// return); `false` on the passthrough path.
pub(crate) fn op_cond_wait(
    cv_id: &LazyId,
    cv_loc: &'static Location<'static>,
    lock_id: &LazyId,
    lock_loc: &'static Location<'static>,
) -> bool {
    with_ctx(|ctx| {
        let cv = cv_id.resolve(ctx, ObjKind::Cv, cv_loc);
        let lock = lock_id.resolve(ctx, ObjKind::Lock, lock_loc);
        ctx.exec.announce_cond_wait(ctx.tid, cv, lock);
    })
    .is_some()
}

pub(crate) fn op_notify(id: &LazyId, loc: &'static Location<'static>, all: bool) {
    let _ = with_ctx(|ctx| {
        let cv = id.resolve(ctx, ObjKind::Cv, loc);
        let op = if all {
            Op::NotifyAll { cv }
        } else {
            Op::NotifyOne { cv }
        };
        ctx.exec.announce(ctx.tid, op);
    });
}

pub(crate) fn op_atomic(id: &LazyId, loc: &'static Location<'static>) {
    let _ = with_ctx(|ctx| {
        let obj = id.resolve(ctx, ObjKind::Atomic, loc);
        if ctx.exec.cfg.atomics_are_steps {
            ctx.exec.announce(ctx.tid, Op::Atomic { obj });
        } else {
            // Not a scheduling point, but still a happens-before edge: the
            // controller is idle (this thread is the running one), so the
            // state lock is free.
            let mut st = ctx.exec.st();
            if !st.abort {
                st.threads[ctx.tid].vc.tick(ctx.tid);
                Execution::atomic_hb(&mut st, ctx.tid, obj);
            }
        }
    });
}

pub(crate) fn op_cell(id: &LazyId, loc: &'static Location<'static>, write: bool) {
    let _ = with_ctx(|ctx| {
        let obj = id.resolve(ctx, ObjKind::Cell, loc);
        let op = if write {
            Op::CellWrite { obj }
        } else {
            Op::CellRead { obj }
        };
        ctx.exec.announce(ctx.tid, op);
    });
}

pub(crate) fn op_yield() {
    let _ = with_ctx(|ctx| ctx.exec.announce(ctx.tid, Op::Yield));
}

/// Spawns a controlled thread: registers the child and announces the spawn
/// (one schedule point), then starts the real thread. Returns the closure
/// unchanged (`Err`) on the passthrough path — including the corner where
/// an already-unwinding thread hits execution teardown, in which case the
/// caller runs it uncontrolled against the dying execution's wreckage.
pub(crate) fn op_spawn<T, F>(f: F) -> Result<(usize, std::thread::JoinHandle<Option<T>>), F>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(ctx) = with_ctx(Clone::clone) else {
        return Err(f);
    };
    let child = {
        let mut st = ctx.exec.st();
        if st.abort {
            drop(st);
            if std::thread::panicking() {
                return Err(f);
            }
            std::panic::panic_any(ConcAbort);
        }
        let parent_vc = st.threads[ctx.tid].vc.clone();
        Execution::register_thread(&mut st, Some(&parent_vc))
    };
    ctx.exec.announce(ctx.tid, Op::Spawn { child });
    // The parent is the running thread from here until its next schedule
    // point, so the real spawn below always happens before anyone else can
    // observe (or join) the child.
    let exec = Arc::clone(&ctx.exec);
    let real = std::thread::spawn(move || run_controlled(exec, child, f));
    Ok((child, real))
}

pub(crate) fn op_join(tid: usize) {
    let _ = with_ctx(|ctx| ctx.exec.announce(ctx.tid, Op::Join { target: tid }));
}

/// Body of every controlled OS thread: park at `Begin`, run the user
/// closure, classify the way it ended. Returns `None` when the execution
/// was aborted under this thread (its result is meaningless then).
fn run_controlled<T, F>(exec: Arc<Execution>, tid: usize, f: F) -> Option<T>
where
    F: FnOnce() -> T,
{
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The Begin announce decrements `starting` under the state lock.
        exec.announce(tid, Op::Begin);
        f()
    }));
    let out = match result {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<ConcAbort>().is_none() {
                exec.record_leaked_panic(tid, panic_message(payload.as_ref()));
            }
            None
        }
    };
    exec.thread_exit(tid);
    CTX.with(|c| *c.borrow_mut() = None);
    out
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// The controller: runs one schedule.
// ---------------------------------------------------------------------------

/// Seeded choice among `candidates` (used when the schedule prefix is
/// exhausted and the previously-running thread is not continuable).
fn seeded_pick(seed: u64, depth: usize, candidates: &[usize]) -> usize {
    let mut x = seed ^ (depth as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    candidates[(x % candidates.len() as u64) as usize]
}

/// Runs the body once under the given schedule prefix; past the prefix the
/// controller prefers the previously-running thread (no preemption) and
/// otherwise picks by seed. Returns the decision sequence and any failure.
pub(crate) fn run_schedule(
    cfg: &RtConfig,
    prefix: Vec<usize>,
    seed: u64,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> ExecOutcome {
    let exec = Arc::new(Execution::new(cfg.clone(), prefix));
    let root_body = Arc::clone(body);
    {
        let mut st = exec.st();
        let root = Execution::register_thread(&mut st, None);
        debug_assert_eq!(root, 0);
        Execution::mark_real_spawn(&mut st);
        drop(st);
        let exec2 = Arc::clone(&exec);
        // The root's real handle is intentionally dropped: `real_alive`
        // tracks its lifetime, and its wrapper result carries nothing.
        let _ = std::thread::spawn(move || run_controlled(exec2, root, move || root_body()));
    }

    let mut prev: Option<usize> = None;
    loop {
        let mut st = exec.st();
        // Quiesce: wait until no thread is running and no spawn is pending.
        let mut stalled = false;
        while st.running.is_some() || st.starting > 0 {
            let (guard, timeout) = exec
                .cond
                .wait_timeout(st, cfg.stall_timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() && (st.running.is_some() || st.starting > 0) {
                stalled = true;
                break;
            }
        }
        if stalled {
            let running = st.running;
            st.failure.get_or_insert(FailureKind::Stall(format!(
                "thread {:?} did not reach a schedule point within {:?} — is it blocked on a \
                 non-conc primitive?",
                running, cfg.stall_timeout
            )));
            st.abort = true;
            exec.cond.notify_all();
            break;
        }
        if st.failure.is_some() {
            st.abort = true;
            exec.cond.notify_all();
            break;
        }
        let live: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].state != TState::Exited)
            .collect();
        if live.is_empty() {
            break;
        }
        let enabled: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&t| Execution::enabled(&st, t))
            .collect();
        if enabled.is_empty() {
            let (summary, any_cond) = Execution::blocked_summary(&st);
            let failure = if any_cond {
                FailureKind::LostWakeup(summary)
            } else {
                FailureKind::Deadlock(summary)
            };
            st.failure.get_or_insert(failure);
            st.abort = true;
            exec.cond.notify_all();
            break;
        }
        if st.step >= cfg.max_steps {
            st.failure.get_or_insert(FailureKind::StepLimit(format!(
                "execution exceeded {} steps (livelock, or raise Config::max_steps)",
                cfg.max_steps
            )));
            st.abort = true;
            exec.cond.notify_all();
            break;
        }
        let chosen = if st.prefix_pos < st.prefix.len() {
            let want = st.prefix[st.prefix_pos];
            st.prefix_pos += 1;
            if !enabled.contains(&want) {
                let step = st.step;
                st.failure
                    .get_or_insert(FailureKind::Nondeterminism(format!(
                        "replay chose t{want} at step {step} but enabled set is {enabled:?}"
                    )));
                st.abort = true;
                exec.cond.notify_all();
                break;
            }
            want
        } else if prev.is_some_and(|p| enabled.contains(&p)) {
            // Default policy: keep running the same thread — baseline
            // schedules are preemption-free, and the explorer injects the
            // preemptions deliberately.
            prev.expect("checked above")
        } else {
            seeded_pick(seed, st.step, &enabled)
        };
        let ops: Vec<Op> = enabled
            .iter()
            .map(|&t| match &st.threads[t].state {
                TState::Ready(op) => *op,
                other => unreachable!("enabled thread not ready: {other:?}"),
            })
            .collect();
        st.decisions.push(Decision {
            enabled: enabled.clone(),
            ops,
            chosen,
            prev,
        });
        exec.apply_op(&mut st, chosen);
        if st.failure.is_some() {
            st.abort = true;
            exec.cond.notify_all();
            break;
        }
        st.step += 1;
        st.threads[chosen].state = TState::Running;
        st.running = Some(chosen);
        prev = Some(chosen);
        exec.cond.notify_all();
        drop(st);
    }

    // Teardown: wait for every real thread to finish its wrapper so the
    // next schedule starts from a clean slate. Aborted threads unwind via
    // `ConcAbort`; a thread stuck outside conc primitives would stall, so
    // this wait is bounded too (and the stall is already reported).
    {
        let mut st = exec.st();
        let deadline = Instant::now() + cfg.stall_timeout;
        while st.real_alive > 0 {
            let now = Instant::now();
            if now >= deadline {
                st.failure.get_or_insert(FailureKind::Stall(
                    "threads did not unwind during teardown".to_string(),
                ));
                break;
            }
            let (guard, _) = exec
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
    }

    let mut st = exec.st();
    ExecOutcome {
        decisions: std::mem::take(&mut st.decisions),
        failure: st.failure.clone(),
        trace: st.trace.iter().cloned().collect(),
        lock_class_edges: st.lock_class_edges.iter().cloned().collect(),
    }
}
