//! `conc` — the workspace's sync abstraction layer, in the CDSChecker/loom
//! lineage of *stateless model checking*.
//!
//! Every concurrent component in this workspace (the work-stealing
//! [`SamplerService`](../unigen/service/index.html) above all) builds on the
//! primitives in this crate instead of `std::sync` / `std::thread` — a rule
//! the repo lint (`cargo run -p xtask -- lint`) enforces. The types mirror
//! the `std` API exactly, and come with two backends:
//!
//! * **Passthrough** (default): `#[inline]` newtypes over the `std`
//!   primitives. Zero cost — production builds compile to exactly the code
//!   they compiled to before the abstraction existed.
//! * **Model checking** (`feature = "model"`): every operation first asks a
//!   thread-local *execution context* whether the current thread is running
//!   under the controlled scheduler. If it is, the operation becomes a
//!   *schedule point*: the thread parks, and a deterministic controller
//!   decides which thread runs next. `model::check` then explores the
//!   tree of such decisions — depth-first, with seeded alternative
//!   ordering, a sleep-set (DPOR-style) reduction, and a bounded number of
//!   preemptions — and reports the first schedule that panics, deadlocks,
//!   loses a wakeup, reverses a lock order, or races on a
//!   `cell::CheckedCell`.
//!
//! Because the dispatch is per-thread and at runtime, model-checked tests
//! and ordinary tests coexist in one binary: a test calls
//! `model::check` with a closure, and only the threads spawned inside
//! that closure are controlled. Everything outside runs on the passthrough
//! path even when the feature is compiled in.
//!
//! # What the checker models (and what it does not)
//!
//! Schedule points are mutex lock/unlock, condvar wait/notify, spawn/join,
//! [`thread::yield_now`], and `cell::CheckedCell` accesses. Atomics are
//! tracked for happens-before (conservatively, as if every access were
//! acquire+release) but are **not** scheduling points by default — the
//! workspace only uses them for monotone counters that no control flow
//! branches on; set `model::Config::atomics_are_steps` to explore them
//! too. Weak memory is not modelled at all (every execution is sequentially
//! consistent), `std::thread::scope` is passthrough-only, and condvar waits
//! never wake spuriously (waiters are woken FIFO). These are the standard
//! loom-lite trade-offs: the checker proves *protocol* properties — slot
//! accounting, wakeup chains, teardown — not memory-ordering ones; the
//! optional ThreadSanitizer CI lane covers the latter.
//!
//! # Writing a model-checked test
//!
//! ```
//! # #[cfg(feature = "model")] {
//! use conc::sync::{Mutex, Condvar};
//! use std::sync::Arc;
//!
//! let report = conc::model::check(conc::model::Config::default(), || {
//!     let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
//!     let p2 = Arc::clone(&pair);
//!     let t = conc::thread::spawn(move || {
//!         let (m, cv) = &*p2;
//!         *m.lock().unwrap() += 1;
//!         cv.notify_one();
//!     });
//!     let (m, cv) = &*pair;
//!     let mut g = m.lock().unwrap();
//!     while *g == 0 {
//!         g = cv.wait(g).unwrap();
//!     }
//!     drop(g);
//!     t.join().unwrap();
//! });
//! assert!(report.failure.is_none(), "{report}");
//! # }
//! ```
//!
//! The closure runs once per explored schedule, so everything it owns must
//! be (re)created inside it; sharing state across schedules through
//! captured `Arc`s defeats the exploration. `CONC_SCHEDULES`,
//! `CONC_PREEMPTIONS` and `CONC_SEED` tune `model::Config::from_env`.
//!
//! # Teardown discipline
//!
//! A `Drop` impl that joins threads must swallow join errors when
//! `std::thread::panicking()` — the same rule that avoids double-panic
//! aborts under plain `std` — because the checker tears failed executions
//! down by unwinding every controlled thread.

#![forbid(unsafe_code)]

pub mod atomic;
pub mod sync;
pub mod thread;

#[cfg(feature = "model")]
pub mod cell;
#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub(crate) mod rt;
