//! Thread spawning and joining, mirroring `std::thread`.
//!
//! [`spawn`] returns a [`JoinHandle`] with the `std` semantics: `join`
//! propagates the child's panic payload as `Err`. Under the model backend
//! a spawn and a join are each one schedule point, and a child that was
//! unwound by execution teardown makes `join` participate in the teardown
//! instead of returning a result.
//!
//! [`scope`] is passthrough-only: scoped borrows tie thread lifetimes to a
//! stack frame the controlled scheduler cannot park safely, and the only
//! user ([`ParallelSampler`](../../unigen/parallel/index.html)) is already
//! covered end-to-end by bit-identity tests. Calling it from inside
//! `crate::model::check` panics with a pointer at [`spawn`].

pub use std::thread::{Result, Scope, ScopedJoinHandle};

#[cfg(feature = "model")]
use crate::rt;

/// An owned permission to join on a thread, mirroring
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

enum Imp<T> {
    Real(std::thread::JoinHandle<T>),
    #[cfg(feature = "model")]
    Model {
        tid: usize,
        real: std::thread::JoinHandle<Option<T>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning `Err` with the panic
    /// payload if it panicked.
    pub fn join(self) -> Result<T> {
        match self.imp {
            Imp::Real(h) => h.join(),
            #[cfg(feature = "model")]
            Imp::Model { tid, real } => {
                rt::op_join(tid);
                match real.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => {
                        // The child was unwound by execution teardown; its
                        // failure (if it was the origin) is already
                        // recorded, so this thread just joins the teardown.
                        if std::thread::panicking() {
                            Err(Box::new("conc model execution aborted"))
                        } else {
                            rt::abort_unwind();
                            unreachable!("abort_unwind returns only while panicking")
                        }
                    }
                    Err(payload) => Err(payload),
                }
            }
        }
    }

    /// Whether the thread has finished running (never a schedule point).
    pub fn is_finished(&self) -> bool {
        match &self.imp {
            Imp::Real(h) => h.is_finished(),
            #[cfg(feature = "model")]
            Imp::Model { real, .. } => real.is_finished(),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Spawns a new thread, mirroring `std::thread::spawn`. One schedule point
/// under the model backend; the child's first instruction is its own
/// schedule point, so the explorer can run parent and child in either
/// order from the start.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "model")]
    let f = match rt::op_spawn(f) {
        Ok((tid, real)) => {
            return JoinHandle {
                imp: Imp::Model { tid, real },
            };
        }
        Err(f) => f,
    };
    JoinHandle {
        imp: Imp::Real(std::thread::spawn(f)),
    }
}

/// Creates a scope for spawning scoped threads. Passthrough-only — panics
/// when called from a model-checked thread (use [`spawn`] there).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    #[cfg(feature = "model")]
    assert!(
        !rt::in_model_thread(),
        "conc::thread::scope is passthrough-only; model-checked code must use conc::thread::spawn"
    );
    std::thread::scope(f)
}

/// Cooperatively yields. A pure schedule point under the model backend (it
/// has no semantic effect, but gives the explorer a place to preempt).
pub fn yield_now() {
    #[cfg(feature = "model")]
    rt::op_yield();
    std::thread::yield_now();
}

/// The number of hardware threads, mirroring
/// `std::thread::available_parallelism`.
pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
    std::thread::available_parallelism()
}
