//! Atomic integers and booleans, mirroring `std::sync::atomic`.
//!
//! Under the model backend every access is tracked for happens-before
//! (conservatively, as if it were acquire+release — the workspace only
//! uses atomics for monotone stats counters and flags, never as the sole
//! ordering between data accesses), but it is **not** a schedule point
//! unless `crate::model::Config::atomics_are_steps` is set. That keeps
//! the explored state space focused on the lock/condvar protocol, which
//! is where the service's actual invariants live.

pub use std::sync::atomic::Ordering;

#[cfg(feature = "model")]
use crate::rt;

macro_rules! atomic_int {
    ($(#[$meta:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$meta])*
        pub struct $name {
            inner: std::sync::atomic::$std,
            #[cfg(feature = "model")]
            id: rt::LazyId,
            #[cfg(feature = "model")]
            loc: &'static std::panic::Location<'static>,
        }

        impl $name {
            /// Creates a new atomic integer.
            #[track_caller]
            #[inline]
            pub fn new(value: $int) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(value),
                    #[cfg(feature = "model")]
                    id: rt::LazyId::new(),
                    #[cfg(feature = "model")]
                    loc: std::panic::Location::caller(),
                }
            }

            #[cfg(feature = "model")]
            #[inline]
            fn track(&self) {
                rt::op_atomic(&self.id, self.loc);
            }

            #[cfg(not(feature = "model"))]
            #[inline]
            fn track(&self) {}

            /// Loads the value.
            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                self.track();
                self.inner.load(order)
            }

            /// Stores a value.
            #[inline]
            pub fn store(&self, value: $int, order: Ordering) {
                self.track();
                self.inner.store(value, order)
            }

            /// Adds to the value, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                self.track();
                self.inner.fetch_add(value, order)
            }

            /// Subtracts from the value, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                self.track();
                self.inner.fetch_sub(value, order)
            }

            /// Maximum with the value, returning the previous value.
            #[inline]
            pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                self.track();
                self.inner.fetch_max(value, order)
            }

            /// Swaps the value, returning the previous value.
            #[inline]
            pub fn swap(&self, value: $int, order: Ordering) -> $int {
                self.track();
                self.inner.swap(value, order)
            }

            /// Mutable access without synchronization (never a schedule
            /// point — `&mut` proves exclusivity).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl Default for $name {
            #[track_caller]
            fn default() -> Self {
                $name::new(0)
            }
        }
    };
}

atomic_int!(
    /// An atomic `u32` with the `std::sync::atomic::AtomicU32` API.
    AtomicU32,
    AtomicU32,
    u32
);
atomic_int!(
    /// An atomic `u64` with the `std::sync::atomic::AtomicU64` API.
    AtomicU64,
    AtomicU64,
    u64
);
atomic_int!(
    /// An atomic `usize` with the `std::sync::atomic::AtomicUsize` API.
    AtomicUsize,
    AtomicUsize,
    usize
);

/// An atomic boolean with the `std::sync::atomic::AtomicBool` API.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    #[cfg(feature = "model")]
    id: rt::LazyId,
    #[cfg(feature = "model")]
    loc: &'static std::panic::Location<'static>,
}

impl AtomicBool {
    /// Creates a new atomic boolean.
    #[track_caller]
    #[inline]
    pub fn new(value: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
            #[cfg(feature = "model")]
            id: rt::LazyId::new(),
            #[cfg(feature = "model")]
            loc: std::panic::Location::caller(),
        }
    }

    #[cfg(feature = "model")]
    #[inline]
    fn track(&self) {
        rt::op_atomic(&self.id, self.loc);
    }

    #[cfg(not(feature = "model"))]
    #[inline]
    fn track(&self) {}

    /// Loads the value.
    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        self.track();
        self.inner.load(order)
    }

    /// Stores a value.
    #[inline]
    pub fn store(&self, value: bool, order: Ordering) {
        self.track();
        self.inner.store(value, order)
    }

    /// Swaps the value, returning the previous value.
    #[inline]
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.track();
        self.inner.swap(value, order)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl Default for AtomicBool {
    #[track_caller]
    fn default() -> Self {
        AtomicBool::new(false)
    }
}
