//! The model checker: schedule exploration over the controlled runtime.
//!
//! [`check`] runs a closure once per *schedule* — a sequence of
//! thread-scheduling decisions — exploring the decision tree depth-first:
//!
//! * The baseline schedule never preempts: a thread runs until it blocks.
//!   The explorer then backtracks to the deepest decision point with an
//!   untried alternative and replays the prefix, so every new schedule
//!   differs from all earlier ones (`Report::distinct_schedules` counts
//!   exact decision sequences).
//! * A **preemption bound** ([`Config::preemption_bound`]) caps how many
//!   times a schedule may switch away from a runnable thread —
//!   context-bounded search in the CHESS tradition: almost all real
//!   concurrency bugs manifest within two preemptions, and the bound
//!   keeps the tree polynomial instead of exponential in depth.
//! * A **sleep-set reduction** (DPOR-style) prunes alternatives that
//!   provably commute with an already-explored branch — running them
//!   would reproduce a Mazurkiewicz-equivalent trace.
//!
//! A schedule fails by panicking, deadlocking, losing a wakeup, reversing
//! the lock order, exceeding the step limit, or racing on a
//! [`crate::cell::CheckedCell`]; the first failing schedule is returned in
//! [`Report::failure`] with a trace of its final steps. When the whole
//! bounded tree is explored without failure, [`Report::complete`] is set —
//! a stronger guarantee than any schedule count.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use crate::rt::{self, dependent, Decision, Op};

pub use crate::rt::FailureKind;

/// Exploration parameters for [`check`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of schedules to explore before giving up on
    /// completeness. Env override: `CONC_SCHEDULES`.
    pub max_schedules: u64,
    /// Maximum preemptive context switches per schedule (switches away
    /// from a still-runnable thread). Env override: `CONC_PREEMPTIONS`.
    pub preemption_bound: usize,
    /// Seed for the scheduling choices the bound leaves open. Env
    /// override: `CONC_SEED`.
    pub seed: u64,
    /// Treat atomic accesses as schedule points (defaults to off: the
    /// workspace uses atomics only for counters nothing branches on, and
    /// exploring them would blow up the tree).
    pub atomics_are_steps: bool,
    /// Per-schedule step limit — the livelock guard.
    pub max_steps: usize,
    /// How long the controller waits for a thread to reach a schedule
    /// point before declaring the execution stalled.
    pub stall_timeout: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 1200,
            preemption_bound: 2,
            seed: 0xDAC_2014,
            atomics_are_steps: false,
            max_steps: 20_000,
            stall_timeout: Duration::from_secs(20),
        }
    }
}

impl Config {
    /// [`Config::default`] with `CONC_SCHEDULES` / `CONC_PREEMPTIONS` /
    /// `CONC_SEED` environment overrides applied — how CI widens the
    /// smoke budget without touching test code.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(v) = env_parse("CONC_SCHEDULES") {
            cfg.max_schedules = v;
        }
        if let Some(v) = env_parse("CONC_PREEMPTIONS") {
            cfg.preemption_bound = v as usize;
        }
        if let Some(v) = env_parse("CONC_SEED") {
            cfg.seed = v;
        }
        cfg
    }
}

fn env_parse(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A failing schedule: what went wrong, the decision sequence that
/// produced it, and the tail of its step trace.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The failure classification and message.
    pub kind: FailureKind,
    /// The thread chosen at each decision point — replayable by feeding
    /// it back as a fixed schedule (stable for a fixed body and seed).
    pub schedule: Vec<usize>,
    /// The last executed steps, most recent last.
    pub trace: Vec<String>,
}

/// The result of a [`check`] exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed (every one a distinct decision sequence).
    pub schedules: u64,
    /// Alias of `schedules` — the explorer is depth-first over a tree, so
    /// it never replays a complete schedule it has already run.
    pub distinct_schedules: u64,
    /// The bounded schedule tree was exhausted: every schedule within the
    /// preemption bound was explored (up to sleep-set equivalence).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
    /// Deepest decision sequence seen.
    pub max_depth: usize,
    /// Class-level lock-order edges (`held → acquired`, labelled by the
    /// locks' construction sites) observed across all schedules.
    pub lock_order_edges: Vec<(String, String)>,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model check: {} schedule(s) explored ({}), max depth {}",
            self.schedules,
            if self.complete {
                "state space exhausted within bounds"
            } else {
                "budget exhausted"
            },
            self.max_depth,
        )?;
        if !self.lock_order_edges.is_empty() {
            writeln!(f, "lock-order edges:")?;
            for (from, to) in &self.lock_order_edges {
                writeln!(f, "  {from} -> {to}")?;
            }
        }
        match &self.failure {
            None => write!(f, "no failure found"),
            Some(fail) => {
                writeln!(f, "FAILED: {}", fail.kind)?;
                writeln!(f, "schedule: {:?}", fail.schedule)?;
                writeln!(f, "trace (last {} steps):", fail.trace.len())?;
                for line in &fail.trace {
                    writeln!(f, "  {line}")?;
                }
                Ok(())
            }
        }
    }
}

/// One node of the DFS: a decision point, which alternatives it had, and
/// which are pruned (already explored, or sleeping).
struct Frame {
    enabled: Vec<usize>,
    ops: Vec<Op>,
    prev: Option<usize>,
    last_chosen: usize,
    /// Explored-or-sleeping thread ids: never (re)scheduled from here.
    sleep: BTreeSet<usize>,
    /// Preemptions consumed along the path *into* this node.
    preemptions: usize,
}

impl Frame {
    fn op_of(&self, tid: usize) -> Op {
        let pos = self
            .enabled
            .iter()
            .position(|&t| t == tid)
            .unwrap_or_else(|| unreachable!("thread {tid} not in enabled set"));
        self.ops[pos]
    }
}

fn is_preemption(prev: Option<usize>, enabled: &[usize], chosen: usize) -> bool {
    prev.is_some_and(|p| p != chosen && enabled.contains(&p))
}

/// Deterministic per-node rotation so alternative order varies with the
/// seed instead of always favouring low thread ids.
fn rotation(seed: u64, depth: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let mut x = seed ^ (depth as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x % len as u64) as usize
}

/// Explores the schedules of `body` and reports the first failure, if
/// any. The closure runs once per schedule; see the crate docs for what
/// it may and may not share across runs.
pub fn check<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_panic_hook();
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let rt_cfg = rt::RtConfig {
        atomics_are_steps: cfg.atomics_are_steps,
        max_steps: cfg.max_steps,
        stall_timeout: cfg.stall_timeout,
    };

    let mut frames: Vec<Frame> = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules: u64 = 0;
    let mut max_depth = 0usize;
    let mut complete = false;
    let mut lock_edges: BTreeSet<(String, String)> = BTreeSet::new();

    loop {
        let out = rt::run_schedule(&rt_cfg, prefix.clone(), cfg.seed, &body);
        schedules += 1;
        max_depth = max_depth.max(out.decisions.len());
        lock_edges.extend(out.lock_class_edges);
        if let Some(kind) = out.failure {
            return Report {
                schedules,
                distinct_schedules: schedules,
                complete: false,
                failure: Some(Failure {
                    kind,
                    schedule: out.decisions.iter().map(|d| d.chosen).collect(),
                    trace: out.trace,
                }),
                max_depth,
                lock_order_edges: lock_edges.into_iter().collect(),
            };
        }

        sync_frames(&mut frames, &out.decisions);

        if schedules >= cfg.max_schedules {
            break;
        }

        // Backtrack: deepest node with an untried, non-sleeping,
        // bound-respecting alternative.
        let mut next: Option<(usize, usize)> = None;
        while let Some(depth) = frames.len().checked_sub(1) {
            let frame = &mut frames[depth];
            frame.sleep.insert(frame.last_chosen);
            let rot = rotation(cfg.seed, depth, frame.enabled.len());
            let candidate = (0..frame.enabled.len())
                .map(|i| frame.enabled[(i + rot) % frame.enabled.len()])
                .find(|&t| {
                    !frame.sleep.contains(&t)
                        && (!is_preemption(frame.prev, &frame.enabled, t)
                            || frame.preemptions < cfg.preemption_bound)
                });
            match candidate {
                Some(t) => {
                    next = Some((depth, t));
                    break;
                }
                None => {
                    frames.pop();
                }
            }
        }
        match next {
            Some((depth, t)) => {
                frames[depth].last_chosen = t;
                frames.truncate(depth + 1);
                prefix = frames.iter().map(|f| f.last_chosen).collect();
            }
            None => {
                complete = true;
                break;
            }
        }
    }

    Report {
        schedules,
        distinct_schedules: schedules,
        complete,
        failure: None,
        max_depth,
        lock_order_edges: lock_edges.into_iter().collect(),
    }
}

/// [`check`], panicking with the full report when a failure is found.
/// The convenient form for protocol tests that expect success.
pub fn check_ok<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = check(cfg, body);
    assert!(report.failure.is_none(), "{report}");
    report
}

/// Reconciles the DFS frame stack with the decisions of the latest run:
/// replayed frames keep their pruning state, new frames inherit sleep
/// sets (filtered by independence with the parent's transition) and the
/// preemption count.
fn sync_frames(frames: &mut Vec<Frame>, decisions: &[Decision]) {
    for (i, d) in decisions.iter().enumerate() {
        if i < frames.len() {
            frames[i].last_chosen = d.chosen;
        } else {
            let (sleep, preemptions) = if i == 0 {
                (BTreeSet::new(), 0)
            } else {
                let parent = &frames[i - 1];
                let chosen_op = parent.op_of(parent.last_chosen);
                let sleep = parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&t| {
                        parent.enabled.contains(&t) && !dependent(&parent.op_of(t), &chosen_op)
                    })
                    .collect();
                let bump = usize::from(is_preemption(
                    parent.prev,
                    &parent.enabled,
                    parent.last_chosen,
                ));
                (sleep, parent.preemptions + bump)
            };
            frames.push(Frame {
                enabled: d.enabled.clone(),
                ops: d.ops.clone(),
                prev: d.prev,
                last_chosen: d.chosen,
                sleep,
                preemptions,
            });
        }
    }
    frames.truncate(decisions.len());
}

/// Suppresses panic output from controlled threads, once per process:
/// teardown unwinds and deliberately-failing schedules would otherwise
/// spray thousands of backtraces across the test output. Uncontrolled
/// threads keep the previously-installed hook.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if rt::in_model_thread() {
                return;
            }
            prev(info);
        }));
    });
}
