//! [`CheckedCell`]: shared data with vector-clock race detection.
//!
//! Only compiled with the `model` feature. A `CheckedCell<T>` is shared
//! mutable data that *claims* to be protected by some external protocol
//! (a lock, a happens-before chain through spawn/join or condvar
//! signalling). Every access under [`crate::model::check`] is a schedule
//! point, and the checker verifies the claim: two accesses from different
//! threads, at least one a write, with no happens-before edge between
//! them, fail the execution with [`crate::model::FailureKind::DataRace`].
//!
//! The storage itself sits behind an internal real mutex so the type is
//! safe even when the protocol is wrong — the point is to *report* the
//! race, not to crash on it. Accesses from uncontrolled threads skip the
//! detector.

use std::panic::Location;

use crate::rt;

/// Shared data whose cross-thread accesses are race-checked under the
/// model backend. See the module docs.
pub struct CheckedCell<T> {
    inner: std::sync::Mutex<T>,
    id: rt::LazyId,
    loc: &'static Location<'static>,
}

impl<T> CheckedCell<T> {
    /// Creates a cell. `#[track_caller]` labels it in race reports.
    #[track_caller]
    pub fn new(value: T) -> Self {
        CheckedCell {
            inner: std::sync::Mutex::new(value),
            id: rt::LazyId::new(),
            loc: Location::caller(),
        }
    }

    fn storage(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reads through the cell. A `CellRead` schedule point.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        rt::op_cell(&self.id, self.loc, false);
        f(&self.storage())
    }

    /// Writes through the cell. A `CellWrite` schedule point.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        rt::op_cell(&self.id, self.loc, true);
        f(&mut self.storage())
    }

    /// Copies the value out (a read access).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Replaces the value (a write access).
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CheckedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckedCell")
            .field("value", &*self.storage())
            .finish()
    }
}
