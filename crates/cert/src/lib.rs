//! Offline checker for certified enumeration proofs.
//!
//! `unigen-satsolver` can record a DRAT-style binary proof of everything it
//! does during witness enumeration (see its `proof` module for the step
//! catalogue). This crate re-checks such a stream **independently**: it has
//! its own decoder, its own clause database, and its own watched-literal
//! unit propagation, and deliberately shares zero code with the solver — a
//! bug in the solver's reasoning cannot silently excuse itself here.
//!
//! The checker is a *forward* RUP checker in the DRAT tradition:
//!
//! * It starts from the base [`Formula`] (clauses plus xor constraints).
//!   Xor constraints are compiled into chunked Tseitin CNF expansions over
//!   checker-internal auxiliary variables; each chunk covers at most four
//!   row variables, so the expansion is propagation-complete per row and
//!   watched-xor reasoning in the solver checks as plain unit propagation.
//! * Learned clauses must be RUP (their negation unit-propagates to a
//!   conflict); deletions remove learned clauses and are ignored when no
//!   matching clause exists; Gauss-derived rows are verified algebraically
//!   as GF(2) sums of previously logged rows.
//! * The cell protocol (`CellBegin` / `Witness` / `Block` / `UnsatUnder` /
//!   `CellClose`) is checked semantically: every witness must satisfy the
//!   active database, every blocking clause must be exactly the negated
//!   projection of the preceding witness, and a cell may only close as
//!   *exhausted* after an `UnsatUnder` verdict whose negated-assumption
//!   clause passed RUP. An interrupted cell yields a typed
//!   [`CheckError::CertIncomplete`] from [`Report::require_complete`],
//!   never a bogus exhaustion claim.
//!
//! Entry points: [`Checker::check`] for one-shot verification,
//! [`Checker::feed`] for streaming, and [`step_spans`] for tooling that
//! needs step boundaries (the adversarial mutation tests use it).

pub mod checker;
mod db;
pub mod decode;

pub use checker::{CellCertificate, Checker, CloseReason, Report};
pub use decode::{step_spans, Step};

use std::fmt;

/// The base formula a proof stream is checked against.
///
/// Variables are 1-based (DIMACS convention); clause literals are signed
/// DIMACS integers and xor rows are variable lists with a parity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<i64>>,
    xors: Vec<(Vec<u64>, bool)>,
}

impl Formula {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Formula {
            num_vars,
            ..Formula::default()
        }
    }

    /// Number of variables of the base formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of xor constraints added so far.
    pub fn num_xors(&self) -> usize {
        self.xors.len()
    }

    /// Adds a clause of DIMACS literals.
    ///
    /// # Panics
    ///
    /// Panics if a literal is zero or out of range.
    pub fn add_clause(&mut self, lits: &[i64]) {
        for &l in lits {
            assert!(
                l != 0 && l.unsigned_abs() <= self.num_vars as u64,
                "clause literal {l} out of range (formula has {} vars)",
                self.num_vars
            );
        }
        self.clauses.push(lits.to_vec());
    }

    /// Adds an xor constraint `v₁ ⊕ … ⊕ vₖ = rhs` over 1-based variables.
    ///
    /// # Panics
    ///
    /// Panics if a variable is zero or out of range.
    pub fn add_xor(&mut self, vars: &[u64], rhs: bool) {
        for &v in vars {
            assert!(
                v != 0 && v <= self.num_vars as u64,
                "xor variable {v} out of range (formula has {} vars)",
                self.num_vars
            );
        }
        self.xors.push((vars.to_vec(), rhs));
    }

    pub(crate) fn clauses(&self) -> &[Vec<i64>] {
        &self.clauses
    }

    pub(crate) fn xors(&self) -> &[(Vec<u64>, bool)] {
        &self.xors
    }
}

/// Why a proof stream was rejected (or cannot be trusted as complete).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The byte stream violates the binary format.
    Malformed {
        /// Byte offset of the offending step.
        offset: u64,
        /// What was wrong.
        detail: &'static str,
    },
    /// The stream ended in the middle of a step.
    Truncated {
        /// Byte offset of the incomplete step.
        offset: u64,
    },
    /// A well-formed step failed verification.
    Rejected {
        /// 1-based index of the rejected step.
        step: u64,
        /// Which rule rejected it.
        rule: Rule,
        /// Human-readable context.
        detail: String,
    },
    /// A cell's certificate is incomplete (interrupted or never closed):
    /// its witness list is verified as far as it goes, but it must not be
    /// treated as an exhaustive enumeration.
    CertIncomplete {
        /// Index of the incomplete cell in [`Report::cells`].
        cell: usize,
        /// How the cell ended.
        reason: CloseReason,
    },
}

/// Verification rule that rejected a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rule {
    /// An `Axiom` step is not a clause of the base formula.
    UnknownAxiom,
    /// An unguarded `XorRow` is not an xor constraint of the base formula.
    UnknownXorRow,
    /// An `XorDerive` step is not the GF(2) sum of its cited rows.
    BadDerive,
    /// A clause claimed as RUP did not propagate to a conflict.
    FailedRup,
    /// A witness does not satisfy the active database.
    BadWitness,
    /// A blocking clause is not the negated projection of its witness.
    BadBlock,
    /// A guard was used inconsistently (reused, retired twice, negated…).
    GuardMisuse,
    /// A cell-protocol violation (nested cells, block without witness…).
    Protocol,
    /// A cell closed as exhausted without an `UnsatUnder` verdict.
    BogusExhaustion,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Malformed { offset, detail } => {
                write!(f, "malformed proof stream at byte {offset}: {detail}")
            }
            CheckError::Truncated { offset } => {
                write!(f, "proof stream truncated inside the step at byte {offset}")
            }
            CheckError::Rejected { step, rule, detail } => {
                write!(f, "step {step} rejected ({rule:?}): {detail}")
            }
            CheckError::CertIncomplete { cell, reason } => {
                write!(
                    f,
                    "cell {cell} certificate is incomplete (close reason: {reason:?})"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_counts_and_validation() {
        let mut f = Formula::new(3);
        f.add_clause(&[1, -2]);
        f.add_xor(&[1, 3], true);
        assert_eq!((f.num_vars(), f.num_clauses(), f.num_xors()), (3, 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn formula_rejects_out_of_range_literal() {
        let mut f = Formula::new(2);
        f.add_clause(&[3]);
    }

    #[test]
    fn errors_render() {
        let e = CheckError::Rejected {
            step: 7,
            rule: Rule::FailedRup,
            detail: "no conflict".into(),
        };
        assert!(e.to_string().contains("step 7"));
        assert!(CheckError::Truncated { offset: 3 }
            .to_string()
            .contains("byte 3"));
    }
}
