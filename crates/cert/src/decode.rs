//! Independent decoder for the binary proof format.
//!
//! The step tags and encodings here are a deliberate re-statement of the
//! format written by `unigen-satsolver`'s `proof` module — the byte format
//! is the contract between the two crates, not shared code. Integers are
//! LEB128 varints; literals are zigzag-encoded signed DIMACS numbers;
//! variables are 1-based (0 encodes "none" where a guard is optional);
//! witness values are LSB-first packed bits.

use crate::CheckError;

/// Step tags (independent copy of the producer's values).
pub mod tag {
    /// A fresh activation guard variable was allocated.
    pub const NEW_GUARD: u8 = 1;
    /// An xor row was added (guarded or unguarded).
    pub const XOR_ROW: u8 = 2;
    /// A row derived as a GF(2) sum of previously logged rows.
    pub const XOR_DERIVE: u8 = 3;
    /// A learned clause, checkable by reverse unit propagation.
    pub const LEARNED: u8 = 4;
    /// A learned clause was deleted from the database.
    pub const DELETE: u8 = 5;
    /// An input clause of the base formula was added.
    pub const AXIOM: u8 = 6;
    /// A clause added under a guard (weakened with the disable literal).
    pub const GUARDED_CLAUSE: u8 = 7;
    /// An enumeration session (cell) opened.
    pub const CELL_BEGIN: u8 = 8;
    /// A model found during enumeration.
    pub const WITNESS: u8 = 9;
    /// The blocking clause installed after a witness.
    pub const BLOCK: u8 = 10;
    /// An Unsat-under-assumptions verdict.
    pub const UNSAT_UNDER: u8 = 11;
    /// The current cell closed (reason byte follows).
    pub const CELL_CLOSE: u8 = 12;
    /// A guard was retired.
    pub const RETIRE_GUARD: u8 = 13;
}

/// A decoded proof step.
///
/// Variables are reported 1-based exactly as encoded; literals are signed
/// DIMACS integers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Step {
    /// A fresh activation guard variable.
    NewGuard {
        /// The guard variable (1-based).
        guard: u64,
    },
    /// An xor row `vars = rhs`, optionally scoped to a guard. Rows are
    /// implicitly numbered 1, 2, … in stream order for [`Step::XorDerive`]
    /// references.
    XorRow {
        /// Scoping guard, if any.
        guard: Option<u64>,
        /// Row variables (1-based).
        vars: Vec<u64>,
        /// Row parity.
        rhs: bool,
    },
    /// A row derived as the GF(2) sum of the rows numbered in `from`.
    XorDerive {
        /// The guard the derivation is scoped to.
        guard: u64,
        /// Derived row variables (1-based).
        vars: Vec<u64>,
        /// Derived row parity.
        rhs: bool,
        /// 1-based stream ids of the summed rows.
        from: Vec<u64>,
    },
    /// A learned clause (RUP over the database logged so far).
    Learned {
        /// Clause literals.
        lits: Vec<i64>,
    },
    /// Deletion of a learned clause (ignored if no match exists).
    Delete {
        /// Clause literals.
        lits: Vec<i64>,
    },
    /// An input clause of the base formula.
    Axiom {
        /// Clause literals.
        lits: Vec<i64>,
    },
    /// A clause weakened with its guard's disable literal.
    GuardedClause {
        /// Clause literals (the positive guard literal is among them).
        lits: Vec<i64>,
    },
    /// An enumeration cell opened.
    CellBegin {
        /// Scoping guard, if any.
        guard: Option<u64>,
        /// Sampling-set variables (1-based) defining witness identity.
        sampling: Vec<u64>,
    },
    /// A full model over the producer's variables at that point in time.
    Witness {
        /// `values[i]` is the value of 1-based variable `i + 1`.
        values: Vec<bool>,
    },
    /// The blocking clause installed after the preceding witness.
    Block {
        /// Clause literals.
        lits: Vec<i64>,
    },
    /// Unsat under the given assumption literals: the clause of negated
    /// assumptions is claimed RUP.
    UnsatUnder {
        /// The assumption literals the solve ran under.
        assumptions: Vec<i64>,
    },
    /// The open cell closed.
    CellClose {
        /// Close reason byte: 0 exhausted, 1 bound reached, 2 interrupted.
        reason: u8,
    },
    /// A guard was retired: clauses mentioning it are dropped and the unit
    /// clause `g` joins the database.
    RetireGuard {
        /// The retired guard variable (1-based).
        guard: u64,
    },
}

/// Decode failure local to one step.
pub(crate) enum DecodeErr {
    /// The buffer ended mid-step; more bytes may complete it.
    Incomplete,
    /// The bytes cannot be a valid step no matter what follows.
    Malformed(&'static str),
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, DecodeErr> {
        let b = *self.buf.get(self.pos).ok_or(DecodeErr::Incomplete)?;
        self.pos += 1;
        Ok(b)
    }

    fn u(&mut self) -> Result<u64, DecodeErr> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(DecodeErr::Malformed("varint overflows u64"));
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeErr::Malformed("varint longer than 10 bytes"));
            }
        }
    }

    fn i(&mut self) -> Result<i64, DecodeErr> {
        let z = self.u()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn lit(&mut self) -> Result<i64, DecodeErr> {
        let l = self.i()?;
        if l == 0 {
            return Err(DecodeErr::Malformed("zero literal"));
        }
        Ok(l)
    }

    fn var(&mut self) -> Result<u64, DecodeErr> {
        let v = self.u()?;
        if v == 0 {
            return Err(DecodeErr::Malformed("zero variable"));
        }
        Ok(v)
    }

    fn opt_var(&mut self) -> Result<Option<u64>, DecodeErr> {
        let v = self.u()?;
        Ok((v != 0).then_some(v))
    }

    /// A count prefix. A corrupted huge count cannot trigger a huge
    /// allocation: callers cap `Vec::with_capacity` and the element decode
    /// loop runs out of buffer (`Incomplete`) long before materialising a
    /// count the stream cannot actually hold.
    fn count(&mut self) -> Result<usize, DecodeErr> {
        let n = self.u()?;
        if n > 1 << 32 {
            return Err(DecodeErr::Malformed("absurd element count"));
        }
        Ok(n as usize)
    }

    fn lits(&mut self) -> Result<Vec<i64>, DecodeErr> {
        let n = self.count()?;
        let mut lits = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            lits.push(self.lit()?);
        }
        Ok(lits)
    }

    fn vars(&mut self, n: usize) -> Result<Vec<u64>, DecodeErr> {
        let mut vars = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            vars.push(self.var()?);
        }
        Ok(vars)
    }

    fn rhs(&mut self) -> Result<bool, DecodeErr> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeErr::Malformed("parity byte is not 0 or 1")),
        }
    }
}

/// Tries to decode one step from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer ends mid-step (streaming callers wait
/// for more bytes), `Ok(Some((step, consumed)))` on success. `Err` always
/// means the bytes can never become a valid step.
pub(crate) fn try_step(buf: &[u8]) -> Result<Option<(Step, usize)>, DecodeErr> {
    match step_inner(buf) {
        Err(DecodeErr::Incomplete) => Ok(None),
        other => other,
    }
}

fn step_inner(buf: &[u8]) -> Result<Option<(Step, usize)>, DecodeErr> {
    if buf.is_empty() {
        return Ok(None);
    }
    let mut r = Reader { buf, pos: 0 };
    let step = match r.byte()? {
        tag::NEW_GUARD => Step::NewGuard { guard: r.var()? },
        tag::XOR_ROW => {
            let guard = r.opt_var()?;
            let n = r.count()?;
            let vars = r.vars(n)?;
            let rhs = r.rhs()?;
            Step::XorRow { guard, vars, rhs }
        }
        tag::XOR_DERIVE => {
            let guard = r.var()?;
            let n = r.count()?;
            let vars = r.vars(n)?;
            let rhs = r.rhs()?;
            let m = r.count()?;
            let mut from = Vec::with_capacity(m.min(4096));
            for _ in 0..m {
                from.push(r.u()?);
            }
            Step::XorDerive {
                guard,
                vars,
                rhs,
                from,
            }
        }
        tag::LEARNED => Step::Learned { lits: r.lits()? },
        tag::DELETE => Step::Delete { lits: r.lits()? },
        tag::AXIOM => Step::Axiom { lits: r.lits()? },
        tag::GUARDED_CLAUSE => Step::GuardedClause { lits: r.lits()? },
        tag::CELL_BEGIN => {
            let guard = r.opt_var()?;
            let n = r.count()?;
            let sampling = r.vars(n)?;
            Step::CellBegin { guard, sampling }
        }
        tag::WITNESS => {
            let n = r.count()?;
            let mut values = Vec::with_capacity(n.min(4096));
            let mut byte = 0u8;
            for i in 0..n {
                if i % 8 == 0 {
                    byte = r.byte()?;
                }
                values.push(byte >> (i % 8) & 1 == 1);
            }
            Step::Witness { values }
        }
        tag::BLOCK => Step::Block { lits: r.lits()? },
        tag::UNSAT_UNDER => Step::UnsatUnder {
            assumptions: r.lits()?,
        },
        tag::CELL_CLOSE => Step::CellClose { reason: r.byte()? },
        tag::RETIRE_GUARD => Step::RetireGuard { guard: r.var()? },
        _ => return Err(DecodeErr::Malformed("unknown step tag")),
    };
    Ok(Some((step, r.pos)))
}

/// Returns the `(offset, length)` span of every step in a complete proof
/// stream.
///
/// This is the surgery table for proof-mutation tooling (and tests): a step
/// can be dropped, duplicated, or reordered by splicing byte ranges without
/// re-encoding. Fails if the stream is malformed or ends mid-step.
pub fn step_spans(bytes: &[u8]) -> Result<Vec<(usize, usize)>, CheckError> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match try_step(&bytes[pos..]) {
            Ok(Some((_, len))) => {
                spans.push((pos, len));
                pos += len;
            }
            Ok(None) => return Err(CheckError::Truncated { offset: pos as u64 }),
            Err(DecodeErr::Incomplete) => unreachable!("try_step maps Incomplete to Ok(None)"),
            Err(DecodeErr::Malformed(detail)) => {
                return Err(CheckError::Malformed {
                    offset: pos as u64,
                    detail,
                })
            }
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn zz(out: &mut Vec<u8>, v: i64) {
        u(out, ((v << 1) ^ (v >> 63)) as u64);
    }

    #[test]
    fn decodes_a_learned_clause() {
        let mut bytes = vec![tag::LEARNED];
        u(&mut bytes, 2);
        zz(&mut bytes, 3);
        zz(&mut bytes, -1);
        let (step, len) = try_step(&bytes).ok().flatten().expect("complete step");
        assert_eq!(len, bytes.len());
        assert_eq!(step, Step::Learned { lits: vec![3, -1] });
    }

    #[test]
    fn decodes_witness_bits_lsb_first() {
        let mut bytes = vec![tag::WITNESS];
        u(&mut bytes, 9);
        bytes.push(0x01);
        bytes.push(0x01);
        let (step, _) = try_step(&bytes).ok().flatten().expect("complete step");
        let Step::Witness { values } = step else {
            panic!("wrong step");
        };
        assert_eq!(values.len(), 9);
        assert!(values[0] && values[8]);
        assert!(!values[1..8].iter().any(|&b| b));
    }

    #[test]
    fn incomplete_step_is_not_an_error() {
        let mut bytes = vec![tag::LEARNED];
        u(&mut bytes, 2);
        zz(&mut bytes, 3);
        // Second literal missing.
        assert!(matches!(try_step(&bytes), Ok(None)));
    }

    #[test]
    fn unknown_tag_is_malformed() {
        assert!(matches!(try_step(&[200]), Err(DecodeErr::Malformed(_))));
    }

    #[test]
    fn zero_literal_is_malformed() {
        let mut bytes = vec![tag::AXIOM];
        u(&mut bytes, 1);
        zz(&mut bytes, 0);
        assert!(matches!(try_step(&bytes), Err(DecodeErr::Malformed(_))));
    }

    #[test]
    fn spans_cover_the_stream_exactly() {
        let mut bytes = vec![tag::NEW_GUARD];
        u(&mut bytes, 6);
        let first = bytes.len();
        bytes.push(tag::CELL_CLOSE);
        bytes.push(2);
        let spans = step_spans(&bytes).expect("well-formed");
        assert_eq!(spans, vec![(0, first), (first, 2)]);
        assert!(matches!(
            step_spans(&bytes[..bytes.len() - 1]),
            Err(CheckError::Truncated { .. })
        ));
    }
}
