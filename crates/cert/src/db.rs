//! The checker's own clause database and unit propagation.
//!
//! This is an independent two-watched-literal engine, much smaller than the
//! solver's: it only ever assigns at the root level plus one temporary
//! layer of RUP assumptions, so there is no decision heap, no conflict
//! analysis, and no clause learning. Root assignments are permanent (a
//! forward checker never retracts them, even when the clause that produced
//! one is later deleted); RUP assumptions are rolled back after each check.
//!
//! Internal literal encoding: a variable is a `u32` index, a literal is
//! `var << 1 | sign` with `sign = 1` for negative. The checker interleaves
//! two variable spaces — proof variables map to even internal indices and
//! checker-allocated auxiliary variables (for xor expansions) to odd ones —
//! so fresh solver variables can never collide with checker auxiliaries;
//! that mapping lives in the checker, not here.

use std::collections::HashMap;

/// Internal literal: `var << 1 | sign` (sign 1 = negated).
pub(crate) type ILit = u32;

/// Builds an internal literal from an internal variable index.
pub(crate) fn mklit(var: u32, neg: bool) -> ILit {
    var << 1 | u32::from(neg)
}

/// The internal variable of a literal.
pub(crate) fn litvar(lit: ILit) -> u32 {
    lit >> 1
}

/// Negates an internal literal.
pub(crate) fn neg(lit: ILit) -> ILit {
    lit ^ 1
}

const UNDEF: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// Where a clause came from; governs what may delete it and whether a
/// witness is evaluated against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// A clause of the base formula.
    Axiom,
    /// A clause of an xor row's Tseitin expansion (mentions auxiliary
    /// variables, so witnesses are checked against row parities instead).
    XorExpansion,
    /// A clause installed under a guard by the producer.
    Guarded,
    /// A blocking clause of the cell protocol.
    Block,
    /// A learned clause that passed RUP (the only kind `Delete` may touch).
    Learned,
    /// A clause entailed by the database (verified verdicts, retire units).
    Lemma,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<ILit>,
    kind: Kind,
    deleted: bool,
}

/// Clause database with root-level propagation and RUP checking.
#[derive(Debug, Default, Clone)]
pub(crate) struct Db {
    vals: Vec<u8>,
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>,
    trail: Vec<ILit>,
    qhead: usize,
    /// The database has been refuted: root propagation reached a conflict.
    /// Every subsequent RUP check trivially succeeds.
    contradiction: bool,
    /// Sorted-literal key → indices of clauses with those literals, for
    /// delete-by-literals lookups.
    by_lits: HashMap<Vec<ILit>, Vec<u32>>,
}

impl Db {
    pub(crate) fn contradiction(&self) -> bool {
        self.contradiction
    }

    fn ensure_var(&mut self, var: u32) {
        let needed = (var as usize + 1) * 2;
        if self.watches.len() < needed {
            self.watches.resize_with(needed, Vec::new);
            self.vals.resize(var as usize + 1, UNDEF);
        }
    }

    /// `Some(true)` if the literal is assigned true, `Some(false)` if
    /// false, `None` if unassigned.
    pub(crate) fn value(&self, lit: ILit) -> Option<bool> {
        match self.vals[litvar(lit) as usize] {
            UNDEF => None,
            v => Some((v == TRUE) != (lit & 1 == 1)),
        }
    }

    /// Assigns a literal; returns `false` on an immediate conflict.
    fn enqueue(&mut self, lit: ILit) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.vals[litvar(lit) as usize] = if lit & 1 == 0 { TRUE } else { FALSE };
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagates queued assignments; returns `false` on conflict. The
    /// trail keeps the assignments made before the conflict, so a caller
    /// rolling back to a mark stays consistent.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = neg(lit);
            let mut ws = std::mem::take(&mut self.watches[false_lit as usize]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                if self.clauses[ci].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand as usize].push(ws[i]);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                if !self.enqueue(first) {
                    self.watches[false_lit as usize] = ws;
                    return false;
                }
                i += 1;
            }
            self.watches[false_lit as usize] = ws;
        }
        true
    }

    /// Asserts a literal at the root and propagates; a conflict refutes
    /// the database.
    pub(crate) fn assert_root(&mut self, lit: ILit) {
        self.ensure_var(litvar(lit));
        if self.contradiction {
            return;
        }
        if !self.enqueue(lit) || !self.propagate() {
            self.contradiction = true;
        }
    }

    /// Installs a clause (root level only) and returns its index.
    pub(crate) fn add_clause(&mut self, mut lits: Vec<ILit>, kind: Kind) -> u32 {
        // Repeated literals would break the two-watch invariant; drop them
        // (keeping first occurrences) before storing.
        let mut seen = Vec::with_capacity(lits.len());
        lits.retain(|&l| {
            let fresh = !seen.contains(&l);
            if fresh {
                seen.push(l);
            }
            fresh
        });
        for &l in &lits {
            self.ensure_var(litvar(l));
        }
        let idx = self.clauses.len() as u32;
        let mut key = lits.clone();
        key.sort_unstable();
        key.dedup();
        self.by_lits.entry(key).or_default().push(idx);
        self.clauses.push(Clause {
            lits,
            kind,
            deleted: false,
        });
        if !self.contradiction {
            self.attach(idx as usize);
        }
        idx
    }

    /// Watches a freshly stored clause, resolving root-level degeneracies:
    /// a root-satisfied clause stays unwatched (root assignments are
    /// permanent, so it can never become unit), a root-unit clause asserts
    /// its literal, a root-falsified or empty clause refutes the database.
    fn attach(&mut self, ci: usize) {
        let lits = &self.clauses[ci].lits;
        // A tautology can never be falsified; skip watching it.
        for (i, &l) in lits.iter().enumerate() {
            if lits[..i].contains(&neg(l)) {
                return;
            }
        }
        if lits.iter().any(|&l| self.value(l) == Some(true)) {
            return;
        }
        let open: Vec<usize> = (0..lits.len())
            .filter(|&i| self.value(lits[i]) != Some(false))
            .collect();
        match open.len() {
            0 => self.contradiction = true,
            1 => {
                let unit = self.clauses[ci].lits[open[0]];
                if !self.enqueue(unit) || !self.propagate() {
                    self.contradiction = true;
                }
            }
            _ => {
                self.clauses[ci].lits.swap(0, open[0]);
                // `open` is ascending, so `open[1]` is neither 0 nor
                // `open[0]` — the first swap cannot have disturbed it.
                self.clauses[ci].lits.swap(1, open[1]);
                let (w0, w1) = (self.clauses[ci].lits[0], self.clauses[ci].lits[1]);
                self.watches[w0 as usize].push(ci as u32);
                self.watches[w1 as usize].push(ci as u32);
            }
        }
    }

    /// Marks a clause deleted (watch lists are cleaned lazily).
    pub(crate) fn delete(&mut self, idx: u32) {
        self.clauses[idx as usize].deleted = true;
    }

    /// Finds an active clause of the given kind with exactly these
    /// literals (as a set).
    pub(crate) fn find_active(&self, lits: &[ILit], kind: Kind) -> Option<u32> {
        let mut key = lits.to_vec();
        key.sort_unstable();
        key.dedup();
        self.by_lits
            .get(&key)
            .into_iter()
            .flatten()
            .copied()
            .find(|&idx| {
                let c = &self.clauses[idx as usize];
                !c.deleted && c.kind == kind
            })
    }

    /// Checks that `clause` is RUP: asserting the negation of each literal
    /// and propagating reaches a conflict. The temporary assignments are
    /// rolled back; the root trail is untouched.
    pub(crate) fn rup(&mut self, clause: &[ILit]) -> bool {
        if self.contradiction {
            return true;
        }
        for &l in clause {
            self.ensure_var(litvar(l));
        }
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in clause {
            if !self.enqueue(neg(l)) {
                conflict = true;
                break;
            }
        }
        if !conflict {
            conflict = !self.propagate();
        }
        for &l in &self.trail[mark..] {
            self.vals[litvar(l) as usize] = UNDEF;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        conflict
    }

    /// Iterates the active clauses as `(index, kind, literals)`.
    pub(crate) fn active(&self) -> impl Iterator<Item = (u32, Kind, &[ILit])> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, c)| (i as u32, c.kind, c.lits.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(v: u32) -> ILit {
        mklit(v, false)
    }

    fn negl(v: u32) -> ILit {
        mklit(v, true)
    }

    #[test]
    fn unit_propagation_chains() {
        let mut db = Db::default();
        db.add_clause(vec![pos(0)], Kind::Axiom);
        db.add_clause(vec![negl(0), pos(1)], Kind::Axiom);
        db.add_clause(vec![negl(1), pos(2)], Kind::Axiom);
        assert_eq!(db.value(pos(2)), Some(true));
        assert!(!db.contradiction());
    }

    #[test]
    fn rup_detects_entailed_clause_and_rolls_back() {
        let mut db = Db::default();
        db.add_clause(vec![pos(0), pos(1)], Kind::Axiom);
        db.add_clause(vec![pos(0), negl(1)], Kind::Axiom);
        // (x0) is entailed; (¬x0) is not.
        assert!(db.rup(&[pos(0)]));
        assert!(!db.rup(&[negl(0)]));
        assert_eq!(db.value(pos(0)), None);
        // The same checks again: the rollback left a clean state.
        assert!(db.rup(&[pos(0)]));
    }

    #[test]
    fn contradiction_makes_everything_rup() {
        let mut db = Db::default();
        db.add_clause(vec![pos(0)], Kind::Axiom);
        db.add_clause(vec![negl(0)], Kind::Axiom);
        assert!(db.contradiction());
        assert!(db.rup(&[]));
    }

    #[test]
    fn deleted_clause_no_longer_propagates() {
        let mut db = Db::default();
        let c = db.add_clause(vec![pos(0), pos(1)], Kind::Learned);
        db.add_clause(vec![pos(0), negl(1)], Kind::Axiom);
        assert!(db.rup(&[pos(0)]));
        db.delete(c);
        assert!(!db.rup(&[pos(0)]));
    }

    #[test]
    fn find_active_matches_by_set_and_kind() {
        let mut db = Db::default();
        let c = db.add_clause(vec![pos(1), negl(0)], Kind::Learned);
        assert_eq!(db.find_active(&[negl(0), pos(1)], Kind::Learned), Some(c));
        assert_eq!(db.find_active(&[negl(0), pos(1)], Kind::Axiom), None);
        db.delete(c);
        assert_eq!(db.find_active(&[negl(0), pos(1)], Kind::Learned), None);
    }

    #[test]
    fn root_units_survive_their_clause_deletion() {
        let mut db = Db::default();
        let c = db.add_clause(vec![pos(0)], Kind::Learned);
        db.delete(c);
        // Forward checkers never retract root assignments.
        assert_eq!(db.value(pos(0)), Some(true));
    }

    #[test]
    fn tautologies_are_inert() {
        let mut db = Db::default();
        db.add_clause(vec![pos(0), negl(0)], Kind::Axiom);
        db.add_clause(vec![pos(1)], Kind::Axiom);
        assert!(!db.contradiction());
        assert_eq!(db.value(pos(1)), Some(true));
    }
}
