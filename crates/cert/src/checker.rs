//! The forward proof checker and cell-certificate verifier.

use std::collections::{BTreeSet, HashMap};

use crate::db::{litvar, mklit, Db, ILit, Kind};
use crate::decode::{try_step, DecodeErr, Step};
use crate::{CheckError, Formula, Rule};

/// Why (and whether) a cell closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The cell's residue was proven unsatisfiable: the witness list is
    /// complete.
    Exhausted,
    /// Enumeration stopped at its requested bound; the witnesses are
    /// verified but the cell may hold more.
    BoundReached,
    /// Enumeration was interrupted; the certificate is incomplete.
    Interrupted,
    /// The stream ended while the cell was still open.
    Unclosed,
}

/// A verified per-cell certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCertificate {
    /// The cell's scoping guard variable (1-based), if any.
    pub guard: Option<u64>,
    /// The sampling-set variables (1-based) that define witness identity.
    pub sampling: Vec<u64>,
    /// Each witness projected onto the sampling set, in sampling order.
    pub witnesses: Vec<Vec<bool>>,
    /// How the cell ended.
    pub close: CloseReason,
}

impl CellCertificate {
    /// `true` when the witness list is provably the cell's *entire*
    /// solution set (the close was `Exhausted`, backed by a verified
    /// `UnsatUnder` verdict).
    pub fn exhaustive(&self) -> bool {
        self.close == CloseReason::Exhausted
    }
}

/// The verified outcome of checking a complete proof stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Number of steps checked.
    pub steps: u64,
    /// Number of proof bytes consumed.
    pub bytes: u64,
    /// The cells in stream order.
    pub cells: Vec<CellCertificate>,
    /// The final database was refuted: the base formula together with the
    /// logged (guard-scoped or permanent) enumeration constraints is
    /// unsatisfiable. For a stream with no unguarded blocking clauses this
    /// certifies the base formula itself unsatisfiable.
    pub refuted: bool,
}

impl Report {
    /// Errors with [`CheckError::CertIncomplete`] if any cell was
    /// interrupted or never closed — such a certificate is verified as far
    /// as it goes but must not be treated as an exhaustive enumeration.
    pub fn require_complete(&self) -> Result<(), CheckError> {
        for (i, cell) in self.cells.iter().enumerate() {
            if matches!(cell.close, CloseReason::Interrupted | CloseReason::Unclosed) {
                return Err(CheckError::CertIncomplete {
                    cell: i,
                    reason: cell.close,
                });
            }
        }
        Ok(())
    }
}

/// A registered xor row (original rows only; derived rows are installed as
/// expansions but cannot be cited by later derivations).
#[derive(Debug, Clone)]
struct XorRow {
    /// Internal guard variable, or `None` for a base-formula row.
    guard: Option<u32>,
    /// Internal row variables, sorted, duplicate pairs cancelled.
    vars: Vec<u32>,
    rhs: bool,
}

/// A parity constraint a witness must satisfy (base rows and guarded cell
/// rows; expansions carry auxiliary variables, so witnesses are checked
/// against the rows themselves).
#[derive(Debug, Clone)]
struct ParityRow {
    guard: Option<u32>,
    vars: Vec<u32>,
    rhs: bool,
    active: bool,
}

#[derive(Debug, Clone)]
struct OpenCell {
    /// Internal guard variable, if any.
    guard: Option<u32>,
    /// Internal sampling variables in declared order.
    sampling: Vec<u32>,
    witnesses: Vec<Vec<bool>>,
    /// The blocking clause the next `Block` step must equal (set
    /// semantics), pending since the last witness.
    expected_block: Option<BTreeSet<ILit>>,
    /// A verified `UnsatUnder` verdict for this cell's assumptions.
    verdict: bool,
}

/// Streaming proof checker.
///
/// Feed proof bytes with [`Checker::feed`] (partial steps are buffered),
/// then call [`Checker::finish`] for the [`Report`]. [`Checker::check`] is
/// the one-shot convenience.
#[derive(Debug, Clone)]
pub struct Checker {
    db: Db,
    num_vars: usize,
    /// Sorted-literal keys of the base formula's clauses.
    formula_clauses: Vec<Vec<ILit>>,
    /// Normalised `(vars, rhs)` keys of the base formula's xor rows.
    formula_xors: Vec<(Vec<u32>, bool)>,
    /// Original xor rows by 1-based stream id.
    rows: Vec<XorRow>,
    parity: Vec<ParityRow>,
    /// Internal guard variable → retired flag.
    guards: HashMap<u32, bool>,
    /// Internal guard variable → clauses that mention it (dropped
    /// wholesale at retirement).
    guard_occurs: HashMap<u32, Vec<u32>>,
    open: Option<OpenCell>,
    cells: Vec<CellCertificate>,
    /// Undecoded tail of the stream (a step split across `feed` calls).
    pending: Vec<u8>,
    /// Absolute stream offset of `pending[0]`.
    offset: u64,
    steps: u64,
    /// Checker-internal auxiliary variable counter (odd internal ids).
    aux_count: u32,
}

/// Maps a 1-based proof variable to its internal (even) index.
fn ext(var_1based: u64) -> u32 {
    ((var_1based - 1) as u32) << 1
}

/// Maps an internal (even) index back to the 1-based proof variable.
fn ext_back(internal: u32) -> u64 {
    u64::from(internal >> 1) + 1
}

/// Maps a DIMACS literal to its internal encoding.
fn ext_lit(dimacs: i64) -> ILit {
    mklit(ext(dimacs.unsigned_abs()), dimacs < 0)
}

/// Normalises an xor variable list: sorts and cancels duplicate pairs
/// (`v ⊕ v = 0`).
fn normalize_xor(mut vars: Vec<u32>) -> Vec<u32> {
    vars.sort_unstable();
    let mut out = Vec::with_capacity(vars.len());
    let mut i = 0;
    while i < vars.len() {
        if i + 1 < vars.len() && vars[i] == vars[i + 1] {
            i += 2;
        } else {
            out.push(vars[i]);
            i += 1;
        }
    }
    out
}

impl Checker {
    /// Builds a checker over the base formula: its clauses and the chunked
    /// expansions of its xor constraints are pre-installed, root
    /// propagation saturated.
    pub fn new(formula: &Formula) -> Self {
        let mut checker = Checker {
            db: Db::default(),
            num_vars: formula.num_vars(),
            formula_clauses: Vec::new(),
            formula_xors: Vec::new(),
            rows: Vec::new(),
            parity: Vec::new(),
            guards: HashMap::new(),
            guard_occurs: HashMap::new(),
            open: None,
            cells: Vec::new(),
            pending: Vec::new(),
            offset: 0,
            steps: 0,
            aux_count: 0,
        };
        for clause in formula.clauses() {
            let lits: Vec<ILit> = clause.iter().map(|&l| ext_lit(l)).collect();
            let mut key = lits.clone();
            key.sort_unstable();
            key.dedup();
            checker.formula_clauses.push(key);
            checker.db.add_clause(lits, Kind::Axiom);
        }
        for (vars, rhs) in formula.xors() {
            let vars = normalize_xor(vars.iter().map(|&v| ext(v)).collect());
            checker.install_expansion(&vars, *rhs, None);
            checker.parity.push(ParityRow {
                guard: None,
                vars: vars.clone(),
                rhs: *rhs,
                active: true,
            });
            checker.formula_xors.push((vars, *rhs));
        }
        checker
    }

    /// One-shot check of a complete proof stream.
    pub fn check(formula: &Formula, proof: &[u8]) -> Result<Report, CheckError> {
        let mut checker = Checker::new(formula);
        checker.feed(proof)?;
        checker.finish()
    }

    /// Number of steps verified so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Consumes more proof bytes, verifying every complete step. A step
    /// split across calls is buffered until its remainder arrives.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), CheckError> {
        self.pending.extend_from_slice(bytes);
        let mut pos = 0usize;
        loop {
            match try_step(&self.pending[pos..]) {
                Ok(Some((step, len))) => {
                    self.steps += 1;
                    let result = self.apply(step);
                    pos += len;
                    result?;
                }
                Ok(None) | Err(DecodeErr::Incomplete) => break,
                Err(DecodeErr::Malformed(detail)) => {
                    return Err(CheckError::Malformed {
                        offset: self.offset + pos as u64,
                        detail,
                    });
                }
            }
        }
        self.pending.drain(..pos);
        self.offset += pos as u64;
        Ok(())
    }

    /// Finishes checking: fails if the stream ended mid-step; a cell still
    /// open is recorded as [`CloseReason::Unclosed`].
    pub fn finish(mut self) -> Result<Report, CheckError> {
        if !self.pending.is_empty() {
            return Err(CheckError::Truncated {
                offset: self.offset,
            });
        }
        if let Some(open) = self.open.take() {
            self.cells.push(CellCertificate {
                guard: open.guard.map(ext_back),
                sampling: open.sampling.iter().map(|&v| ext_back(v)).collect(),
                witnesses: open.witnesses,
                close: CloseReason::Unclosed,
            });
        }
        Ok(Report {
            steps: self.steps,
            bytes: self.offset,
            cells: self.cells,
            refuted: self.db.contradiction(),
        })
    }

    fn reject(&self, rule: Rule, detail: impl Into<String>) -> CheckError {
        CheckError::Rejected {
            step: self.steps,
            rule,
            detail: detail.into(),
        }
    }

    /// Allocates a fresh auxiliary variable (odd internal id: can never
    /// collide with a proof variable, which maps to an even id).
    fn fresh_aux(&mut self) -> u32 {
        self.aux_count += 1;
        (self.aux_count - 1) << 1 | 1
    }

    /// Installs the chunked Tseitin expansion of `vars = rhs`, every
    /// clause weakened with the positive guard literal when guarded. Each
    /// chunk constrains at most four variables (three row variables plus a
    /// linking auxiliary), so the expansion is propagation-complete per
    /// row at 2^3 clauses per chunk.
    fn install_expansion(&mut self, vars: &[u32], rhs: bool, guard: Option<u32>) {
        let mut taken = 0usize;
        let mut carry: Option<u32> = None;
        loop {
            let mut chunk: Vec<u32> = carry.take().into_iter().collect();
            if chunk.len() + (vars.len() - taken) <= 4 {
                chunk.extend_from_slice(&vars[taken..]);
                self.emit_xor_clauses(&chunk, rhs, guard);
                return;
            }
            // Fill the chunk to three variables, close it with a linking
            // auxiliary (chunk ⊕ aux = 0, i.e. aux = ⊕chunk) and continue
            // with the auxiliary as the carry.
            let take = 3 - chunk.len();
            chunk.extend_from_slice(&vars[taken..taken + take]);
            taken += take;
            let aux = self.fresh_aux();
            chunk.push(aux);
            self.emit_xor_clauses(&chunk, false, guard);
            carry = Some(aux);
        }
    }

    /// Emits the full CNF of `⊕vars = rhs` (2^(n-1) clauses): one clause
    /// forbidding each assignment of the wrong parity.
    fn emit_xor_clauses(&mut self, vars: &[u32], rhs: bool, guard: Option<u32>) {
        if vars.is_empty() {
            if rhs {
                // 0 = 1: the empty clause, or the unit `g` when guarded.
                let lits = guard.map(|g| vec![mklit(g, false)]).unwrap_or_default();
                self.install_clause(lits, Kind::XorExpansion);
            }
            return;
        }
        debug_assert!(vars.len() <= 4, "chunking failed to bound the width");
        for mask in 0u32..(1 << vars.len()) {
            // `mask` bit i set = variable i assigned true in the forbidden
            // assignment; forbid assignments whose parity differs from rhs.
            if (mask.count_ones() % 2 == 1) == rhs {
                continue;
            }
            // The literal false under the forbidden assignment: a variable
            // assigned true there contributes its negation.
            let mut lits: Vec<ILit> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| mklit(v, mask >> i & 1 == 1))
                .collect();
            if let Some(g) = guard {
                lits.push(mklit(g, false));
            }
            self.install_clause(lits, Kind::XorExpansion);
        }
    }

    /// Installs a clause and records guard occurrences so retirement can
    /// drop it.
    fn install_clause(&mut self, lits: Vec<ILit>, kind: Kind) -> u32 {
        let idx = self.db.add_clause(lits.clone(), kind);
        for &l in &lits {
            let v = litvar(l);
            if self.guards.contains_key(&v) {
                self.guard_occurs.entry(v).or_default().push(idx);
            }
        }
        idx
    }

    /// `Some(g)` when the 1-based proof variable is a live (unretired)
    /// guard.
    fn live_guard(&self, var_1based: u64) -> Option<u32> {
        let g = ext(var_1based);
        match self.guards.get(&g) {
            Some(false) => Some(g),
            _ => None,
        }
    }

    fn apply(&mut self, step: Step) -> Result<(), CheckError> {
        match step {
            Step::NewGuard { guard } => self.on_new_guard(guard),
            Step::XorRow { guard, vars, rhs } => self.on_xor_row(guard, vars, rhs),
            Step::XorDerive {
                guard,
                vars,
                rhs,
                from,
            } => self.on_xor_derive(guard, vars, rhs, &from),
            Step::Learned { lits } => self.on_learned(lits),
            Step::Delete { lits } => self.on_delete(lits),
            Step::Axiom { lits } => self.on_axiom(lits),
            Step::GuardedClause { lits } => self.on_guarded_clause(lits),
            Step::CellBegin { guard, sampling } => self.on_cell_begin(guard, sampling),
            Step::Witness { values } => self.on_witness(values),
            Step::Block { lits } => self.on_block(lits),
            Step::UnsatUnder { assumptions } => self.on_unsat_under(assumptions),
            Step::CellClose { reason } => self.on_cell_close(reason),
            Step::RetireGuard { guard } => self.on_retire_guard(guard),
        }
    }

    fn on_new_guard(&mut self, guard: u64) -> Result<(), CheckError> {
        if guard <= self.num_vars as u64 {
            return Err(self.reject(
                Rule::GuardMisuse,
                format!("guard {guard} shadows a base-formula variable"),
            ));
        }
        let g = ext(guard);
        if self.guards.insert(g, false).is_some() {
            return Err(self.reject(Rule::GuardMisuse, format!("guard {guard} redeclared")));
        }
        Ok(())
    }

    fn on_xor_row(
        &mut self,
        guard: Option<u64>,
        vars: Vec<u64>,
        rhs: bool,
    ) -> Result<(), CheckError> {
        let vars = normalize_xor(vars.into_iter().map(ext).collect());
        match guard {
            None => {
                // An unguarded row must be a constraint of the base
                // formula (its expansion is pre-installed).
                if !self
                    .formula_xors
                    .iter()
                    .any(|(v, r)| *v == vars && *r == rhs)
                {
                    return Err(self.reject(
                        Rule::UnknownXorRow,
                        "unguarded xor row is not part of the base formula",
                    ));
                }
                self.rows.push(XorRow {
                    guard: None,
                    vars,
                    rhs,
                });
            }
            Some(gv) => {
                let g = self
                    .live_guard(gv)
                    .ok_or_else(|| self.reject(Rule::GuardMisuse, "xor row under unknown guard"))?;
                for &v in &vars {
                    if v >= (self.num_vars as u32) << 1 {
                        return Err(self.reject(
                            Rule::UnknownXorRow,
                            "guarded xor row over a non-base variable",
                        ));
                    }
                }
                self.install_expansion(&vars, rhs, Some(g));
                self.parity.push(ParityRow {
                    guard: Some(g),
                    vars: vars.clone(),
                    rhs,
                    active: true,
                });
                self.rows.push(XorRow {
                    guard: Some(g),
                    vars,
                    rhs,
                });
            }
        }
        Ok(())
    }

    fn on_xor_derive(
        &mut self,
        guard: u64,
        vars: Vec<u64>,
        rhs: bool,
        from: &[u64],
    ) -> Result<(), CheckError> {
        let g = self
            .live_guard(guard)
            .ok_or_else(|| self.reject(Rule::GuardMisuse, "derivation under unknown guard"))?;
        if from.is_empty() {
            return Err(self.reject(Rule::BadDerive, "derivation cites no rows"));
        }
        // GF(2) sum of the cited rows: symmetric difference of variable
        // sets, xor of parities.
        let mut acc: BTreeSet<u32> = BTreeSet::new();
        let mut acc_rhs = false;
        for &id in from {
            let row = id
                .checked_sub(1)
                .and_then(|i| self.rows.get(i as usize))
                .ok_or_else(|| self.reject(Rule::BadDerive, format!("unknown row id {id}")))?;
            if !(row.guard.is_none() || row.guard == Some(g)) {
                return Err(self.reject(
                    Rule::BadDerive,
                    "derivation mixes rows from a different guard",
                ));
            }
            for &v in &row.vars {
                if !acc.remove(&v) {
                    acc.insert(v);
                }
            }
            acc_rhs ^= row.rhs;
        }
        let claimed = normalize_xor(vars.into_iter().map(ext).collect());
        if acc.iter().copied().collect::<Vec<u32>>() != claimed || acc_rhs != rhs {
            return Err(self.reject(
                Rule::BadDerive,
                "claimed row is not the GF(2) sum of the cited rows",
            ));
        }
        // Sound by construction; install its expansion so unit propagation
        // can replay the solver's Gauss-derived implications.
        self.install_expansion(&claimed, rhs, Some(g));
        Ok(())
    }

    fn on_learned(&mut self, lits: Vec<i64>) -> Result<(), CheckError> {
        let lits: Vec<ILit> = lits.into_iter().map(ext_lit).collect();
        if !self.db.rup(&lits) {
            return Err(self.reject(
                Rule::FailedRup,
                "learned clause negation does not propagate to a conflict",
            ));
        }
        self.install_clause(lits, Kind::Learned);
        Ok(())
    }

    fn on_delete(&mut self, lits: Vec<i64>) -> Result<(), CheckError> {
        let lits: Vec<ILit> = lits.into_iter().map(ext_lit).collect();
        // Only learned clauses may be deleted (axioms and protocol clauses
        // are load-bearing for witness checks); a miss is a no-op, the
        // DRAT convention.
        if let Some(idx) = self.db.find_active(&lits, Kind::Learned) {
            self.db.delete(idx);
        }
        Ok(())
    }

    fn on_axiom(&mut self, lits: Vec<i64>) -> Result<(), CheckError> {
        let mut key: Vec<ILit> = lits.into_iter().map(ext_lit).collect();
        key.sort_unstable();
        key.dedup();
        if !self.formula_clauses.contains(&key) {
            return Err(self.reject(
                Rule::UnknownAxiom,
                "axiom is not a clause of the base formula",
            ));
        }
        // Already installed by `new`; nothing to add.
        Ok(())
    }

    fn on_guarded_clause(&mut self, lits: Vec<i64>) -> Result<(), CheckError> {
        let lits: Vec<ILit> = lits.into_iter().map(ext_lit).collect();
        self.check_guard_polarity(&lits)?;
        if !lits
            .iter()
            .any(|&l| l & 1 == 0 && self.guards.get(&litvar(l)) == Some(&false))
        {
            return Err(self.reject(
                Rule::GuardMisuse,
                "guarded clause carries no live positive guard literal",
            ));
        }
        self.install_clause(lits, Kind::Guarded);
        Ok(())
    }

    /// Clauses installed *without* a RUP check must never constrain a
    /// guard towards false: every guard literal they carry has to be
    /// positive, which keeps "set every forgotten guard true" a model
    /// extension and the exhaustion argument sound.
    fn check_guard_polarity(&self, lits: &[ILit]) -> Result<(), CheckError> {
        for &l in lits {
            if l & 1 == 1 && self.guards.contains_key(&litvar(l)) {
                return Err(self.reject(
                    Rule::GuardMisuse,
                    "negative guard literal in a non-RUP clause",
                ));
            }
        }
        Ok(())
    }

    fn on_cell_begin(&mut self, guard: Option<u64>, sampling: Vec<u64>) -> Result<(), CheckError> {
        if self.open.is_some() {
            return Err(self.reject(Rule::Protocol, "cell opened inside an open cell"));
        }
        let guard = match guard {
            None => None,
            Some(gv) => Some(
                self.live_guard(gv)
                    .ok_or_else(|| self.reject(Rule::Protocol, "cell under unknown guard"))?,
            ),
        };
        if sampling.is_empty() {
            return Err(self.reject(Rule::Protocol, "empty sampling set"));
        }
        let mut internal = Vec::with_capacity(sampling.len());
        for &v in &sampling {
            if v == 0 || v > self.num_vars as u64 {
                return Err(
                    self.reject(Rule::Protocol, "sampling variable outside the base formula")
                );
            }
            let iv = ext(v);
            if internal.contains(&iv) {
                return Err(self.reject(Rule::Protocol, "duplicate sampling variable"));
            }
            internal.push(iv);
        }
        self.open = Some(OpenCell {
            guard,
            sampling: internal,
            witnesses: Vec::new(),
            expected_block: None,
            verdict: false,
        });
        Ok(())
    }

    fn on_witness(&mut self, values: Vec<bool>) -> Result<(), CheckError> {
        let open = self
            .open
            .as_ref()
            .ok_or_else(|| self.reject(Rule::Protocol, "witness outside a cell"))?;
        if open.expected_block.is_some() {
            return Err(self.reject(Rule::Protocol, "witness before the previous block"));
        }
        if self.db.contradiction() {
            return Err(self.reject(Rule::BadWitness, "witness under a refuted database"));
        }
        if values.len() < self.num_vars {
            return Err(self.reject(Rule::BadWitness, "witness shorter than the base formula"));
        }
        // The value of an internal (even) proof variable under the
        // witness. The solver logs models over the *base* variables only;
        // guard variables above that range take their protocol-forced
        // value: a retired guard is a root unit (+g, so `true`), and a live
        // guard is assumed `false` for the cell being enumerated — the
        // conservative reading that makes every guarded clause body
        // checkable. Anything else uncovered stays unknown.
        let val = |iv: u32| -> Option<bool> {
            if let Some(&v) = values.get((iv >> 1) as usize) {
                return Some(v);
            }
            self.guards.get(&iv).copied()
        };
        let lit_true = |l: ILit| -> Option<bool> { val(litvar(l)).map(|v| v != (l & 1 == 1)) };
        if let Some(g) = open.guard {
            if val(g) != Some(false) {
                return Err(
                    self.reject(Rule::BadWitness, "witness does not activate the cell guard")
                );
            }
        }
        // Semantic check: the witness must satisfy every active clause
        // (expansions excluded — they mention checker auxiliaries — their
        // rows are checked as parities below).
        for (idx, kind, lits) in self.db.active() {
            if kind == Kind::XorExpansion {
                continue;
            }
            let mut sat = false;
            for &l in lits {
                match lit_true(l) {
                    Some(true) => {
                        sat = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        return Err(self.reject(
                            Rule::BadWitness,
                            format!("witness does not cover clause {idx}"),
                        ))
                    }
                }
            }
            if !sat {
                return Err(
                    self.reject(Rule::BadWitness, format!("witness falsifies clause {idx}"))
                );
            }
        }
        for row in &self.parity {
            if !row.active {
                continue;
            }
            if let Some(g) = row.guard {
                match val(g) {
                    Some(true) => continue,
                    Some(false) => {}
                    None => {
                        return Err(
                            self.reject(Rule::BadWitness, "witness does not cover a row guard")
                        )
                    }
                }
            }
            let mut parity = false;
            for &v in &row.vars {
                match val(v) {
                    Some(b) => parity ^= b,
                    None => {
                        return Err(
                            self.reject(Rule::BadWitness, "witness does not cover an xor row")
                        )
                    }
                }
            }
            if parity != row.rhs {
                return Err(self.reject(Rule::BadWitness, "witness violates an xor row"));
            }
        }
        // Re-borrowed rather than held across the checks above; the entry
        // guard already rejected witness-outside-a-cell.
        let Some(open) = self.open.as_mut() else {
            return Err(self.reject(Rule::Protocol, "witness outside a cell"));
        };
        let mut projection = Vec::with_capacity(open.sampling.len());
        let mut expected = BTreeSet::new();
        for &v in &open.sampling {
            let value = values[(v >> 1) as usize];
            projection.push(value);
            // The blocking clause negates the projection.
            expected.insert(mklit(v, value));
        }
        if let Some(g) = open.guard {
            expected.insert(mklit(g, false));
        }
        open.witnesses.push(projection);
        open.expected_block = Some(expected);
        Ok(())
    }

    fn on_block(&mut self, lits: Vec<i64>) -> Result<(), CheckError> {
        let lits: Vec<ILit> = lits.into_iter().map(ext_lit).collect();
        if self.open.is_none() {
            return Err(self.reject(Rule::Protocol, "block outside a cell"));
        }
        let pending = self
            .open
            .as_mut()
            .and_then(|open| open.expected_block.take());
        let Some(expected) = pending else {
            return Err(self.reject(Rule::Protocol, "block without a pending witness"));
        };
        let got: BTreeSet<ILit> = lits.iter().copied().collect();
        if got != expected {
            return Err(self.reject(
                Rule::BadBlock,
                "blocking clause is not the negated projection of its witness",
            ));
        }
        self.install_clause(lits, Kind::Block);
        Ok(())
    }

    fn on_unsat_under(&mut self, assumptions: Vec<i64>) -> Result<(), CheckError> {
        let assumed: Vec<ILit> = assumptions.into_iter().map(ext_lit).collect();
        let clause: Vec<ILit> = assumed.iter().map(|&l| l ^ 1).collect();
        if !self.db.rup(&clause) {
            return Err(self.reject(
                Rule::FailedRup,
                "negated-assumption clause does not propagate to a conflict",
            ));
        }
        if let Some(open) = self.open.as_mut() {
            // The verdict only certifies the cell when the solve ran under
            // exactly the cell's assumptions (`¬g`, or none unguarded).
            let cell_assumptions: BTreeSet<ILit> =
                open.guard.iter().map(|&g| mklit(g, true)).collect();
            if assumed.iter().copied().collect::<BTreeSet<ILit>>() == cell_assumptions {
                open.verdict = true;
            }
        }
        self.install_clause(clause, Kind::Lemma);
        Ok(())
    }

    fn on_cell_close(&mut self, reason: u8) -> Result<(), CheckError> {
        let open = self
            .open
            .take()
            .ok_or_else(|| self.reject(Rule::Protocol, "close without an open cell"))?;
        let close = match reason {
            0 => {
                if !open.verdict {
                    self.open = Some(open);
                    return Err(self.reject(
                        Rule::BogusExhaustion,
                        "cell closed as exhausted without a verified verdict",
                    ));
                }
                CloseReason::Exhausted
            }
            1 => CloseReason::BoundReached,
            2 => CloseReason::Interrupted,
            _ => {
                self.open = Some(open);
                return Err(self.reject(Rule::Protocol, "unknown close reason"));
            }
        };
        self.cells.push(CellCertificate {
            guard: open.guard.map(ext_back),
            sampling: open.sampling.iter().map(|&v| ext_back(v)).collect(),
            witnesses: open.witnesses,
            close,
        });
        Ok(())
    }

    fn on_retire_guard(&mut self, guard: u64) -> Result<(), CheckError> {
        let g = self.live_guard(guard).ok_or_else(|| {
            self.reject(Rule::GuardMisuse, "retiring an unknown or retired guard")
        })?;
        if self.open.as_ref().is_some_and(|open| open.guard == Some(g)) {
            return Err(self.reject(Rule::Protocol, "retiring the open cell's guard"));
        }
        self.guards.insert(g, true);
        for row in &mut self.parity {
            if row.guard == Some(g) {
                row.active = false;
            }
        }
        for idx in self.guard_occurs.remove(&g).unwrap_or_default() {
            self.db.delete(idx);
        }
        // With every clause mentioning `g` gone, `g` occurs nowhere; the
        // unit `g` is a conservative extension that permanently satisfies
        // whatever the guard scoped. It cannot conflict unless the
        // database already entailed `¬g`, which no honest producer can
        // reach — reject rather than mis-record a refutation.
        let refuted_before = self.db.contradiction();
        self.db.assert_root(mklit(g, false));
        if self.db.contradiction() && !refuted_before {
            return Err(self.reject(
                Rule::GuardMisuse,
                "retired guard unit contradicts the database",
            ));
        }
        self.install_clause(vec![mklit(g, false)], Kind::Lemma);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-encoded proof stream builder (independent of the producer).
    #[derive(Default)]
    struct Enc(Vec<u8>);

    impl Enc {
        fn u(&mut self, mut v: u64) -> &mut Self {
            loop {
                let b = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    self.0.push(b);
                    return self;
                }
                self.0.push(b | 0x80);
            }
        }

        fn lit(&mut self, l: i64) -> &mut Self {
            self.u(((l << 1) ^ (l >> 63)) as u64)
        }

        fn lits(&mut self, lits: &[i64]) -> &mut Self {
            self.u(lits.len() as u64);
            for &l in lits {
                self.lit(l);
            }
            self
        }

        fn byte(&mut self, b: u8) -> &mut Self {
            self.0.push(b);
            self
        }

        fn learned(&mut self, lits: &[i64]) -> &mut Self {
            self.byte(4).lits(lits)
        }

        fn unsat_under(&mut self, assumptions: &[i64]) -> &mut Self {
            self.byte(11).lits(assumptions)
        }

        fn witness(&mut self, values: &[bool]) -> &mut Self {
            self.byte(9).u(values.len() as u64);
            let mut b = 0u8;
            for (i, &v) in values.iter().enumerate() {
                if v {
                    b |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    self.0.push(b);
                    b = 0;
                }
            }
            if values.len() % 8 != 0 {
                self.0.push(b);
            }
            self
        }
    }

    #[test]
    fn accepts_a_resolution_refutation() {
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        f.add_clause(&[1, -2]);
        f.add_clause(&[-1, 2]);
        f.add_clause(&[-1, -2]);
        let mut e = Enc::default();
        e.learned(&[1]).learned(&[]).unsat_under(&[]);
        let report = Checker::check(&f, &e.0).expect("valid refutation");
        assert!(report.refuted);
        assert_eq!(report.steps, 3);
        report
            .require_complete()
            .expect("no cells to be incomplete");
    }

    #[test]
    fn rejects_a_non_rup_learned_clause() {
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        let mut e = Enc::default();
        e.learned(&[1]);
        let err = Checker::check(&f, &e.0).expect_err("not RUP");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::FailedRup,
                ..
            }
        ));
    }

    #[test]
    fn base_xors_check_as_rup_through_their_expansions() {
        // x1 ⊕ x2 = 1 plus the unit row x2 = 1 forces x1 false; with the
        // clause (x1) the root propagation is already refuted.
        let mut f = Formula::new(2);
        f.add_xor(&[1, 2], true);
        f.add_xor(&[2], true);
        f.add_clause(&[1]);
        let mut e = Enc::default();
        e.unsat_under(&[]);
        let report = Checker::check(&f, &e.0).expect("refuted by propagation");
        assert!(report.refuted);
    }

    #[test]
    fn long_xor_chunking_is_propagation_complete() {
        // x1 ⊕ … ⊕ x9 = 1 with x2..x9 forced false forces x1 true.
        let vars: Vec<u64> = (1..=9).collect();
        let mut f = Formula::new(9);
        f.add_xor(&vars, true);
        for v in 2..=9 {
            f.add_clause(&[-(v as i64)]);
        }
        let mut e = Enc::default();
        e.learned(&[1]);
        Checker::check(&f, &e.0).expect("x1 is forced through the chunks");
    }

    #[test]
    fn cell_protocol_round_trip() {
        // F = (x1 ∨ x2) over sampling {x1, x2}, enumerated unguarded.
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        let mut e = Enc::default();
        e.byte(8).u(0).u(2).u(1).u(2); // CellBegin, no guard, sampling x1 x2
        e.witness(&[true, false]);
        e.byte(10).lits(&[-1, 2]); // Block ¬(x1=1, x2=0)
        e.witness(&[false, true]);
        e.byte(10).lits(&[1, -2]);
        e.witness(&[true, true]);
        e.byte(10).lits(&[-1, -2]);
        // Unit propagation alone cannot refute the blocked residue; a
        // learned clause bridges the gap, as a CDCL producer would log.
        e.learned(&[2]);
        e.unsat_under(&[]); // residue refuted
        e.byte(12).byte(0); // CellClose exhausted
        let report = Checker::check(&f, &e.0).expect("a complete enumeration");
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert!(cell.exhaustive());
        assert_eq!(cell.witnesses.len(), 3);
        report
            .require_complete()
            .expect("exhausted cell is complete");
    }

    #[test]
    fn rejects_wrong_block_and_bogus_exhaustion() {
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        let mut e = Enc::default();
        e.byte(8).u(0).u(2).u(1).u(2);
        e.witness(&[true, false]);
        e.byte(10).lits(&[-1, -2]); // wrong: blocks a different projection
        let err = Checker::check(&f, &e.0).expect_err("bad block");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::BadBlock,
                ..
            }
        ));

        let mut e = Enc::default();
        e.byte(8).u(0).u(1).u(1);
        e.byte(12).byte(0); // close exhausted with no verdict
        let err = Checker::check(&f, &e.0).expect_err("no verdict");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::BogusExhaustion,
                ..
            }
        ));
    }

    #[test]
    fn rejects_witness_violating_the_formula() {
        let mut f = Formula::new(2);
        f.add_clause(&[1]);
        let mut e = Enc::default();
        e.byte(8).u(0).u(1).u(1);
        e.witness(&[false, false]);
        let err = Checker::check(&f, &e.0).expect_err("witness falsifies (x1)");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::BadWitness,
                ..
            }
        ));
    }

    #[test]
    fn interrupted_cell_is_typed_incomplete() {
        let mut f = Formula::new(1);
        f.add_clause(&[1]);
        let mut e = Enc::default();
        e.byte(8).u(0).u(1).u(1);
        e.witness(&[true]);
        e.byte(10).lits(&[-1]);
        e.byte(12).byte(2); // interrupted
        let report = Checker::check(&f, &e.0).expect("stream is valid");
        let err = report.require_complete().expect_err("incomplete cell");
        assert!(matches!(
            err,
            CheckError::CertIncomplete {
                cell: 0,
                reason: CloseReason::Interrupted
            }
        ));
    }

    #[test]
    fn guarded_cell_with_derive_and_retirement() {
        // F over three vars; guard g = var 4; cell rows x1⊕x2=1, x2⊕x3=1;
        // their sum x1⊕x3=0 is a legitimate derive, a wrong sum is not.
        let mut f = Formula::new(3);
        f.add_clause(&[1, 2, 3]);
        let mut e = Enc::default();
        e.byte(1).u(4); // NewGuard 4
        e.byte(2).u(4).u(2).u(1).u(2).byte(1); // XorRow g: x1⊕x2=1 (id 1)
        e.byte(2).u(4).u(2).u(2).u(3).byte(1); // XorRow g: x2⊕x3=1 (id 2)
        e.byte(3).u(4).u(2).u(1).u(3).byte(0).u(2).u(1).u(2); // derive x1⊕x3=0 from 1,2
        e.byte(8).u(4).u(3).u(1).u(2).u(3); // CellBegin under g
        e.witness(&[true, false, true, false]); // x1=1 x2=0 x3=1, g=0
        e.byte(10).lits(&[-1, 2, -3, 4]); // block ∪ {g}
        e.unsat_under(&[-4]); // would need to be RUP to certify…
        let prefix_ok = {
            let mut probe = Checker::new(&f);
            probe.feed(&e.0[..e.0.len()]).is_ok()
        };
        // x1=0,x2=1,x3=0 still satisfies everything, so the verdict must
        // NOT check out — the residue is satisfiable.
        assert!(!prefix_ok, "unsat verdict over a satisfiable residue");

        // A wrong derive is rejected outright.
        let mut e = Enc::default();
        e.byte(1).u(4);
        e.byte(2).u(4).u(2).u(1).u(2).byte(1);
        e.byte(2).u(4).u(2).u(2).u(3).byte(1);
        e.byte(3).u(4).u(2).u(1).u(3).byte(1).u(2).u(1).u(2); // wrong rhs
        let err = Checker::check(&f, &e.0).expect_err("bad derive");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::BadDerive,
                ..
            }
        ));

        // Retirement drops the guarded layer: after retiring g the unit g
        // holds, and a fresh guard can host a new cell.
        let mut e = Enc::default();
        e.byte(1).u(4);
        e.byte(2).u(4).u(2).u(1).u(2).byte(1);
        e.byte(13).u(4); // retire
        let report = Checker::check(&f, &e.0).expect("retirement is clean");
        assert!(!report.refuted);
    }

    #[test]
    fn rejects_axiom_not_in_formula() {
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        let mut e = Enc::default();
        e.byte(6).lits(&[1, -2]);
        let err = Checker::check(&f, &e.0).expect_err("foreign axiom");
        assert!(matches!(
            err,
            CheckError::Rejected {
                rule: Rule::UnknownAxiom,
                ..
            }
        ));
    }

    #[test]
    fn streaming_feed_handles_split_steps() {
        let mut f = Formula::new(2);
        f.add_clause(&[1, 2]);
        f.add_clause(&[1, -2]);
        let mut e = Enc::default();
        e.learned(&[1]);
        let mut checker = Checker::new(&f);
        for chunk in e.0.chunks(1) {
            checker.feed(chunk).expect("byte-at-a-time feeding");
        }
        let report = checker.finish().expect("complete");
        assert_eq!(report.steps, 1);
    }

    #[test]
    fn truncated_stream_fails_finish() {
        let f = Formula::new(1);
        let mut checker = Checker::new(&f);
        checker.feed(&[4]).expect("tag alone is just pending");
        assert!(matches!(
            checker.finish(),
            Err(CheckError::Truncated { .. })
        ));
    }
}
