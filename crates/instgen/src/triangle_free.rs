//! Triangle-free hard instances: random binary CSPs whose constraint graph
//! is built greedily while **rejecting any edge that would close a
//! triangle**, then direct-encoded to CNF, following Escamocher, O'Sullivan
//! & Prestwich (*Generating Difficult SAT Instances by Preventing
//! Triangles*). Triangle-free constraint graphs defeat the local
//! consistency reasoning that makes dense random CSPs easy at the same
//! constraint count, producing small instances that are disproportionately
//! hard for systematic solvers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigen_cnf::{CnfFormula, Var};

use crate::{shuffle, InstanceGenerator};

/// Configuration for the triangle-free random binary CSP family.
///
/// A CSP variable `v` with domain size `d` becomes `d` Boolean variables
/// `x_{v,0} … x_{v,d-1}` (index `v·d + value`) with an at-least-one clause
/// and pairwise at-most-one clauses. Each accepted constraint-graph edge
/// `(u, v)` contributes [`forbidden_per_edge`](Self::forbidden_per_edge)
/// distinct forbidden value pairs `(a, b)`, each encoded as the binary
/// clause `¬x_{u,a} ∨ ¬x_{v,b}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriangleFreeConfig {
    /// Number of CSP variables (Boolean variable count is `csp_vars · domain`).
    pub csp_vars: usize,
    /// Uniform domain size; Escamocher et al. concentrate on domain 3.
    pub domain: usize,
    /// Target number of constraint-graph edges. The generator stops early
    /// if triangle-freeness makes the target unreachable within its attempt
    /// budget, so this is an upper bound (tight in practice for the sparse
    /// graphs the family calls for).
    pub edges: usize,
    /// Forbidden value pairs per edge, `≤ domain²`; 3 of 9 at domain 3 is
    /// the paper's hard density.
    pub forbidden_per_edge: usize,
}

impl InstanceGenerator for TriangleFreeConfig {
    fn name(&self) -> String {
        format!(
            "triangle-free-v{}-d{}-e{}-f{}",
            self.csp_vars, self.domain, self.edges, self.forbidden_per_edge
        )
    }

    fn generate(&self, seed: u64) -> CnfFormula {
        assert!(self.csp_vars >= 2, "need at least two CSP variables");
        assert!(self.domain >= 2, "need a non-trivial domain");
        assert!(
            self.forbidden_per_edge <= self.domain * self.domain,
            "cannot forbid more pairs than the domain product"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Greedy triangle-free edge selection: accept (u, v) only if the
        // edge is new and u and v share no neighbour.
        let mut adjacency = vec![Vec::<usize>::new(); self.csp_vars];
        let mut accepted = Vec::new();
        let mut attempts = 0usize;
        let budget = 64 * (self.edges + 1);
        while accepted.len() < self.edges && attempts < budget {
            attempts += 1;
            let u = rng.gen_range(0..self.csp_vars);
            let v = rng.gen_range(0..self.csp_vars);
            if u == v || adjacency[u].contains(&v) {
                continue;
            }
            let closes_triangle = adjacency[u].iter().any(|w| adjacency[v].contains(w));
            if closes_triangle {
                continue;
            }
            adjacency[u].push(v);
            adjacency[v].push(u);
            accepted.push((u.min(v), u.max(v)));
        }

        let x = |var: usize, value: usize| Var::new(var * self.domain + value);
        let mut formula = CnfFormula::new(self.csp_vars * self.domain);
        for v in 0..self.csp_vars {
            formula
                .add_clause((0..self.domain).map(|a| x(v, a).positive()))
                .expect("at-least-one literals are in range");
            for a in 0..self.domain {
                for b in 0..a {
                    formula
                        .add_clause([x(v, a).negative(), x(v, b).negative()])
                        .expect("at-most-one literals are in range");
                }
            }
        }
        for (u, v) in accepted {
            // A distinct random subset of value pairs via a partial shuffle.
            let mut pairs: Vec<(usize, usize)> = (0..self.domain)
                .flat_map(|a| (0..self.domain).map(move |b| (a, b)))
                .collect();
            shuffle(&mut pairs, &mut rng);
            for &(a, b) in pairs.iter().take(self.forbidden_per_edge) {
                formula
                    .add_clause([x(u, a).negative(), x(v, b).negative()])
                    .expect("forbidden-pair literals are in range");
            }
        }
        formula
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TriangleFreeConfig {
        TriangleFreeConfig {
            csp_vars: 8,
            domain: 3,
            edges: 10,
            forbidden_per_edge: 3,
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let c = config();
        assert_eq!(c.dimacs(21), c.dimacs(21));
        assert_ne!(c.dimacs(21), c.dimacs(22));
    }

    #[test]
    fn constraint_graph_is_triangle_free() {
        let c = config();
        let f = c.generate(5);
        // Recover the constraint graph from the binary inter-variable
        // clauses (two negative literals on distinct CSP variables).
        let mut edges = std::collections::HashSet::new();
        for clause in f.clauses() {
            if clause.len() != 2 {
                continue;
            }
            let u = clause.lits()[0].var().index() / c.domain;
            let v = clause.lits()[1].var().index() / c.domain;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        assert!(!edges.is_empty());
        let has = |a: usize, b: usize| edges.contains(&(a.min(b), a.max(b)));
        for a in 0..c.csp_vars {
            for b in a + 1..c.csp_vars {
                for w in b + 1..c.csp_vars {
                    assert!(
                        !(has(a, b) && has(b, w) && has(a, w)),
                        "triangle {a}-{b}-{w} in the constraint graph"
                    );
                }
            }
        }
    }

    #[test]
    fn models_assign_exactly_one_value_per_csp_variable() {
        let c = TriangleFreeConfig {
            csp_vars: 4,
            domain: 3,
            edges: 4,
            forbidden_per_edge: 2,
        };
        let f = c.generate(9);
        let models = f.enumerate_models_brute_force();
        assert!(!models.is_empty(), "sparse instance should be satisfiable");
        for model in &models {
            for v in 0..c.csp_vars {
                let assigned = (0..c.domain)
                    .filter(|&a| model.values()[v * c.domain + a])
                    .count();
                assert_eq!(assigned, 1, "CSP variable {v} not exactly-one");
            }
        }
    }
}
