//! Scale-free random k-SAT: clause variables are drawn from a power-law
//! distribution instead of uniformly, following Ansótegui, Bonet & Levy
//! (*Scale-Free Random SAT Instances*). Variable `i` (1-based) is selected
//! with probability proportional to `i^(-β)`, so a few "hub" variables occur
//! in many clauses — the occurrence profile of industrial instances — which
//! stresses clause-database and XOR-propagation heuristics very differently
//! from uniform random SAT.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigen_cnf::{CnfFormula, Var};

use crate::InstanceGenerator;

/// Configuration for the scale-free random k-SAT family.
///
/// The power-law exponent β is expressed in **quarter units**
/// ([`exponent_quarters`](Self::exponent_quarters) = 3 means β = 0.75) so
/// the selection weights can be computed in pure integer arithmetic: `powf`
/// is not bit-identical across platforms, and generator output must be.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaleFreeConfig {
    /// Number of variables `n`.
    pub num_vars: usize,
    /// Number of clauses `m` (the density knob: `m / n`).
    pub num_clauses: usize,
    /// Literals per clause `k` (distinct variables, random polarities).
    pub clause_len: usize,
    /// Power-law exponent β in quarters: β = `exponent_quarters` / 4.
    /// 0 degenerates to uniform random k-SAT; Ansótegui et al. report the
    /// industrial-like regime around β ≈ 0.75–1 (3–4 quarters). At most 16
    /// (β = 4).
    pub exponent_quarters: u32,
}

impl ScaleFreeConfig {
    /// The power-law exponent β as a float, for display only.
    pub fn exponent(&self) -> f64 {
        f64::from(self.exponent_quarters) * 0.25
    }

    /// Per-variable selection weights `⌊2^32 · i^(-β)⌉`-ish, computed in
    /// fixed point. Monotone non-increasing in `i`, and ≥ 1 so every
    /// variable stays reachable.
    fn weights(&self) -> Vec<u64> {
        (1..=self.num_vars as u64)
            .map(|i| (1u128 << 48) / u128::from(pow_quarters_q16(i, self.exponent_quarters)))
            .map(|w| (w as u64).max(1))
            .collect()
    }
}

/// `⌊i^(q/4) · 2^16⌋` (approximately), via an integer fourth root in Q16
/// fixed point followed by `q` fixed-point multiplications. Integer-only,
/// hence deterministic across hosts.
fn pow_quarters_q16(i: u64, quarters: u32) -> u64 {
    assert!(quarters <= 16, "exponent_quarters is capped at 16 (β = 4)");
    // root ≈ i^(1/4) · 2^16: the fourth root of i · 2^64.
    let root = isqrt(isqrt((u128::from(i)) << 64));
    let mut acc: u128 = 1 << 16;
    for _ in 0..quarters {
        acc = (acc * root) >> 16;
    }
    acc.max(1) as u64
}

/// Integer square root by Newton's method (u128; `isqrt` in std needs a
/// newer toolchain than this workspace's MSRV).
fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut x = 1u128 << ((128 - n.leading_zeros()).div_ceil(2));
    loop {
        let y = (x + n / x) >> 1;
        if y >= x {
            return x;
        }
        x = y;
    }
}

impl InstanceGenerator for ScaleFreeConfig {
    fn name(&self) -> String {
        format!(
            "scale-free-n{}-m{}-k{}-b{:.2}",
            self.num_vars,
            self.num_clauses,
            self.clause_len,
            self.exponent()
        )
    }

    fn generate(&self, seed: u64) -> CnfFormula {
        assert!(self.clause_len >= 1, "clauses need at least one literal");
        assert!(
            self.num_vars >= self.clause_len,
            "clause_len distinct variables must exist"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = self.weights();
        // Cumulative weights for binary-searched weighted sampling.
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for w in &weights {
            total += w;
            cumulative.push(total);
        }

        let mut formula = CnfFormula::new(self.num_vars);
        let mut clause_vars = Vec::with_capacity(self.clause_len);
        for _ in 0..self.num_clauses {
            clause_vars.clear();
            // Rejection-sample distinct variables; with a bounded number of
            // attempts so a pathologically skewed weight vector cannot hang
            // the generator (the deterministic fallback below fills from the
            // lowest-index unused variables).
            let mut attempts = 0usize;
            while clause_vars.len() < self.clause_len && attempts < 64 * self.clause_len {
                attempts += 1;
                let ticket = rng.gen_range(0..total);
                let index = cumulative.partition_point(|&c| c <= ticket);
                if !clause_vars.contains(&index) {
                    clause_vars.push(index);
                }
            }
            for index in 0..self.num_vars {
                if clause_vars.len() == self.clause_len {
                    break;
                }
                if !clause_vars.contains(&index) {
                    clause_vars.push(index);
                }
            }
            let lits: Vec<_> = clause_vars
                .iter()
                .map(|&index| Var::new(index).lit(rng.gen::<bool>()))
                .collect();
            formula
                .add_clause(lits)
                .expect("generated literals are in range");
        }
        formula
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ScaleFreeConfig {
        ScaleFreeConfig {
            num_vars: 20,
            num_clauses: 60,
            clause_len: 3,
            exponent_quarters: 3,
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let c = config();
        assert_eq!(c.dimacs(7), c.dimacs(7));
        assert_ne!(c.dimacs(7), c.dimacs(8));
    }

    #[test]
    fn clauses_have_distinct_vars_and_requested_shape() {
        let c = config();
        let f = c.generate(3);
        assert_eq!(f.num_vars(), 20);
        assert_eq!(f.clauses().len(), 60);
        for clause in f.clauses() {
            assert_eq!(clause.lits().len(), 3);
            let mut vars: Vec<_> = clause.lits().iter().map(|l| l.var()).collect();
            vars.dedup();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "clause vars must be distinct");
        }
    }

    #[test]
    fn weights_follow_a_power_law() {
        let c = config();
        let w = c.weights();
        // Monotone non-increasing, strictly decreasing at the head.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!(w[0] > w[9]);
        // β = 0.75: w[0]/w[15] should be ≈ 16^0.75 = 8 (fixed-point slack).
        let ratio = w[0] as f64 / w[15] as f64;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
        // β = 0 degenerates to uniform weights.
        let uniform = ScaleFreeConfig {
            exponent_quarters: 0,
            ..c
        }
        .weights();
        assert!(uniform.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn hub_variables_occur_more_often() {
        let c = ScaleFreeConfig {
            num_vars: 40,
            num_clauses: 400,
            clause_len: 3,
            exponent_quarters: 6,
        };
        let f = c.generate(11);
        let mut occurrences = vec![0usize; 40];
        for clause in f.clauses() {
            for lit in clause.lits() {
                occurrences[lit.var().index()] += 1;
            }
        }
        let head: usize = occurrences[..8].iter().sum();
        let tail: usize = occurrences[32..].iter().sum();
        assert!(
            head > 3 * tail,
            "power-law head {head} should dominate tail {tail}"
        );
    }
}
