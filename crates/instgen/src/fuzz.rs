//! The differential fuzz harness: for a generated instance, the solver
//! stack is run three independent ways over the same sequence of XOR hash
//! cells — a persistent incremental solver with the Gauss engine forced
//! **on**, a persistent incremental solver with it forced **off**, and
//! scratch enumeration from a fresh solver per cell — and the results must
//! agree exactly: same projected witness *sets*, same exhaustive/Unsat
//! verdicts, same counts. Small instances are additionally checked against
//! a brute-force oracle, and `SolverStats` invariants (guard bookkeeping,
//! solve-call accounting) are asserted on both persistent solvers.
//!
//! The Gauss-on lane additionally runs with proof logging enabled, and the
//! stream is verified cell-by-cell with the independent [`unigen_cert`]
//! checker: every exhausted cell must carry a checked refutation of its
//! blocked residue, and the checker's per-cell verdicts must agree with the
//! enumeration outcomes the harness observed.
//!
//! [`service_case`] covers the sampler layer: batch determinism through
//! [`SamplerService`] against the serial [`WitnessSampler::sample_batch`]
//! reference, a typed [`SamplerError::Unsatisfiable`] from UniGen
//! preparation on unsat inputs, and clean all-⊥ outcomes (never a wedged
//! worker) when UniWit samples an unsat instance.
//!
//! Everything is driven by a single `u64` seed, so a failure report's seed
//! plus the instance name is a complete reproduction recipe.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use unigen::{
    cert_formula, SampleOutcome, SampleRequest, SamplerError, SamplerService, ServiceConfig,
    UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler,
};
use unigen_cert::Checker;
use unigen_cnf::{CnfFormula, Model, Var, XorClause};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{enumerate_cell, Budget, GaussMode, ProofLog, Solver, SolverConfig};

/// Knobs for [`differential_case`]. The defaults keep a debug-mode case in
/// the low milliseconds on the instance sizes the fuzz tests use.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Widest XOR layer to draw (the harness also always runs the empty
    /// layer, i.e. plain `BSAT` over the base formula).
    pub max_width: usize,
    /// Hash cells drawn per width.
    pub cells_per_width: usize,
    /// Enumeration bound (`BSAT`'s cutoff) per cell.
    pub bound: usize,
    /// Brute-force-oracle cutoff: cells on formulas with at most this many
    /// variables are also checked against exhaustive model enumeration.
    pub oracle_max_vars: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_width: 3,
            cells_per_width: 2,
            bound: 16,
            oracle_max_vars: 12,
        }
    }
}

/// What one differential case observed; `divergence` is `None` when all
/// modes agreed and every invariant held.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Instance name (from [`crate::InstanceGenerator::name`]).
    pub name: String,
    /// The case seed — with the name, the full reproduction recipe.
    pub seed: u64,
    /// Hash cells checked (including the empty layers).
    pub cells: usize,
    /// Cells that were exhaustively empty (Unsat under the layer).
    pub unsat_cells: usize,
    /// Witnesses seen across all cells in the Gauss-on mode.
    pub witnesses: usize,
    /// Proof steps the independent checker verified on the Gauss-on lane.
    pub certified_steps: u64,
    /// Human-readable description of the first disagreement, if any.
    pub divergence: Option<String>,
}

/// One cell result reduced to what the modes must agree on.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CellDigest {
    witnesses: BTreeSet<Vec<bool>>,
    exhaustive: bool,
}

fn digest(outcome: &unigen_satsolver::EnumerationOutcome, sampling_set: &[Var]) -> CellDigest {
    CellDigest {
        witnesses: outcome
            .witnesses
            .iter()
            .map(|w| project(w, sampling_set))
            .collect(),
        exhaustive: outcome.is_exhaustive(),
    }
}

fn project(model: &Model, sampling_set: &[Var]) -> Vec<bool> {
    sampling_set
        .iter()
        .map(|v| model.values()[v.index()])
        .collect()
}

/// Runs the three-way differential check on `formula`. All randomness (which
/// XOR layers are drawn) comes from `seed`; the same `(formula, seed,
/// config)` triple always checks the same cells.
pub fn differential_case(
    name: &str,
    formula: &CnfFormula,
    seed: u64,
    config: &FuzzConfig,
) -> CaseReport {
    let sampling_set = formula.sampling_set_or_all();
    let mut rng = StdRng::seed_from_u64(seed);
    let family = XorHashFamily::new(sampling_set.clone());

    // The cell schedule: the empty layer first (plain BSAT), then
    // `cells_per_width` cells at each width, then the empty layer again —
    // a persistent solver that has seen hashed cells must still answer the
    // base query identically (no residue from retired guards).
    let mut layers: Vec<Vec<XorClause>> = vec![Vec::new()];
    let max_width = config.max_width.min(sampling_set.len());
    for width in 1..=max_width {
        for _ in 0..config.cells_per_width {
            layers.push(family.sample(width, &mut rng).to_xor_clauses());
        }
    }
    layers.push(Vec::new());

    // The Gauss-on lane records a proof stream, verified incrementally by
    // the independent checker as a fourth differential dimension: logging
    // must not perturb enumeration, and every step must check.
    let mut gauss_on = Solver::from_formula_with_config(
        formula,
        SolverConfig {
            gauss: GaussMode::On,
            proof: Some(ProofLog::new()),
            ..SolverConfig::default()
        },
    );
    let mut checker = Checker::new(&cert_formula(formula));
    let mut watermark = 0usize;
    let mut gauss_off = Solver::from_formula_with_config(
        formula,
        SolverConfig {
            gauss: GaussMode::Off,
            ..SolverConfig::default()
        },
    );

    let budget = Budget::new();
    let mut report = CaseReport {
        name: name.to_string(),
        seed,
        cells: layers.len(),
        unsat_cells: 0,
        witnesses: 0,
        certified_steps: 0,
        divergence: None,
    };
    let mut empty_layer_digests: Vec<CellDigest> = Vec::new();

    for (cell_index, xors) in layers.iter().enumerate() {
        let on_outcome = enumerate_cell(&mut gauss_on, &sampling_set, xors, config.bound, &budget);
        let off_outcome =
            enumerate_cell(&mut gauss_off, &sampling_set, xors, config.bound, &budget);

        // Certify the cell's proof-stream suffix before anything else: a
        // rejected step localises the failure to this cell.
        let bytes = match gauss_on.proof_bytes() {
            Some(bytes) => bytes.to_vec(),
            None => {
                report.divergence = Some(format!(
                    "cell {cell_index}: the gauss-on lane lost its proof sink"
                ));
                return report;
            }
        };
        if let Err(err) = checker.feed(&bytes[watermark..]) {
            report.divergence = Some(format!(
                "cell {cell_index} ({} xors): proof certification failed: {err}",
                xors.len()
            ));
            return report;
        }
        watermark = bytes.len();

        // Scratch: a fresh default-config solver over the formula with the
        // cell's XORs baked in as base constraints.
        let mut hashed = formula.clone();
        for xor in xors {
            if hashed.add_xor_clause(xor.clone()).is_err() {
                report.divergence = Some(format!(
                    "cell {cell_index}: hash layer produced an out-of-range xor"
                ));
                return report;
            }
        }
        let mut scratch_solver = Solver::from_formula(&hashed);
        let scratch_outcome = unigen_satsolver::bounded_solutions(
            &mut scratch_solver,
            &sampling_set,
            config.bound,
            &budget,
        );

        // Every mode's witnesses must actually satisfy the hashed formula.
        for (mode, outcome) in [
            ("gauss-on", &on_outcome),
            ("gauss-off", &off_outcome),
            ("scratch", &scratch_outcome),
        ] {
            if let Some(bad) = outcome.witnesses.iter().find(|w| !hashed.evaluate(w)) {
                report.divergence = Some(format!(
                    "cell {cell_index} ({} xors): {mode} returned a non-witness \
                     (projection {:?})",
                    xors.len(),
                    project(bad, &sampling_set)
                ));
                return report;
            }
        }

        let on = digest(&on_outcome, &sampling_set);
        let off = digest(&off_outcome, &sampling_set);
        let scratch = digest(&scratch_outcome, &sampling_set);

        // All modes must agree on the semantic facts: the exhaustive/Unsat
        // verdict and the distinct-witness count. The witness *sets* must
        // match exactly when the cell was exhaustive; a bound-reached cell
        // legally returns any `bound`-sized subset, in search order, so
        // only the count (== bound) is comparable there.
        for (mode, got) in [("gauss-off", &off), ("scratch", &scratch)] {
            let agree = got.exhaustive == on.exhaustive
                && got.witnesses.len() == on.witnesses.len()
                && (!on.exhaustive || got.witnesses == on.witnesses);
            if !agree {
                report.divergence = Some(format!(
                    "cell {cell_index} ({} xors): {mode} disagrees with gauss-on: \
                     {} vs {} witnesses, exhaustive {} vs {}",
                    xors.len(),
                    got.witnesses.len(),
                    on.witnesses.len(),
                    got.exhaustive,
                    on.exhaustive
                ));
                return report;
            }
        }

        // Brute-force oracle on small instances: when the cell was
        // exhaustive, its witness set must be exactly the projected models
        // of the hashed formula.
        if formula.num_vars() <= config.oracle_max_vars && on.exhaustive {
            let expected: BTreeSet<Vec<bool>> = hashed
                .enumerate_models_brute_force()
                .iter()
                .map(|m| project(m, &sampling_set))
                .collect();
            if expected != on.witnesses {
                report.divergence = Some(format!(
                    "cell {cell_index}: brute-force oracle found {} projected models, \
                     solver enumerated {}",
                    expected.len(),
                    on.witnesses.len()
                ));
                return report;
            }
        }

        if xors.is_empty() {
            empty_layer_digests.push(on.clone());
        }
        if on.exhaustive && on.witnesses.is_empty() {
            report.unsat_cells += 1;
        }
        report.witnesses += on.witnesses.len();
    }

    // The empty layer before and after the hashed cells must agree: retired
    // guards may not leave residue in the persistent solvers. (As above,
    // identical sets are only required when the enumeration was
    // exhaustive; a bound-reached base query may return a different
    // subset once the clause database has evolved.)
    let residue_free = empty_layer_digests[0].exhaustive == empty_layer_digests[1].exhaustive
        && empty_layer_digests[0].witnesses.len() == empty_layer_digests[1].witnesses.len()
        && (!empty_layer_digests[0].exhaustive
            || empty_layer_digests[0].witnesses == empty_layer_digests[1].witnesses);
    if !residue_free {
        report.divergence = Some(format!(
            "base-formula enumeration changed after {} hashed cells: \
             {} vs {} witnesses",
            report.cells - 2,
            empty_layer_digests[0].witnesses.len(),
            empty_layer_digests[1].witnesses.len()
        ));
        return report;
    }

    // SolverStats invariants on both persistent solvers.
    for (mode, solver) in [("gauss-on", &gauss_on), ("gauss-off", &gauss_off)] {
        let stats = solver.stats();
        if stats.guards_created != stats.guards_retired {
            report.divergence = Some(format!(
                "{mode}: guard leak — {} created, {} retired",
                stats.guards_created, stats.guards_retired
            ));
            return report;
        }
        if stats.solve_calls < report.cells as u64 {
            report.divergence = Some(format!(
                "{mode}: only {} solve calls across {} cells",
                stats.solve_calls, report.cells
            ));
            return report;
        }
    }

    // Close out the proof check and cross-check the checker's independent
    // per-cell verdicts against what the harness itself observed on the
    // Gauss-on lane. (The budget here is never interrupted, so every cell
    // certificate must be complete.)
    let cert = match checker.finish() {
        Ok(cert) => cert,
        Err(err) => {
            report.divergence = Some(format!("proof stream failed final checking: {err}"));
            return report;
        }
    };
    if let Err(err) = cert.require_complete() {
        report.divergence = Some(format!("proof certificate incomplete: {err}"));
        return report;
    }
    report.certified_steps = cert.steps;
    let certified_witnesses: usize = cert.cells.iter().map(|c| c.witnesses.len()).sum();
    let certified_empty = cert
        .cells
        .iter()
        .filter(|c| c.exhaustive() && c.witnesses.is_empty())
        .count();
    if cert.cells.len() != report.cells
        || certified_witnesses != report.witnesses
        || certified_empty != report.unsat_cells
    {
        report.divergence = Some(format!(
            "certificate disagrees with the enumeration outcomes: \
             {} cells / {} witnesses / {} empty certified, but \
             {} / {} / {} observed",
            cert.cells.len(),
            certified_witnesses,
            certified_empty,
            report.cells,
            report.witnesses,
            report.unsat_cells
        ));
        return report;
    }

    report
}

/// Cross-checks the sampler layer on `formula`, returning a divergence
/// description or `None`.
///
/// On satisfiable input: a 2-worker [`SamplerService`] must reproduce the
/// serial `sample_batch` witness sequence for the same request, twice (the
/// second submission proving the pool survived the first), and a serial
/// lane prepared with [`UniGenConfig::certify`] must reproduce it as well
/// with every proof step verified (logging must not perturb sampling). On
/// unsatisfiable input: UniGen preparation must fail with the typed
/// [`SamplerError::Unsatisfiable`] — certified or not — while UniWit must
/// build, answer every sample with a clean ⊥ outcome, and leave the
/// service pool alive for a follow-up request.
pub fn service_case(name: &str, formula: &CnfFormula, seed: u64) -> Option<String> {
    let count = 4;
    match UniGen::new(formula, UniGenConfig::default()) {
        Ok(prepared) => {
            let serial = prepared.clone().sample_batch(count, seed);

            // The certified lane: identical witnesses, verified proofs.
            let mut certified =
                match UniGen::new(formula, UniGenConfig::default().with_certify(true)) {
                    Ok(p) => p,
                    Err(e) => {
                        return Some(format!(
                            "{name} seed {seed:#x}: certified preparation failed with {e:?} \
                             where uncertified preparation succeeded"
                        ));
                    }
                };
            let certified_batch = certified.sample_batch(count, seed);
            if let Some(err) = certified.cert_error() {
                return Some(format!(
                    "{name} seed {seed:#x}: certification rejected the sampler's \
                     proof stream: {err}"
                ));
            }
            if witness_sequence(&certified_batch) != witness_sequence(&serial) {
                return Some(format!(
                    "{name} seed {seed:#x}: the certified lane diverged from the \
                     uncertified sample_batch reference"
                ));
            }
            if certified.certified_steps().unwrap_or(0) == 0 {
                return Some(format!(
                    "{name} seed {seed:#x}: the certified lane verified zero proof steps"
                ));
            }
            let service = SamplerService::new(
                prepared,
                ServiceConfig::default()
                    .with_workers(2)
                    .with_queue_capacity(4),
            );
            for round in 0..2 {
                let response = service.submit(SampleRequest::new(count, seed)).wait();
                if witness_sequence(&response.outcomes) != witness_sequence(&serial) {
                    return Some(format!(
                        "{name} seed {seed:#x}: service round {round} diverged from \
                         the serial sample_batch reference"
                    ));
                }
            }
            None
        }
        Err(SamplerError::Unsatisfiable) => {
            // Certified preparation must reach the same typed verdict: the
            // refutation is proof-checked, never reported as a cert failure.
            match UniGen::new(formula, UniGenConfig::default().with_certify(true)) {
                Err(SamplerError::Unsatisfiable) => {}
                other => {
                    return Some(format!(
                        "{name} seed {seed:#x}: certified preparation of an unsat \
                         instance returned {:?} instead of Unsatisfiable",
                        other.map(|_| "a prepared sampler")
                    ));
                }
            }
            let prepared = match UniWit::new(formula, UniWitConfig::default()) {
                Ok(p) => p,
                Err(e) => {
                    return Some(format!(
                        "{name} seed {seed:#x}: UniWit refused an unsat formula \
                         with {e:?} instead of preparing a ⊥-producing sampler"
                    ));
                }
            };
            let service = SamplerService::new(
                prepared,
                ServiceConfig::default()
                    .with_workers(2)
                    .with_queue_capacity(4),
            );
            for round in 0..2 {
                let response = service
                    .submit(SampleRequest::new(count, seed.wrapping_add(round)))
                    .wait();
                if response.outcomes.len() != count {
                    return Some(format!(
                        "{name} seed {seed:#x}: unsat request round {round} returned \
                         {} of {count} outcomes",
                        response.outcomes.len()
                    ));
                }
                if let Some(witness) = response.outcomes.iter().find_map(|o| o.witness.as_ref()) {
                    return Some(format!(
                        "{name} seed {seed:#x}: unsat instance produced a witness \
                         over {} vars instead of ⊥",
                        witness.values().len()
                    ));
                }
            }
            None
        }
        Err(other) => Some(format!(
            "{name} seed {seed:#x}: UniGen preparation failed with {other:?}"
        )),
    }
}

fn witness_sequence(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
    outcomes
        .iter()
        .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceGenerator, ScaleFreeConfig, SgenConfig};

    #[test]
    fn differential_case_passes_on_a_small_sat_instance() {
        let config = ScaleFreeConfig {
            num_vars: 10,
            num_clauses: 25,
            clause_len: 3,
            exponent_quarters: 3,
        };
        let formula = config.generate(1);
        let report = differential_case(&config.name(), &formula, 1, &FuzzConfig::default());
        assert_eq!(report.divergence, None, "{report:?}");
        assert!(report.cells >= 2);
        assert!(
            report.certified_steps > 0,
            "the gauss-on lane's proof stream was checked: {report:?}"
        );
    }

    #[test]
    fn differential_case_passes_on_a_hard_unsat_instance() {
        let config = SgenConfig {
            blocks: 2,
            unsat: true,
        };
        let formula = config.generate(3);
        let report = differential_case(&config.name(), &formula, 3, &FuzzConfig::default());
        assert_eq!(report.divergence, None, "{report:?}");
        assert_eq!(
            report.unsat_cells, report.cells,
            "every cell of an unsat formula is exhaustively empty"
        );
        assert_eq!(report.witnesses, 0);
        assert!(
            report.certified_steps > 0,
            "every empty cell carries a checked refutation: {report:?}"
        );
    }

    #[test]
    fn service_case_passes_on_both_verdicts() {
        let sat = ScaleFreeConfig {
            num_vars: 8,
            num_clauses: 16,
            clause_len: 3,
            exponent_quarters: 2,
        };
        assert_eq!(service_case(&sat.name(), &sat.generate(2), 2), None);
        let unsat = SgenConfig {
            blocks: 1,
            unsat: true,
        };
        assert_eq!(service_case(&unsat.name(), &unsat.generate(2), 2), None);
    }
}
