//! The chaos differential harness: deterministic fault injection layered
//! over the adversarial instance corpus.
//!
//! Where [`crate::fuzz`] cross-checks *undisturbed* solver and sampler
//! stacks, this module drives the same stacks through a seeded
//! [`FaultPlan`] and checks the graceful-degradation contract:
//!
//! * **Replay equivalence** — two runs under bit-identical fault schedules
//!   observe the same injected-fault count and produce the same witness
//!   sequence (the plan is deterministic, not merely random).
//! * **Absorption** — every fault the recovery ladder absorbs (failed
//!   `BSAT` calls, poisoned Gauss seals, a panicking service worker) leaves
//!   the emitted witness sequence **bit-identical** to the fault-free
//!   reference, because retries reuse the already-drawn hash layers and the
//!   per-index RNG streams are re-derived, never advanced.
//! * **Accounting** — the persistent solver's guard counters stay balanced
//!   under injection (no leaked activation guards), and the service's
//!   [`ServiceHealth`] reflects exactly the scheduled worker panics and
//!   respawns, with the pool back at full strength afterwards.
//!
//! Every lane runs with [`unigen::UniGenConfig::certify`] enabled, so the
//! independent proof checker rides along through the injected faults: a
//! ladder retry or pristine rebuild that desynchronised the proof stream
//! from the checker would surface as a certification error (and a ⊥
//! witness) here.
//!
//! Everything is driven by one `u64` seed, mirroring
//! [`crate::fuzz::differential_case`]: a failure report's name + seed is a
//! complete reproduction recipe.

use std::sync::Arc;

use unigen::{
    FaultPlan, SampleOutcome, SampleRequest, SampleStats, SamplerError, SamplerService,
    ServiceConfig, ServiceHealth, UniGen, UniGenConfig, WitnessSampler,
};
use unigen_cnf::CnfFormula;

/// What one chaos case observed; `divergence` is `None` when every
/// robustness invariant held.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Instance name (from [`crate::InstanceGenerator::name`]).
    pub name: String,
    /// The case seed — with the name, the full reproduction recipe.
    pub seed: u64,
    /// Human-readable description of the injected schedule.
    pub schedule: String,
    /// Solver-level faults the plan injected (per serial lane).
    pub faults_injected: u64,
    /// Ladder retries observed in the faulted lane's sample stats.
    pub retries: usize,
    /// Ladder degradations (Gauss-off fallbacks, pristine rebuilds).
    pub degradations: usize,
    /// Worker respawns performed by the service lane.
    pub service_respawns: u64,
    /// Human-readable description of the first violated invariant, if any.
    pub divergence: Option<String>,
}

/// SplitMix64 mixing step — the schedule derivation, kept independent of the
/// vendored RNG shim so chaos schedules never drift with shim changes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Builds the case's solver-level fault schedule. Calling this twice with
/// the same seed yields two *independent* plans with bit-identical
/// schedules — which is exactly what the replay-equivalence check needs
/// (a plan's counters are stateful, so lanes must not share one).
fn build_plan(seed: u64) -> (String, FaultPlan) {
    let s = splitmix64(seed ^ 0xc0a5);
    match s % 4 {
        0 => {
            let n = 1 + s % 3;
            (
                format!("fail-bsat-{n}"),
                FaultPlan::seeded(seed).fail_nth_bsat(n),
            )
        }
        1 => {
            let permille = (100 + s % 300) as u16;
            (
                format!("exhaust-permille-{permille}"),
                FaultPlan::seeded(seed).exhaust_with_permille(permille),
            )
        }
        2 => {
            let n = 1 + s % 2;
            (
                format!("poison-gauss-seal-{n}"),
                FaultPlan::seeded(seed).poison_nth_gauss_seal(n),
            )
        }
        _ => {
            let n = 1 + s % 2;
            (
                format!("fail-bsat-{n}+poison-gauss-seal-1"),
                FaultPlan::seeded(seed)
                    .fail_nth_bsat(n)
                    .poison_nth_gauss_seal(1),
            )
        }
    }
}

fn witness_sequence(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
    outcomes
        .iter()
        .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
        .collect()
}

fn total_stats(outcomes: &[SampleOutcome]) -> SampleStats {
    let mut total = SampleStats::default();
    for outcome in outcomes {
        total.accumulate(&outcome.stats);
    }
    total
}

/// Runs the chaos differential check on `formula` with the per-case batch
/// size `count`. Unsatisfiable instances verify the typed preparation error
/// and return early — there is no sampling stack to fault.
pub fn chaos_case(name: &str, formula: &CnfFormula, seed: u64, count: usize) -> ChaosReport {
    let mut report = ChaosReport {
        name: name.to_string(),
        seed,
        schedule: String::new(),
        faults_injected: 0,
        retries: 0,
        degradations: 0,
        service_respawns: 0,
        divergence: None,
    };

    let prepared = match UniGen::new(formula, UniGenConfig::default().with_certify(true)) {
        Ok(prepared) => prepared,
        Err(SamplerError::Unsatisfiable) => {
            report.schedule = "unsat-instance (no sampling stack to fault)".to_string();
            return report;
        }
        Err(other) => {
            report.divergence = Some(format!("UniGen preparation failed with {other:?}"));
            return report;
        }
    };

    // The fault-free reference lane.
    let mut reference_lane = prepared.clone();
    let reference = reference_lane.sample_batch(count, seed);
    if let Some(err) = reference_lane.cert_error() {
        report.divergence = Some(format!(
            "certification rejected the fault-free reference lane: {err}"
        ));
        return report;
    }

    // Two serial faulted lanes under bit-identical schedules: each must be
    // bit-identical to the reference (the ladder absorbs every injected
    // fault) and to each other (replay equivalence on the fault counts).
    let mut lane_faults = [0u64; 2];
    for (lane, lane_fault) in lane_faults.iter_mut().enumerate() {
        let (schedule, plan) = build_plan(seed);
        report.schedule = schedule;
        let plan = Arc::new(plan);
        let mut faulted = prepared.clone();
        faulted.install_fault_plan(Arc::clone(&plan));
        let batch = faulted.sample_batch(count, seed);

        if let Some(err) = faulted.cert_error() {
            report.divergence = Some(format!(
                "lane {lane} under schedule `{}`: certification rejected the \
                 faulted lane's proof stream: {err}",
                report.schedule
            ));
            return report;
        }
        if witness_sequence(&batch) != witness_sequence(&reference) {
            report.divergence = Some(format!(
                "lane {lane} under schedule `{}` diverged from the fault-free \
                 witness sequence",
                report.schedule
            ));
            return report;
        }
        let stats = faulted.solver_stats();
        if stats.guards_created != stats.guards_retired {
            report.divergence = Some(format!(
                "lane {lane} under schedule `{}` leaked guards: {} created, {} retired",
                report.schedule, stats.guards_created, stats.guards_retired
            ));
            return report;
        }
        *lane_fault = plan.faults_injected();
        let totals = total_stats(&batch);
        report.faults_injected = plan.faults_injected();
        report.retries = totals.retries;
        report.degradations = totals.degradations;
        // Every injected fault must have been observed and absorbed by the
        // ladder: a fault with no matching retry/degradation would mean a
        // silently swallowed injection.
        if (totals.retries + totals.degradations) < totals.faults_injected {
            report.divergence = Some(format!(
                "lane {lane} under schedule `{}`: {} faults observed but only \
                 {} retries + {} degradations",
                report.schedule, totals.faults_injected, totals.retries, totals.degradations
            ));
            return report;
        }
    }
    if lane_faults[0] != lane_faults[1] {
        report.divergence = Some(format!(
            "replay divergence under schedule `{}`: lane 0 injected {} faults, \
             lane 1 injected {}",
            report.schedule, lane_faults[0], lane_faults[1]
        ));
        return report;
    }

    // The service lane: a scheduled one-shot worker panic mid-batch. One
    // worker keeps the schedule deterministic (a stolen item would execute
    // on a worker the plan does not target).
    let panic_item = (splitmix64(seed ^ 0x7a71c) % count as u64) as usize;
    let plan = Arc::new(FaultPlan::seeded(seed).panic_worker_at(0, panic_item));
    let service = match SamplerService::try_with_fault_plan(
        prepared,
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
        Some(Arc::clone(&plan)),
    ) {
        Ok(service) => service,
        Err(err) => {
            report.divergence = Some(format!("service construction failed: {err}"));
            return report;
        }
    };
    let response = service.submit(SampleRequest::new(count, seed)).wait();
    if witness_sequence(&response.outcomes) != witness_sequence(&reference) {
        report.divergence = Some(format!(
            "service lane (worker 0 panics at item {panic_item}) diverged from \
             the fault-free witness sequence"
        ));
        return report;
    }
    let health: ServiceHealth = service.health();
    if health.worker_panics != 1 || health.respawns != 1 || !health.at_full_strength() {
        report.divergence = Some(format!(
            "service lane health after a scheduled panic at item {panic_item}: \
             panics={} respawns={} alive={}/{} (expected 1/1/full strength)",
            health.worker_panics, health.respawns, health.alive_workers, health.configured_workers
        ));
        return report;
    }
    report.service_respawns = health.respawns;
    service.shutdown();

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceGenerator, ScaleFreeConfig, SgenConfig};

    #[test]
    fn chaos_case_passes_on_a_small_sat_instance() {
        let config = ScaleFreeConfig {
            num_vars: 10,
            num_clauses: 25,
            clause_len: 3,
            exponent_quarters: 3,
        };
        let formula = config.generate(1);
        let report = chaos_case(&config.name(), &formula, 1, 4);
        assert_eq!(report.divergence, None, "{report:?}");
        assert_eq!(report.service_respawns, 1);
    }

    #[test]
    fn chaos_case_short_circuits_on_unsat() {
        let config = SgenConfig {
            blocks: 1,
            unsat: true,
        };
        let formula = config.generate(3);
        let report = chaos_case(&config.name(), &formula, 3, 4);
        assert_eq!(report.divergence, None, "{report:?}");
        assert!(report.schedule.contains("unsat"));
    }

    #[test]
    fn schedules_are_seed_deterministic_and_cover_all_kinds() {
        let (a, _) = build_plan(7);
        let (b, _) = build_plan(7);
        assert_eq!(a, b, "same seed must derive the same schedule");
        let kinds: std::collections::BTreeSet<String> = (0..32)
            .map(|seed| {
                let (schedule, _) = build_plan(seed);
                schedule
                    .split(['-', '+'])
                    .next()
                    .unwrap_or_default()
                    .to_string()
            })
            .collect();
        assert!(kinds.len() >= 3, "32 seeds only covered {kinds:?}");
    }
}
