//! Adversarial instance generators and a differential fuzz harness.
//!
//! The paper's evaluation corpus (and this repo's bench suites before this
//! crate existed) is built from hand-crafted circuit encodings that are
//! sat-heavy and structurally similar. This crate supplies the instance
//! families the literature recommends for stressing XOR-hashed samplers on
//! exactly the inputs where they get hard:
//!
//! * [`ScaleFreeConfig`] — random k-SAT whose variable occurrences follow a
//!   power law (Ansótegui, Bonet & Levy, *Towards Industrial-Like Random SAT
//!   Instances* / *Scale-Free Random SAT Instances*),
//! * [`TriangleFreeConfig`] — binary CSPs whose constraint graph is kept
//!   triangle-free, directly encoded to CNF (Escamocher, O'Sullivan &
//!   Prestwich, *Generating Difficult SAT Instances by Preventing
//!   Triangles*),
//! * [`SgenConfig`] — sgen-style small hard blocks (Spence's `sgen`), whose
//!   unsat variant is the classic "tiny but hard to refute" family.
//!
//! Every family implements [`InstanceGenerator`]: a **seeded, deterministic**
//! `generate(seed) -> CnfFormula` plus a canonical DIMACS emitter and a
//! stable [fingerprint](InstanceGenerator::fingerprint) so corpora can be
//! pinned bit-for-bit across PRs and hosts. The [`strategy`] module wraps the
//! same generators as `proptest` strategies for property tests, and [`fuzz`]
//! builds the differential harness that cross-checks the incremental solver
//! (Gauss on/off), scratch enumeration, a brute-force oracle, and the
//! sampler service over generated instances. The [`chaos`] module layers a
//! seeded [`unigen::FaultPlan`] on top of the same corpus and checks that
//! the recovery ladder and worker-respawn path absorb every injected fault
//! without perturbing the witness sequence.

use unigen_cnf::CnfFormula;

mod scale_free;
mod sgen;
mod triangle_free;

pub mod chaos;
pub mod fuzz;
pub mod strategy;

pub use scale_free::ScaleFreeConfig;
pub use sgen::SgenConfig;
pub use triangle_free::TriangleFreeConfig;

/// A deterministic, seeded instance generator.
///
/// Implementations must be pure functions of `(self, seed)`: the same
/// configuration and seed yield the same formula on every host and every
/// run. All randomness is drawn from the vendored `StdRng` (a fixed
/// xoshiro256++ stream) and all arithmetic is integer-only, so DIMACS
/// output — and therefore [`fingerprint`](Self::fingerprint) — is
/// bit-reproducible.
pub trait InstanceGenerator {
    /// A short, human-readable name encoding the family and its knobs,
    /// suitable for bench tables and fuzz-failure reports.
    fn name(&self) -> String;

    /// Generates the instance for `seed`.
    fn generate(&self, seed: u64) -> CnfFormula;

    /// The canonical DIMACS text of the instance for `seed`, as emitted by
    /// [`unigen_cnf::dimacs::to_dimacs_string`].
    fn dimacs(&self, seed: u64) -> String {
        unigen_cnf::dimacs::to_dimacs_string(&self.generate(seed))
    }

    /// A stable 64-bit fingerprint of the canonical DIMACS text (FNV-1a,
    /// implemented here rather than via `DefaultHasher`, whose output is
    /// not guaranteed stable across Rust releases).
    fn fingerprint(&self, seed: u64) -> u64 {
        fnv1a(self.dimacs(seed).as_bytes())
    }
}

/// FNV-1a over bytes: the stable hash behind
/// [`InstanceGenerator::fingerprint`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fisher–Yates shuffle. The vendored `rand` shim has no `SliceRandom`, so
/// the generators share this helper; it consumes exactly `len - 1` range
/// draws, keeping generator output a pure function of the seed.
pub(crate) fn shuffle<T, R: rand::Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let run = |seed: u64| {
            let mut v: Vec<usize> = (0..50).collect();
            shuffle(&mut v, &mut StdRng::seed_from_u64(seed));
            v
        };
        let a = run(1);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(a, run(1));
        assert_ne!(a, run(2));
    }
}
