//! The generator families as `proptest` strategies, in the shape varisat
//! uses for its formula strategies: structural knobs are drawn from inner
//! strategies, then `prop_perturb` turns them plus a fresh seed from the
//! test RNG into a concrete [`CnfFormula`]. Every strategy also works as an
//! input to further combinators (`prop_map`, `prop_flat_map`) from any test
//! crate in the workspace.
//!
//! Each strategy yields `(config, seed, formula)` via [`Instance`] so a
//! failing property test can print exactly how to regenerate its input:
//! `config.generate(seed)` reproduces the formula bit for bit.

use proptest::Strategy;
use rand::Rng;
use unigen_cnf::CnfFormula;

use crate::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

/// A generated instance together with its provenance: re-running
/// `config.generate(seed)` reproduces `formula` exactly.
#[derive(Clone, Debug)]
pub struct Instance<C> {
    /// The generator configuration the instance was drawn from.
    pub config: C,
    /// The seed passed to [`InstanceGenerator::generate`].
    pub seed: u64,
    /// The generated formula.
    pub formula: CnfFormula,
}

fn instance<C: InstanceGenerator>(config: C, rng: &mut proptest::TestRng) -> Instance<C> {
    let seed = rng.gen::<u64>();
    let formula = config.generate(seed);
    Instance {
        config,
        seed,
        formula,
    }
}

/// Scale-free 3-SAT instances: variable count from `vars`, clause count
/// `⌈density · vars⌉` with `density` drawn from `densities`, and a power-law
/// exponent (in quarters, β = q/4) from `exponent_quarters`.
pub fn scale_free(
    vars: impl Strategy<Value = usize>,
    densities: impl Strategy<Value = f64>,
    exponent_quarters: impl Strategy<Value = u32>,
) -> impl Strategy<Value = Instance<ScaleFreeConfig>> {
    (vars, densities, exponent_quarters).prop_perturb(|(n, density, quarters), rng| {
        let n = n.max(3);
        let config = ScaleFreeConfig {
            num_vars: n,
            num_clauses: ((density * n as f64).ceil() as usize).max(1),
            clause_len: 3,
            exponent_quarters: quarters.min(16),
        };
        instance(config, rng)
    })
}

/// Triangle-free CSP instances at domain 3 with the paper's hard density of
/// 3 forbidden pairs per edge; CSP variable count from `csp_vars`, target
/// edge count from `edges`.
pub fn triangle_free(
    csp_vars: impl Strategy<Value = usize>,
    edges: impl Strategy<Value = usize>,
) -> impl Strategy<Value = Instance<TriangleFreeConfig>> {
    (csp_vars, edges).prop_perturb(|(v, e), rng| {
        let config = TriangleFreeConfig {
            csp_vars: v.max(2),
            domain: 3,
            edges: e.max(1),
            forbidden_per_edge: 3,
        };
        instance(config, rng)
    })
}

/// Satisfiable sgen-style instances with a block count drawn from `blocks`.
pub fn sgen_sat(
    blocks: impl Strategy<Value = usize>,
) -> impl Strategy<Value = Instance<SgenConfig>> {
    sgen(blocks, false)
}

/// Hard-unsat sgen-style instances with a block count drawn from `blocks`.
pub fn sgen_unsat(
    blocks: impl Strategy<Value = usize>,
) -> impl Strategy<Value = Instance<SgenConfig>> {
    sgen(blocks, true)
}

fn sgen(
    blocks: impl Strategy<Value = usize>,
    unsat: bool,
) -> impl Strategy<Value = Instance<SgenConfig>> {
    blocks.prop_perturb(move |b, rng| {
        let config = SgenConfig {
            blocks: b.max(1),
            unsat,
        };
        instance(config, rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every strategy's provenance is honest: `config.generate(seed)`
        /// reproduces the formula the strategy handed out.
        #[test]
        fn strategies_report_reproducible_provenance(
            sf in scale_free(4usize..12, 1.5f64..4.0, 0u32..8),
            tf in triangle_free(3usize..7, 2usize..8),
            ss in sgen_sat(1usize..3),
            su in sgen_unsat(1usize..3),
        ) {
            prop_assert_eq!(
                unigen_cnf::dimacs::to_dimacs_string(&sf.formula),
                sf.config.dimacs(sf.seed)
            );
            prop_assert_eq!(
                unigen_cnf::dimacs::to_dimacs_string(&tf.formula),
                tf.config.dimacs(tf.seed)
            );
            prop_assert_eq!(
                unigen_cnf::dimacs::to_dimacs_string(&ss.formula),
                ss.config.dimacs(ss.seed)
            );
            prop_assert_eq!(
                unigen_cnf::dimacs::to_dimacs_string(&su.formula),
                su.config.dimacs(su.seed)
            );
            prop_assert_eq!(su.formula.num_vars(), 4 * su.config.blocks + 1);
        }
    }
}
