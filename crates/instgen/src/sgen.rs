//! Sgen-style small hard blocks, after Spence's `sgen` generator (the
//! SAT-competition family that produces the smallest known formulas that
//! are disproportionately expensive to refute). Over `4n + 1` literals with
//! random fixed polarities, a pass partitions the first `4n` into blocks of
//! four and adds every 3-subset of each block as a clause — forcing at
//! least two literals per block true — plus tie-in clauses through the
//! leftover literal. The unsat variant adds a second, **inverted** pass
//! over a freshly shuffled partition, demanding at least two literals per
//! block *false*; the two counting constraints over `4n + 1` literals
//! cannot both hold, but proving it requires genuine counting, which
//! resolution does slowly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigen_cnf::{CnfFormula, Lit, Var};

use crate::{shuffle, InstanceGenerator};

/// Configuration for the sgen-style block family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SgenConfig {
    /// Number of 4-literal blocks per pass; the formula has `4·blocks + 1`
    /// variables. Refutation cost of the unsat variant grows steeply with
    /// this knob — single digits are already non-trivial.
    pub blocks: usize,
    /// `true` for the two-pass hard-unsat variant; `false` for the
    /// single-pass satisfiable variant (same clause shapes, a model is
    /// guaranteed by construction).
    pub unsat: bool,
}

impl SgenConfig {
    /// Adds one pass over a fresh shuffle of `lits`: all 3-subsets of each
    /// block of four, plus all pairs from the first block joined with the
    /// leftover literal. `invert` negates every emitted literal, flipping
    /// "at least two true per block" into "at least two false".
    fn add_pass(&self, formula: &mut CnfFormula, lits: &mut [Lit], invert: bool, rng: &mut StdRng) {
        shuffle(lits, rng);
        let sign = |l: Lit| if invert { !l } else { l };
        let body = 4 * self.blocks;
        for block in lits[..body].chunks_exact(4) {
            for a in 0..4 {
                for b in 0..a {
                    for c in 0..b {
                        formula
                            .add_clause([sign(block[a]), sign(block[b]), sign(block[c])])
                            .expect("block literals are in range");
                    }
                }
            }
        }
        let leftover = lits[body];
        for b in 0..4 {
            for c in 0..b {
                formula
                    .add_clause([sign(leftover), sign(lits[b]), sign(lits[c])])
                    .expect("tie-in literals are in range");
            }
        }
    }
}

impl InstanceGenerator for SgenConfig {
    fn name(&self) -> String {
        format!(
            "sgen-{}-b{}",
            if self.unsat { "unsat" } else { "sat" },
            self.blocks
        )
    }

    fn generate(&self, seed: u64) -> CnfFormula {
        assert!(self.blocks >= 1, "need at least one block");
        let mut rng = StdRng::seed_from_u64(seed);
        let num_vars = 4 * self.blocks + 1;
        let mut lits: Vec<Lit> = (0..num_vars)
            .map(|i| Var::new(i).lit(rng.gen::<bool>()))
            .collect();
        let mut formula = CnfFormula::new(num_vars);
        self.add_pass(&mut formula, &mut lits, false, &mut rng);
        if self.unsat {
            self.add_pass(&mut formula, &mut lits, true, &mut rng);
        }
        formula
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        for unsat in [false, true] {
            let c = SgenConfig { blocks: 2, unsat };
            assert_eq!(c.dimacs(4), c.dimacs(4));
            assert_ne!(c.dimacs(4), c.dimacs(5));
        }
    }

    #[test]
    fn sat_variant_is_satisfiable_by_construction() {
        for blocks in 1..=4 {
            let c = SgenConfig {
                blocks,
                unsat: false,
            };
            for seed in 0..4 {
                let f = c.generate(seed);
                assert!(
                    !f.enumerate_models_brute_force().is_empty(),
                    "sgen-sat b{blocks} seed {seed} has no model"
                );
            }
        }
    }

    #[test]
    fn unsat_variant_has_no_models() {
        for blocks in 1..=2 {
            let c = SgenConfig {
                blocks,
                unsat: true,
            };
            for seed in 0..4 {
                let f = c.generate(seed);
                assert!(
                    f.enumerate_models_brute_force().is_empty(),
                    "sgen-unsat b{blocks} seed {seed} is satisfiable"
                );
            }
        }
    }

    #[test]
    fn clause_counts_match_the_construction() {
        let c = SgenConfig {
            blocks: 3,
            unsat: true,
        };
        let f = c.generate(0);
        // Per pass: 4 choose 3 = 4 clauses per block plus 4 choose 2 = 6
        // tie-in clauses.
        assert_eq!(f.clauses().len(), 2 * (4 * 3 + 6));
        assert_eq!(f.num_vars(), 13);
    }
}
