//! Golden-corpus pinning: the DIMACS output of every generator family at
//! fixed seeds is fingerprinted (FNV-1a 64 over the canonical DIMACS text)
//! and pinned here, so the corpus feeding the bench suites and the fuzz
//! harness is bit-reproducible across PRs and hosts.
//!
//! These values may only change when a generator's algorithm deliberately
//! changes — and such a change must be called out, because it silently
//! re-rolls every benchmark input derived from the family. The pins are
//! host-independent by construction: generators use the vendored
//! `StdRng` (a fixed xoshiro256++ stream) and integer-only weight
//! arithmetic, never platform-dependent float intrinsics.

use unigen_instgen::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

fn scale_free() -> ScaleFreeConfig {
    ScaleFreeConfig {
        num_vars: 30,
        num_clauses: 100,
        clause_len: 3,
        exponent_quarters: 3,
    }
}

fn triangle_free() -> TriangleFreeConfig {
    TriangleFreeConfig {
        csp_vars: 10,
        domain: 3,
        edges: 12,
        forbidden_per_edge: 3,
    }
}

fn sgen(unsat: bool) -> SgenConfig {
    SgenConfig { blocks: 4, unsat }
}

fn assert_pinned(generator: &dyn InstanceGenerator, pins: &[(u64, u64)]) {
    for &(seed, expected) in pins {
        let actual = generator.fingerprint(seed);
        assert_eq!(
            actual,
            expected,
            "{} at seed {seed} drifted: fingerprint {actual:#018x}, pinned {expected:#018x} — \
             a generator algorithm change re-rolls every corpus built on this family",
            generator.name(),
        );
    }
}

#[test]
fn scale_free_corpus_is_pinned() {
    assert_pinned(
        &scale_free(),
        &[
            (0, 0xec1f_c781_67f6_32f6),
            (1, 0x36f9_a0fc_302b_58cc),
            (42, 0x50da_4543_b960_2b0e),
        ],
    );
}

#[test]
fn triangle_free_corpus_is_pinned() {
    assert_pinned(
        &triangle_free(),
        &[
            (0, 0x869e_fd9d_781c_8b8f),
            (1, 0x34ba_de9b_970c_c1b1),
            (42, 0x5ac8_77f2_4978_e5cd),
        ],
    );
}

#[test]
fn sgen_unsat_corpus_is_pinned() {
    assert_pinned(
        &sgen(true),
        &[
            (0, 0xf1ec_5dcf_2dc7_4754),
            (1, 0x9416_c358_38da_7cf8),
            (42, 0xe213_bf67_980c_d779),
        ],
    );
}

#[test]
fn sgen_sat_corpus_is_pinned() {
    assert_pinned(
        &sgen(false),
        &[
            (0, 0xfd80_15ad_fe52_23c3),
            (1, 0x1f06_0d20_535f_dd68),
            (42, 0x2e21_8037_e9e7_abb8),
        ],
    );
}

/// The emitter round-trips: parsing the canonical DIMACS text back yields a
/// formula with identical canonical text, so the fingerprint pins the
/// *instance*, not incidental formatting.
#[test]
fn dimacs_round_trips_for_every_family() {
    let generators: [&dyn InstanceGenerator; 4] =
        [&scale_free(), &triangle_free(), &sgen(true), &sgen(false)];
    for generator in generators {
        let text = generator.dimacs(7);
        let reparsed = unigen_cnf::dimacs::parse(&text).expect("canonical DIMACS parses");
        assert_eq!(
            unigen_cnf::dimacs::to_dimacs_string(&reparsed),
            text,
            "{} DIMACS did not round-trip",
            generator.name()
        );
    }
}
