//! CNF formulas with xor constraints and sampling-set metadata.

use std::fmt;

use crate::{Clause, CnfError, Lit, Model, Var, XorClause};

/// A CNF formula, optionally extended with xor constraints and annotated
/// with a *sampling set*.
///
/// The sampling set corresponds to the paper's set `S` of sampling variables:
/// an independent support of the formula over which UniGen draws its random
/// xor constraints and restricts its blocking clauses. When no sampling set
/// is declared, the full support is used (which is exactly what UniWit and
/// XORSample′ do, and the source of their scalability problems).
///
/// # Example
///
/// ```
/// use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
///
/// # fn main() -> Result<(), unigen_cnf::CnfError> {
/// let mut f = CnfFormula::new(4);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
/// f.add_xor_clause(XorClause::from_dimacs([3, 4], true))?;
/// f.set_sampling_set([Var::from_dimacs(1), Var::from_dimacs(2)])?;
/// assert_eq!(f.sampling_set().unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
    xor_clauses: Vec<XorClause>,
    sampling_set: Option<Vec<Var>>,
}

impl CnfFormula {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
            xor_clauses: Vec::new(),
            sampling_set: None,
        }
    }

    /// Returns the number of variables declared by this formula.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of CNF clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the number of xor constraints.
    #[inline]
    pub fn num_xor_clauses(&self) -> usize {
        self.xor_clauses.len()
    }

    /// Grows the variable range to at least `num_vars`.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.num_vars = num_vars;
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Adds a clause built from the given literals.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::VariableOutOfRange`] if the clause mentions a
    /// variable outside the declared range.
    pub fn add_clause<I>(&mut self, lits: I) -> Result<(), CnfError>
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause = Clause::new(lits);
        self.check_vars(clause.iter().map(|l| l.var()))?;
        self.clauses.push(clause);
        Ok(())
    }

    /// Adds an already-constructed clause.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::VariableOutOfRange`] if the clause mentions a
    /// variable outside the declared range.
    pub fn push_clause(&mut self, clause: Clause) -> Result<(), CnfError> {
        self.check_vars(clause.iter().map(|l| l.var()))?;
        self.clauses.push(clause);
        Ok(())
    }

    /// Adds an xor constraint.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::VariableOutOfRange`] if the constraint mentions a
    /// variable outside the declared range.
    pub fn add_xor_clause(&mut self, xor: XorClause) -> Result<(), CnfError> {
        self.check_vars(xor.iter().copied())?;
        self.xor_clauses.push(xor);
        Ok(())
    }

    /// Declares the sampling set (the paper's independent support `S`).
    ///
    /// The set is deduplicated and sorted. Declaring an empty iterator clears
    /// an existing sampling set.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::SamplingVarOutOfRange`] if the set mentions a
    /// variable outside the declared range.
    pub fn set_sampling_set<I>(&mut self, vars: I) -> Result<(), CnfError>
    where
        I: IntoIterator<Item = Var>,
    {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        for &v in &vars {
            if v.index() >= self.num_vars {
                return Err(CnfError::SamplingVarOutOfRange {
                    var_index: v.index(),
                    num_vars: self.num_vars,
                });
            }
        }
        self.sampling_set = if vars.is_empty() { None } else { Some(vars) };
        Ok(())
    }

    /// Returns the declared sampling set, if any.
    #[inline]
    pub fn sampling_set(&self) -> Option<&[Var]> {
        self.sampling_set.as_deref()
    }

    /// Returns the sampling set if declared, or the full variable range
    /// otherwise.
    ///
    /// This mirrors how UniGen treats a missing `S`: it falls back to the
    /// full support `X` (and loses the short-xor advantage).
    pub fn sampling_set_or_all(&self) -> Vec<Var> {
        match &self.sampling_set {
            Some(set) => set.clone(),
            None => (0..self.num_vars).map(Var::new).collect(),
        }
    }

    /// Returns the CNF clauses.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Returns the xor constraints.
    #[inline]
    pub fn xor_clauses(&self) -> &[XorClause] {
        &self.xor_clauses
    }

    /// Returns an iterator over the variables of this formula.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.num_vars).map(Var::new)
    }

    /// Evaluates the formula under a total assignment.
    ///
    /// # Panics
    ///
    /// Panics if the model covers fewer variables than the formula declares.
    pub fn evaluate(&self, model: &Model) -> bool {
        assert!(
            model.len() >= self.num_vars,
            "model covers {} variables but the formula declares {}",
            model.len(),
            self.num_vars
        );
        self.clauses.iter().all(|c| c.evaluate(model))
            && self.xor_clauses.iter().all(|x| x.evaluate(model))
    }

    /// Returns a copy of this formula with all xor constraints expanded into
    /// equivalent CNF clauses.
    ///
    /// Only intended for small constraints (tests, brute-force baselines);
    /// see [`XorClause::to_cnf_clauses`].
    ///
    /// # Panics
    ///
    /// Panics if any xor constraint has more than 20 variables.
    pub fn expand_xor_to_cnf(&self) -> CnfFormula {
        let mut out = CnfFormula::new(self.num_vars);
        out.sampling_set = self.sampling_set.clone();
        out.clauses = self.clauses.clone();
        for xor in &self.xor_clauses {
            out.clauses.extend(xor.to_cnf_clauses());
        }
        out
    }

    /// Merges another formula's clauses and xor constraints into this one.
    ///
    /// The variable ranges are united; the other formula's sampling set (if
    /// any) is ignored.
    pub fn extend_from(&mut self, other: &CnfFormula) {
        self.ensure_vars(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
        self.xor_clauses.extend(other.xor_clauses.iter().cloned());
    }

    /// Exhaustively enumerates all models of the formula.
    ///
    /// Only intended for formulas with at most 24 variables (tests and the
    /// brute-force baselines used to validate the solver and the counters).
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn enumerate_models_brute_force(&self) -> Vec<Model> {
        assert!(
            self.num_vars <= 24,
            "brute-force enumeration limited to 24 variables, got {}",
            self.num_vars
        );
        let mut models = Vec::new();
        for mask in 0u64..(1u64 << self.num_vars) {
            let model = Model::new((0..self.num_vars).map(|i| mask & (1 << i) != 0).collect());
            if self.evaluate(&model) {
                models.push(model);
            }
        }
        models
    }

    fn check_vars<I>(&self, vars: I) -> Result<(), CnfError>
    where
        I: IntoIterator<Item = Var>,
    {
        for v in vars {
            if v.index() >= self.num_vars {
                return Err(CnfError::VariableOutOfRange {
                    var_index: v.index(),
                    num_vars: self.num_vars,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::dimacs::to_dimacs_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_formula() -> CnfFormula {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (x2 ⊕ x3 = 1)
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(3)])
            .unwrap();
        f.add_xor_clause(XorClause::from_dimacs([2, 3], true))
            .unwrap();
        f
    }

    #[test]
    fn out_of_range_clause_is_rejected() {
        let mut f = CnfFormula::new(2);
        let err = f.add_clause([Lit::from_dimacs(3)]).unwrap_err();
        assert!(matches!(err, CnfError::VariableOutOfRange { .. }));
    }

    #[test]
    fn out_of_range_sampling_set_is_rejected() {
        let mut f = CnfFormula::new(2);
        let err = f.set_sampling_set([Var::from_dimacs(5)]).unwrap_err();
        assert!(matches!(err, CnfError::SamplingVarOutOfRange { .. }));
    }

    #[test]
    fn sampling_set_is_sorted_and_deduped() {
        let mut f = CnfFormula::new(5);
        f.set_sampling_set([
            Var::from_dimacs(4),
            Var::from_dimacs(1),
            Var::from_dimacs(4),
        ])
        .unwrap();
        let set = f.sampling_set().unwrap();
        assert_eq!(set, &[Var::from_dimacs(1), Var::from_dimacs(4)]);
    }

    #[test]
    fn sampling_set_or_all_falls_back_to_full_support() {
        let f = CnfFormula::new(3);
        assert_eq!(f.sampling_set_or_all().len(), 3);
    }

    #[test]
    fn evaluate_checks_both_clause_kinds() {
        let f = simple_formula();
        // x1=T, x2=F, x3=T : clause1 ok, clause2 ok, xor (F ⊕ T = T) ok
        assert!(f.evaluate(&Model::new(vec![true, false, true])));
        // x1=T, x2=T, x3=T : xor violated
        assert!(!f.evaluate(&Model::new(vec![true, true, true])));
        // x1=F, x2=F, x3=T : clause1 violated
        assert!(!f.evaluate(&Model::new(vec![false, false, true])));
    }

    #[test]
    fn xor_expansion_preserves_models() {
        let f = simple_formula();
        let expanded = f.expand_xor_to_cnf();
        assert_eq!(expanded.num_xor_clauses(), 0);
        assert_eq!(
            f.enumerate_models_brute_force(),
            expanded.enumerate_models_brute_force()
        );
    }

    #[test]
    fn brute_force_enumeration_counts_models() {
        let f = simple_formula();
        // Enumerate by hand: need (x1∨x2), (¬x1∨x3), x2⊕x3 = 1.
        // Satisfied only by (F,T,F) and (T,F,T).
        let models = f.enumerate_models_brute_force();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(f.evaluate(m));
        }
    }

    #[test]
    fn new_var_grows_range() {
        let mut f = CnfFormula::new(0);
        let a = f.new_var();
        let b = f.new_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn extend_from_unions_variable_ranges() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        let mut g = CnfFormula::new(4);
        g.add_clause([Lit::from_dimacs(4)]).unwrap();
        f.extend_from(&g);
        assert_eq!(f.num_vars(), 4);
        assert_eq!(f.num_clauses(), 2);
    }
}
