//! Variables and literals.

use std::fmt;

/// A propositional variable, identified by a zero-based index.
///
/// Variables are displayed one-based (DIMACS convention), so `Var::new(0)`
/// prints as `1`.
///
/// # Example
///
/// ```
/// use unigen_cnf::Var;
/// let v = Var::new(4);
/// assert_eq!(v.index(), 4);
/// assert_eq!(v.to_string(), "5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX / 2`, the largest index for which
    /// a literal can still be encoded.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index <= (u32::MAX / 2) as usize,
            "variable index {index} too large"
        );
        Var(index as u32)
    }

    /// Returns the zero-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from its one-based DIMACS identifier.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero.
    #[inline]
    pub fn from_dimacs(dimacs: usize) -> Self {
        assert!(dimacs > 0, "DIMACS variable identifiers are one-based");
        Var::new(dimacs - 1)
    }

    /// Returns the one-based DIMACS identifier of this variable.
    #[inline]
    pub fn to_dimacs(self) -> usize {
        self.index() + 1
    }

    /// Returns the positive literal over this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// Returns the negative literal over this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::negative(self)
    }

    /// Returns the literal over this variable with the given polarity
    /// (`true` = positive).
    #[inline]
    pub fn lit(self, polarity: bool) -> Lit {
        Lit::new(self, polarity)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally a literal is encoded as `2 * var + (negated as u32)`, the
/// usual MiniSat-style packing, which makes literals cheap to use as array
/// indices in the solver's watch lists.
///
/// # Example
///
/// ```
/// use unigen_cnf::{Lit, Var};
/// let v = Var::new(2);
/// let p = Lit::positive(v);
/// let n = !p;
/// assert_eq!(n, Lit::negative(v));
/// assert_eq!(p.var(), n.var());
/// assert!(p.is_positive() && n.is_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, polarity: bool) -> Self {
        Lit(var.0 * 2 + u32::from(!polarity))
    }

    /// Creates the positive literal over `var`.
    #[inline]
    pub fn positive(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// Creates the negative literal over `var`.
    #[inline]
    pub fn negative(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// Creates a literal from a signed DIMACS integer (non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    #[inline]
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literals are non-zero");
        let var = Var::from_dimacs(value.unsigned_abs() as usize);
        Lit::new(var, value > 0)
    }

    /// Returns the signed DIMACS representation of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().to_dimacs() as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Returns the variable of this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this literal is the positive occurrence of its
    /// variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this literal is the negative occurrence of its
    /// variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        !self.is_positive()
    }

    /// Returns the underlying code of this literal (`2 * var + negated`).
    ///
    /// Useful for indexing per-literal data structures such as watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from a code previously produced by
    /// [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Evaluates this literal under a truth value for its variable.
    #[inline]
    pub fn evaluate(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl From<Var> for Lit {
    fn from(var: Var) -> Self {
        Lit::positive(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip_dimacs() {
        for i in 1..100 {
            let v = Var::from_dimacs(i);
            assert_eq!(v.to_dimacs(), i);
            assert_eq!(v.index(), i - 1);
        }
    }

    #[test]
    fn lit_encoding_is_minisat_style() {
        let v = Var::new(3);
        assert_eq!(Lit::positive(v).code(), 6);
        assert_eq!(Lit::negative(v).code(), 7);
    }

    #[test]
    fn lit_negation_is_involutive() {
        let l = Lit::from_dimacs(-17);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn lit_dimacs_roundtrip() {
        for value in [-42i64, -1, 1, 7, 1000] {
            assert_eq!(Lit::from_dimacs(value).to_dimacs(), value);
        }
    }

    #[test]
    fn lit_evaluate_matches_polarity() {
        let v = Var::new(0);
        assert!(Lit::positive(v).evaluate(true));
        assert!(!Lit::positive(v).evaluate(false));
        assert!(Lit::negative(v).evaluate(false));
        assert!(!Lit::negative(v).evaluate(true));
    }

    #[test]
    #[should_panic]
    fn zero_dimacs_literal_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_uses_dimacs_convention() {
        assert_eq!(Var::new(0).to_string(), "1");
        assert_eq!(Lit::negative(Var::new(4)).to_string(), "-5");
    }

    #[test]
    fn from_code_roundtrip() {
        for code in 0..64 {
            assert_eq!(Lit::from_code(code).code(), code);
        }
    }
}
