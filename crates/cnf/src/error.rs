//! Error type for formula construction and DIMACS parsing.

use std::fmt;

/// Errors produced while building formulas or parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CnfError {
    /// A clause or xor constraint mentioned a variable outside the declared
    /// range of the formula.
    VariableOutOfRange {
        /// The offending (zero-based) variable index.
        var_index: usize,
        /// The number of variables declared by the formula.
        num_vars: usize,
    },
    /// A sampling-set declaration mentioned a variable outside the declared
    /// range of the formula.
    SamplingVarOutOfRange {
        /// The offending (zero-based) variable index.
        var_index: usize,
        /// The number of variables declared by the formula.
        num_vars: usize,
    },
    /// The DIMACS input was malformed.
    ParseDimacs {
        /// One-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error occurred while reading or writing DIMACS data.
    Io(String),
}

impl fmt::Display for CnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnfError::VariableOutOfRange {
                var_index,
                num_vars,
            } => write!(
                f,
                "clause mentions variable {} but the formula declares only {} variables",
                var_index + 1,
                num_vars
            ),
            CnfError::SamplingVarOutOfRange {
                var_index,
                num_vars,
            } => write!(
                f,
                "sampling set mentions variable {} but the formula declares only {} variables",
                var_index + 1,
                num_vars
            ),
            CnfError::ParseDimacs { line, message } => {
                write!(f, "DIMACS parse error on line {line}: {message}")
            }
            CnfError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for CnfError {}

impl From<std::io::Error> for CnfError {
    fn from(err: std::io::Error) -> Self {
        CnfError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CnfError::VariableOutOfRange {
            var_index: 9,
            num_vars: 5,
        };
        let text = err.to_string();
        assert!(text.contains("10"));
        assert!(text.contains('5'));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: CnfError = io.into();
        assert!(matches!(err, CnfError::Io(_)));
        assert!(err.to_string().contains("missing"));
    }
}
