//! Parity (xor) constraints.

use std::fmt;

use crate::{Model, Var};

/// An xor (parity) constraint: `v_1 ⊕ v_2 ⊕ … ⊕ v_k = rhs`.
///
/// Xor clauses are the raw material of the `H_xor(n, m, 3)` hash family used
/// by UniGen, UniWit and ApproxMC: each hash output bit is an xor of a random
/// subset of the sampling variables and a random constant.
///
/// Constraints produced by [`XorClause::new`] are *normalised*: variables are
/// sorted and duplicate pairs are cancelled (because `v ⊕ v = 0`).
///
/// # Example
///
/// ```
/// use unigen_cnf::{Var, XorClause};
/// // x1 ⊕ x3 = 1
/// let xor = XorClause::new(vec![Var::new(0), Var::new(2)], true);
/// assert_eq!(xor.len(), 2);
/// assert!(xor.rhs());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XorClause {
    vars: Vec<Var>,
    rhs: bool,
}

impl XorClause {
    /// Creates a normalised xor constraint over `vars` with parity `rhs`.
    ///
    /// Duplicate variables cancel in pairs; the right-hand side is left
    /// untouched by normalisation.
    pub fn new<I>(vars: I, rhs: bool) -> Self
    where
        I: IntoIterator<Item = Var>,
    {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        // Cancel pairs of equal variables: v ⊕ v = 0.
        let mut deduped: Vec<Var> = Vec::with_capacity(vars.len());
        let mut i = 0;
        while i < vars.len() {
            if i + 1 < vars.len() && vars[i] == vars[i + 1] {
                i += 2;
            } else {
                deduped.push(vars[i]);
                i += 1;
            }
        }
        XorClause { vars: deduped, rhs }
    }

    /// Creates an xor constraint from one-based DIMACS variable identifiers.
    ///
    /// # Panics
    ///
    /// Panics if any identifier is zero.
    pub fn from_dimacs<I>(vars: I, rhs: bool) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        XorClause::new(vars.into_iter().map(Var::from_dimacs), rhs)
    }

    /// Returns the variables of this constraint in sorted order.
    #[inline]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Returns the required parity of the constraint.
    #[inline]
    pub fn rhs(&self) -> bool {
        self.rhs
    }

    /// Returns the number of (distinct, non-cancelled) variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if the constraint mentions no variables.
    ///
    /// An empty constraint is satisfied iff its right-hand side is `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Returns `true` if this (empty) constraint is trivially unsatisfiable,
    /// i.e. it reads `0 = 1`.
    #[inline]
    pub fn is_trivially_false(&self) -> bool {
        self.vars.is_empty() && self.rhs
    }

    /// Returns `true` if this (empty) constraint is trivially satisfied,
    /// i.e. it reads `0 = 0`.
    #[inline]
    pub fn is_trivially_true(&self) -> bool {
        self.vars.is_empty() && !self.rhs
    }

    /// Returns an iterator over the variables of this constraint.
    pub fn iter(&self) -> std::slice::Iter<'_, Var> {
        self.vars.iter()
    }

    /// Returns the largest variable mentioned by this constraint, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.vars.last().copied()
    }

    /// Evaluates the constraint under a total assignment.
    ///
    /// # Panics
    ///
    /// Panics if the model does not cover every variable of the constraint.
    pub fn evaluate(&self, model: &Model) -> bool {
        let parity = self.vars.iter().fold(false, |acc, &v| acc ^ model.value(v));
        parity == self.rhs
    }

    /// Converts this xor constraint into an equivalent set of CNF clauses.
    ///
    /// The expansion enumerates all assignments of the constraint's variables
    /// with the *wrong* parity and forbids each one, producing `2^(k-1)`
    /// clauses for a constraint of length `k`. This is only intended for
    /// small constraints (tests, brute-force checks); the solver handles xor
    /// constraints natively.
    ///
    /// # Panics
    ///
    /// Panics if the constraint has more than 20 variables (the expansion
    /// would exceed half a million clauses).
    pub fn to_cnf_clauses(&self) -> Vec<crate::Clause> {
        assert!(
            self.vars.len() <= 20,
            "refusing to expand an xor constraint of length {}",
            self.vars.len()
        );
        if self.vars.is_empty() {
            return if self.rhs {
                vec![crate::Clause::new([])]
            } else {
                vec![]
            };
        }
        let k = self.vars.len();
        let mut clauses = Vec::new();
        for mask in 0u32..(1 << k) {
            // `mask` encodes an assignment: bit i set => var i true.
            let parity = (mask.count_ones() % 2 == 1) == self.rhs;
            if parity {
                continue; // satisfying assignment, nothing to forbid
            }
            let lits = self.vars.iter().enumerate().map(|(i, &v)| {
                // Forbid this assignment: add the negation of each literal.
                if mask & (1 << i) != 0 {
                    v.negative()
                } else {
                    v.positive()
                }
            });
            clauses.push(crate::Clause::new(lits));
        }
        clauses
    }
}

impl fmt::Display for XorClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // CryptoMiniSAT-style: `x` prefix, first literal carries the parity
        // (negated first literal means rhs = 0).
        write!(f, "x")?;
        if self.vars.is_empty() {
            return write!(f, " 0");
        }
        for (i, var) in self.vars.iter().enumerate() {
            if i == 0 && !self.rhs {
                write!(f, " -{var}")?;
            } else {
                write!(f, " {var}")?;
            }
        }
        write!(f, " 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn duplicate_variables_cancel() {
        let xor = XorClause::from_dimacs([1, 2, 1], true);
        assert_eq!(xor.len(), 1);
        assert_eq!(xor.vars()[0], Var::from_dimacs(2));
    }

    #[test]
    fn four_duplicates_cancel_completely() {
        let xor = XorClause::from_dimacs([3, 3, 3, 3], false);
        assert!(xor.is_trivially_true());
        let xor = XorClause::from_dimacs([3, 3], true);
        assert!(xor.is_trivially_false());
    }

    #[test]
    fn evaluation_checks_parity() {
        let xor = XorClause::from_dimacs([1, 2, 3], true);
        assert!(xor.evaluate(&Model::new(vec![true, false, false])));
        assert!(!xor.evaluate(&Model::new(vec![true, true, false])));
        assert!(xor.evaluate(&Model::new(vec![true, true, true])));
    }

    #[test]
    fn cnf_expansion_agrees_with_direct_evaluation() {
        let xor = XorClause::from_dimacs([1, 2, 3], false);
        let clauses = xor.to_cnf_clauses();
        assert_eq!(clauses.len(), 4); // 2^(3-1)
        for mask in 0u32..8 {
            let model = Model::new((0..3).map(|i| mask & (1 << i) != 0).collect());
            let direct = xor.evaluate(&model);
            let expanded = clauses.iter().all(|c| c.evaluate(&model));
            assert_eq!(direct, expanded, "mismatch for assignment {mask:03b}");
        }
    }

    #[test]
    fn empty_xor_expansion() {
        assert!(XorClause::new([], true).to_cnf_clauses()[0].is_empty());
        assert!(XorClause::new([], false).to_cnf_clauses().is_empty());
    }

    #[test]
    fn display_uses_cryptominisat_convention() {
        let xor = XorClause::from_dimacs([1, 3], false);
        assert_eq!(xor.to_string(), "x -1 3 0");
        let xor = XorClause::from_dimacs([1, 3], true);
        assert_eq!(xor.to_string(), "x 1 3 0");
    }
}
