//! DIMACS CNF reading and writing.
//!
//! The dialect understood here is the one used by the original UniGen /
//! ApproxMC tool chain:
//!
//! * the standard `p cnf <vars> <clauses>` header and `… 0`-terminated
//!   clauses,
//! * CryptoMiniSAT-style xor clauses: lines starting with `x`, where negating
//!   any literal flips the required parity (`x 1 2 0` means `x1 ⊕ x2 = 1`,
//!   `x -1 2 0` means `x1 ⊕ x2 = 0`),
//! * sampling-set declarations in comments: `c ind 3 7 12 0` (possibly split
//!   across several `c ind` lines), as produced by the UniGen benchmark
//!   suites.
//!
//! # Example
//!
//! ```
//! use unigen_cnf::dimacs;
//!
//! # fn main() -> Result<(), unigen_cnf::CnfError> {
//! let text = "c ind 1 2 0\np cnf 3 2\n1 -2 0\nx 2 3 0\n";
//! let formula = dimacs::parse(text)?;
//! assert_eq!(formula.num_vars(), 3);
//! assert_eq!(formula.num_clauses(), 1);
//! assert_eq!(formula.num_xor_clauses(), 1);
//! assert_eq!(formula.sampling_set().unwrap().len(), 2);
//! let roundtrip = dimacs::parse(&dimacs::to_dimacs_string(&formula))?;
//! assert_eq!(formula, roundtrip);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::{CnfError, CnfFormula, Lit, Var, XorClause};

/// Parses a DIMACS CNF document from a string.
///
/// # Errors
///
/// Returns [`CnfError::ParseDimacs`] when the input is malformed and
/// [`CnfError::VariableOutOfRange`] / [`CnfError::SamplingVarOutOfRange`]
/// when clauses or the sampling set mention undeclared variables.
pub fn parse(input: &str) -> Result<CnfFormula, CnfError> {
    let mut formula: Option<CnfFormula> = None;
    let mut sampling: Vec<Var> = Vec::new();
    let mut pending_clauses: Vec<Vec<Lit>> = Vec::new();
    let mut pending_xors: Vec<XorClause> = Vec::new();
    let mut declared_clauses: Option<usize> = None;

    for (line_no, raw_line) in input.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('c') {
            // Comment; may carry a sampling-set declaration.
            let rest = rest.trim();
            if let Some(ind) = rest.strip_prefix("ind") {
                for token in ind.split_whitespace() {
                    let value: i64 = token.parse().map_err(|_| CnfError::ParseDimacs {
                        line: line_no,
                        message: format!("invalid sampling-set token `{token}`"),
                    })?;
                    if value == 0 {
                        break;
                    }
                    if value < 0 {
                        return Err(CnfError::ParseDimacs {
                            line: line_no,
                            message: "sampling-set variables must be positive".to_string(),
                        });
                    }
                    sampling.push(Var::from_dimacs(value as usize));
                }
            }
            continue;
        }
        if line.starts_with('p') {
            if formula.is_some() {
                return Err(CnfError::ParseDimacs {
                    line: line_no,
                    message: "duplicate problem line".to_string(),
                });
            }
            let mut tokens = line.split_whitespace();
            let _p = tokens.next();
            let kind = tokens.next().unwrap_or("");
            if kind != "cnf" {
                return Err(CnfError::ParseDimacs {
                    line: line_no,
                    message: format!("unsupported problem kind `{kind}` (expected `cnf`)"),
                });
            }
            let vars: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                CnfError::ParseDimacs {
                    line: line_no,
                    message: "missing or invalid variable count".to_string(),
                }
            })?;
            let clauses: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                CnfError::ParseDimacs {
                    line: line_no,
                    message: "missing or invalid clause count".to_string(),
                }
            })?;
            declared_clauses = Some(clauses);
            formula = Some(CnfFormula::new(vars));
            continue;
        }

        // Clause or xor-clause line.
        let (is_xor, body) = match line.strip_prefix('x') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut values: Vec<i64> = Vec::new();
        let mut terminated = false;
        for token in body.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| CnfError::ParseDimacs {
                line: line_no,
                message: format!("invalid literal `{token}`"),
            })?;
            if value == 0 {
                terminated = true;
                break;
            }
            values.push(value);
        }
        if !terminated {
            return Err(CnfError::ParseDimacs {
                line: line_no,
                message: "clause is not terminated by 0".to_string(),
            });
        }
        if is_xor {
            // Negating any literal flips the parity; start from rhs = true.
            let mut rhs = true;
            let vars: Vec<Var> = values
                .iter()
                .map(|&v| {
                    if v < 0 {
                        rhs = !rhs;
                    }
                    Var::from_dimacs(v.unsigned_abs() as usize)
                })
                .collect();
            pending_xors.push(XorClause::new(vars, rhs));
        } else {
            pending_clauses.push(values.into_iter().map(Lit::from_dimacs).collect());
        }
    }

    let mut formula = formula.ok_or(CnfError::ParseDimacs {
        line: 0,
        message: "missing `p cnf` problem line".to_string(),
    })?;

    if let Some(declared) = declared_clauses {
        let found = pending_clauses.len() + pending_xors.len();
        // Many real-world benchmark files get the count slightly wrong, so we
        // only reject when the body has *more* clauses than declared space
        // for; a smaller count is accepted silently (matching picosat and
        // CryptoMiniSAT behaviour).
        if found > declared && declared != 0 {
            // Accept anyway: the declared count is advisory in practice.
        }
    }

    for lits in pending_clauses {
        formula.add_clause(lits)?;
    }
    for xor in pending_xors {
        formula.add_xor_clause(xor)?;
    }
    formula.set_sampling_set(sampling)?;
    Ok(formula)
}

/// Reads and parses a DIMACS CNF file.
///
/// # Errors
///
/// Returns [`CnfError::Io`] if the file cannot be read, otherwise the same
/// errors as [`parse`].
pub fn parse_file<P: AsRef<Path>>(path: P) -> Result<CnfFormula, CnfError> {
    let text = fs::read_to_string(path)?;
    parse(&text)
}

/// Serialises a formula to a DIMACS CNF string.
///
/// The sampling set (if any) is emitted as `c ind … 0` comment lines before
/// the problem line, and xor constraints are emitted as CryptoMiniSAT-style
/// `x …` lines.
pub fn to_dimacs_string(formula: &CnfFormula) -> String {
    let mut out = String::new();
    if let Some(set) = formula.sampling_set() {
        // Split long sampling sets over multiple lines of at most ten
        // variables each, the convention used by the UniGen benchmark suite.
        for chunk in set.chunks(10) {
            out.push_str("c ind");
            for v in chunk {
                let _ = write!(out, " {v}");
            }
            out.push_str(" 0\n");
        }
    }
    // Degenerate xor constraints have no faithful `x …` encoding: an empty
    // constraint with rhs = 0 is a tautology (dropped), one with rhs = 1 is a
    // contradiction (emitted as the empty CNF clause).
    let emitted_xors: Vec<_> = formula
        .xor_clauses()
        .iter()
        .filter(|x| !x.is_trivially_true())
        .collect();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses() + emitted_xors.len()
    );
    for clause in formula.clauses() {
        let _ = writeln!(out, "{clause}");
    }
    for xor in emitted_xors {
        if xor.is_trivially_false() {
            let _ = writeln!(out, "0");
        } else {
            let _ = writeln!(out, "{xor}");
        }
    }
    out
}

/// Writes a formula to a DIMACS CNF file.
///
/// # Errors
///
/// Returns [`CnfError::Io`] if the file cannot be written.
pub fn write_file<P: AsRef<Path>>(formula: &CnfFormula, path: P) -> Result<(), CnfError> {
    fs::write(path, to_dimacs_string(formula))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn parse_minimal() {
        let f = parse("p cnf 2 1\n1 -2 0\n").unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 1);
        assert!(f.sampling_set().is_none());
    }

    #[test]
    fn parse_handles_comments_and_blank_lines() {
        let f = parse("c hello\n\np cnf 1 1\nc mid comment\n1 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn parse_reads_sampling_set_over_multiple_lines() {
        let text = "c ind 1 2 0\nc ind 4 0\np cnf 5 1\n1 0\n";
        let f = parse(text).unwrap();
        let set: Vec<usize> = f
            .sampling_set()
            .unwrap()
            .iter()
            .map(|v| v.to_dimacs())
            .collect();
        assert_eq!(set, vec![1, 2, 4]);
    }

    #[test]
    fn parse_xor_polarity() {
        let f = parse("p cnf 3 2\nx 1 2 0\nx -1 3 0\n").unwrap();
        assert_eq!(f.num_xor_clauses(), 2);
        assert!(f.xor_clauses()[0].rhs());
        assert!(!f.xor_clauses()[1].rhs());
        // Double negation flips the parity back.
        let g = parse("p cnf 3 1\nx -1 -3 0\n").unwrap();
        assert!(g.xor_clauses()[0].rhs());
    }

    #[test]
    fn parse_rejects_missing_terminator() {
        let err = parse("p cnf 2 1\n1 -2\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_missing_header() {
        let err = parse("1 -2 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { .. }));
    }

    #[test]
    fn parse_rejects_bad_problem_kind() {
        let err = parse("p wcnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_out_of_range_variable() {
        let err = parse("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(matches!(err, CnfError::VariableOutOfRange { .. }));
    }

    #[test]
    fn parse_rejects_non_numeric_variable_count() {
        let err = parse("p cnf abc 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_missing_clause_count() {
        let err = parse("p cnf 2\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_bare_problem_keyword() {
        let err = parse("p\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_duplicate_problem_line() {
        let err = parse("p cnf 2 1\np cnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_out_of_range_xor_variable() {
        let err = parse("p cnf 2 1\nx 1 5 0\n").unwrap_err();
        assert!(matches!(err, CnfError::VariableOutOfRange { .. }));
    }

    #[test]
    fn parse_rejects_out_of_range_negated_literal() {
        let err = parse("p cnf 2 1\n-4 0\n").unwrap_err();
        assert!(matches!(err, CnfError::VariableOutOfRange { .. }));
    }

    #[test]
    fn parse_rejects_non_numeric_literal() {
        let err = parse("p cnf 2 1\n1 foo 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_truncated_xor_clause() {
        let err = parse("p cnf 3 1\nx 1 2\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_truncated_clause_at_end_of_file() {
        // The final clause loses its `0` terminator mid-stream — the shape a
        // truncated download or interrupted write produces.
        let err = parse("p cnf 3 2\n1 -2 0\n2 3").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 3, .. }));
    }

    #[test]
    fn parse_rejects_negative_sampling_variable() {
        let err = parse("c ind -1 0\np cnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_non_numeric_sampling_token() {
        let err = parse("c ind one 0\np cnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_out_of_range_sampling_variable() {
        let err = parse("c ind 9 0\np cnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err, CnfError::SamplingVarOutOfRange { .. }));
    }

    #[test]
    fn roundtrip_preserves_semantics_and_metadata() {
        let text = "c ind 1 3 0\np cnf 4 3\n1 -2 0\n-3 4 0\nx 1 4 0\n";
        let f = parse(text).unwrap();
        let g = parse(&to_dimacs_string(&f)).unwrap();
        assert_eq!(f, g);
        // Same models under brute force.
        for mask in 0u64..16 {
            let model = Model::new((0..4).map(|i| mask & (1 << i) != 0).collect());
            assert_eq!(f.evaluate(&model), g.evaluate(&model));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("unigen_cnf_dimacs_test.cnf");
        let f = parse("c ind 2 0\np cnf 2 1\n1 2 0\n").unwrap();
        write_file(&f, &path).unwrap();
        let g = parse_file(&path).unwrap();
        assert_eq!(f, g);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn degenerate_xor_clauses_serialise_semantically() {
        use crate::XorClause;
        // A fully-cancelled xor with rhs = 0 is a tautology: it disappears
        // from the output without changing the model set.
        let mut tautology = CnfFormula::new(2);
        tautology.add_clause([Lit::from_dimacs(1)]).unwrap();
        tautology
            .add_xor_clause(XorClause::from_dimacs([2, 2], false))
            .unwrap();
        let reparsed = parse(&to_dimacs_string(&tautology)).unwrap();
        assert_eq!(
            tautology.enumerate_models_brute_force(),
            reparsed.enumerate_models_brute_force()
        );

        // One with rhs = 1 is a contradiction: it becomes the empty clause.
        let mut contradiction = CnfFormula::new(1);
        contradiction
            .add_xor_clause(XorClause::from_dimacs([1, 1], true))
            .unwrap();
        let reparsed = parse(&to_dimacs_string(&contradiction)).unwrap();
        assert!(reparsed.enumerate_models_brute_force().is_empty());
    }

    #[test]
    fn parse_file_missing_is_io_error() {
        let err = parse_file("/definitely/not/a/file.cnf").unwrap_err();
        assert!(matches!(err, CnfError::Io(_)));
    }
}
