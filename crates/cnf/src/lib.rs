//! Propositional formula substrate for the UniGen reproduction.
//!
//! This crate provides the basic vocabulary shared by every other crate in
//! the workspace:
//!
//! * [`Var`] and [`Lit`] — compact, copyable identifiers for Boolean
//!   variables and literals,
//! * [`Clause`] — a disjunction of literals,
//! * [`XorClause`] — a parity (xor) constraint over a set of variables, the
//!   building block of the `H_xor(n, m, 3)` hash family used by UniGen,
//! * [`Assignment`] and [`Model`] — partial and total truth assignments,
//! * [`CnfFormula`] — a CNF formula with optional xor constraints and an
//!   optional *sampling set* (the paper's independent support `S`),
//! * [`dimacs`] — DIMACS CNF reading and writing, including the
//!   CryptoMiniSAT-style `x …` xor-clause lines and `c ind … 0` sampling-set
//!   comments used by the original UniGen tool chain.
//!
//! # Example
//!
//! ```
//! use unigen_cnf::{CnfFormula, Lit, Var};
//!
//! # fn main() -> Result<(), unigen_cnf::CnfError> {
//! // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
//! let mut formula = CnfFormula::new(3);
//! formula.add_clause([Lit::positive(Var::new(0)), Lit::negative(Var::new(1))])?;
//! formula.add_clause([Lit::positive(Var::new(1)), Lit::positive(Var::new(2))])?;
//! assert_eq!(formula.num_clauses(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
mod error;
mod formula;
mod lit;
mod xor;

pub mod dimacs;

pub use assignment::{Assignment, Model};
pub use clause::Clause;
pub use error::CnfError;
pub use formula::CnfFormula;
pub use lit::{Lit, Var};
pub use xor::XorClause;
