//! Disjunctive clauses.

use std::fmt;

use crate::{Lit, Model, Var};

/// A disjunction of literals.
///
/// Clauses produced by [`Clause::new`] are *normalised*: literals are sorted,
/// duplicates removed, and [`Clause::is_tautology`] reports whether the
/// clause contains a complementary pair (and is therefore always satisfied).
///
/// # Example
///
/// ```
/// use unigen_cnf::{Clause, Lit};
/// let clause = Clause::new(vec![Lit::from_dimacs(3), Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
/// assert_eq!(clause.len(), 2);
/// assert!(!clause.is_tautology());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
    tautology: bool,
}

impl Clause {
    /// Creates a normalised clause from the given literals.
    pub fn new<I>(lits: I) -> Self
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        let tautology = lits.windows(2).any(|w| w[0].var() == w[1].var());
        Clause { lits, tautology }
    }

    /// Creates a clause directly from signed DIMACS integers.
    ///
    /// # Panics
    ///
    /// Panics if any value is zero.
    pub fn from_dimacs<I>(values: I) -> Self
    where
        I: IntoIterator<Item = i64>,
    {
        Clause::new(values.into_iter().map(Lit::from_dimacs))
    }

    /// Returns the literals of this clause in sorted order.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of (distinct) literals in this clause.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals (i.e. is unsatisfiable).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains both a literal and its negation.
    #[inline]
    pub fn is_tautology(&self) -> bool {
        self.tautology
    }

    /// Returns `true` if the clause contains exactly one literal.
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Returns an iterator over the literals of this clause.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Returns the largest variable mentioned by this clause, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.lits.iter().map(|l| l.var()).max()
    }

    /// Evaluates the clause under a total assignment.
    ///
    /// # Panics
    ///
    /// Panics if the model does not cover every variable of the clause.
    pub fn evaluate(&self, model: &Model) -> bool {
        self.lits.iter().any(|l| l.evaluate(model.value(l.var())))
    }

    /// Returns `true` if `lit` occurs in this clause.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::new(iter)
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lit) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, " 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_sorts_and_dedups() {
        let c = Clause::from_dimacs([5, -2, 5, 1]);
        let dimacs: Vec<i64> = c.iter().map(|l| l.to_dimacs()).collect();
        assert_eq!(dimacs, vec![1, -2, 5]);
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_dimacs([1, -1, 3]).is_tautology());
        assert!(!Clause::from_dimacs([1, 2, 3]).is_tautology());
    }

    #[test]
    fn empty_clause_properties() {
        let c = Clause::new([]);
        assert!(c.is_empty());
        assert!(!c.is_unit());
        assert!(!c.is_tautology());
        assert_eq!(c.max_var(), None);
    }

    #[test]
    fn unit_clause_detection() {
        assert!(Clause::from_dimacs([7]).is_unit());
        assert!(!Clause::from_dimacs([7, 8]).is_unit());
    }

    #[test]
    fn evaluation_against_model() {
        let c = Clause::from_dimacs([1, -3]);
        let m = Model::new(vec![false, true, true]);
        // lit 1 is false, lit -3 is false -> clause false
        assert!(!c.evaluate(&m));
        let m = Model::new(vec![true, true, true]);
        assert!(c.evaluate(&m));
    }

    #[test]
    fn contains_uses_binary_search() {
        let c = Clause::from_dimacs([1, -2, 5]);
        assert!(c.contains(Lit::from_dimacs(-2)));
        assert!(!c.contains(Lit::from_dimacs(2)));
    }

    #[test]
    fn display_is_dimacs_terminated() {
        let c = Clause::from_dimacs([2, -1]);
        assert_eq!(c.to_string(), "-1 2 0");
    }
}
