//! Partial assignments and total models.

use std::fmt;

use crate::{Lit, Var};

/// A total truth assignment over variables `0..n`.
///
/// A `Model` is what a SAT solver or a sampler returns: every variable of the
/// formula has a definite value. Models compare equal iff they assign the
/// same values, which makes them usable as keys when counting how often each
/// witness is produced (the Figure 1 experiment).
///
/// # Example
///
/// ```
/// use unigen_cnf::{Model, Var};
/// let m = Model::new(vec![true, false, true]);
/// assert!(m.value(Var::new(0)));
/// assert!(!m.value(Var::new(1)));
/// assert_eq!(m.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Creates a model from a vector of truth values indexed by variable.
    pub fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// Returns the number of variables covered by this model.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the model covers no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the truth value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not covered by this model.
    #[inline]
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Returns the truth value of a literal under this model.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is not covered by this model.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> bool {
        lit.evaluate(self.value(lit.var()))
    }

    /// Returns the underlying values, indexed by variable.
    #[inline]
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Projects this model onto a set of variables, producing the
    /// sub-assignment restricted to those variables (in the order given).
    ///
    /// UniGen distinguishes witnesses only by their projection on the
    /// sampling set `S`; this is the operation that computes that projection.
    ///
    /// # Panics
    ///
    /// Panics if any variable in `vars` is not covered by this model.
    pub fn project(&self, vars: &[Var]) -> Projection {
        Projection {
            vars: vars.to_vec(),
            values: vars.iter().map(|&v| self.value(v)).collect(),
        }
    }

    /// Returns the model as a list of literals (positive when the variable is
    /// true).
    pub fn to_lits(&self) -> Vec<Lit> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &b)| Var::new(i).lit(b))
            .collect()
    }
}

impl FromIterator<bool> for Model {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Model::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lit) in self.to_lits().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

/// A projection of a model onto a subset of variables.
///
/// Two projections compare equal iff they assign the same values to the same
/// variables, which is exactly the equivalence UniGen uses when it blocks
/// already-generated witnesses on the sampling set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Projection {
    vars: Vec<Var>,
    values: Vec<bool>,
}

impl Projection {
    /// Returns the projected variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Returns the projected values, aligned with [`Projection::vars`].
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Returns the projection as literals (positive when the variable is
    /// true), suitable for building a blocking clause.
    pub fn to_lits(&self) -> Vec<Lit> {
        self.vars
            .iter()
            .zip(&self.values)
            .map(|(&v, &b)| v.lit(b))
            .collect()
    }

    /// Interprets the projection as an unsigned integer, treating the first
    /// variable as the least-significant bit. Useful for compact bookkeeping
    /// in tests and in the Figure 1 histogram.
    ///
    /// # Panics
    ///
    /// Panics if the projection covers more than 64 variables.
    pub fn as_index(&self) -> u64 {
        assert!(self.values.len() <= 64, "projection too wide for u64");
        self.values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }
}

/// A partial assignment: each variable is true, false, or unassigned.
///
/// This is the working structure used by the solver trail and by the exact
/// model counter while it descends the search tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// Creates an empty assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![None; num_vars],
        }
    }

    /// Returns the number of variables tracked by this assignment.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Returns the value assigned to `var`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[inline]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values[var.index()]
    }

    /// Returns the value of a literal under this assignment, if its variable
    /// is assigned.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| lit.evaluate(v))
    }

    /// Assigns `value` to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[inline]
    pub fn assign(&mut self, var: Var, value: bool) {
        self.values[var.index()] = Some(value);
    }

    /// Removes the assignment of `var`.
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = None;
    }

    /// Returns `true` if `var` currently has a value.
    #[inline]
    pub fn is_assigned(&self, var: Var) -> bool {
        self.values[var.index()].is_some()
    }

    /// Returns the number of assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Converts this assignment into a total model, filling unassigned
    /// variables with `default`.
    pub fn to_model(&self, default: bool) -> Model {
        Model::new(self.values.iter().map(|v| v.unwrap_or(default)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_lit_value() {
        let m = Model::new(vec![true, false]);
        assert!(m.lit_value(Lit::from_dimacs(1)));
        assert!(!m.lit_value(Lit::from_dimacs(-1)));
        assert!(m.lit_value(Lit::from_dimacs(-2)));
    }

    #[test]
    fn projection_index_is_lsb_first() {
        let m = Model::new(vec![true, false, true, true]);
        let p = m.project(&[Var::new(0), Var::new(2), Var::new(3)]);
        // vars 0, 2, 3 are all true -> bits 0, 1, 2 set
        assert_eq!(p.as_index(), 0b111);
        let q = m.project(&[Var::new(1), Var::new(3)]);
        // var 1 is false (bit 0 clear), var 3 is true (bit 1 set)
        assert_eq!(q.as_index(), 0b10);
    }

    #[test]
    fn projection_index_simple() {
        let m = Model::new(vec![true, false, true]);
        let p = m.project(&[Var::new(0), Var::new(1), Var::new(2)]);
        assert_eq!(p.as_index(), 0b101);
        let q = m.project(&[Var::new(1)]);
        assert_eq!(q.as_index(), 0);
    }

    #[test]
    fn projection_equality_ignores_other_vars() {
        let a = Model::new(vec![true, false, true]);
        let b = Model::new(vec![true, true, true]);
        let s = [Var::new(0), Var::new(2)];
        assert_eq!(a.project(&s), b.project(&s));
        assert_ne!(a, b);
    }

    #[test]
    fn assignment_roundtrip() {
        let mut a = Assignment::new(3);
        assert_eq!(a.num_assigned(), 0);
        a.assign(Var::new(1), true);
        assert!(a.is_assigned(Var::new(1)));
        assert_eq!(a.value(Var::new(1)), Some(true));
        assert_eq!(a.lit_value(Lit::from_dimacs(-2)), Some(false));
        assert_eq!(a.lit_value(Lit::from_dimacs(1)), None);
        a.unassign(Var::new(1));
        assert_eq!(a.num_assigned(), 0);
    }

    #[test]
    fn assignment_to_model_fills_defaults() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let m = a.to_model(false);
        assert_eq!(m.values(), &[true, false, false]);
    }

    #[test]
    fn model_display_lists_dimacs_literals() {
        let m = Model::new(vec![true, false]);
        assert_eq!(m.to_string(), "1 -2");
    }
}
