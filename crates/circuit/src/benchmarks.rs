//! Named benchmark families standing in for the paper's evaluation instances.
//!
//! The paper's Tables 1 and 2 draw on four kinds of CNF constraints:
//! bit-blasted BMC instances (`case…`), ISCAS89 circuits with parity
//! conditions on randomly chosen outputs (`s526`, `s953`, `s1196`, `s1238`),
//! bit-blasted arithmetic from SMTLib (`Squaring…`), and program-synthesis
//! constraints with deep control logic (`LoginService2`, `Sort`, `Karatsuba`,
//! `LLReverse`, `EnqueueSeqSK`, `tutorial3`). None of those files are
//! redistributable, so this module regenerates each *family* synthetically
//! with the same structural signature: a large Tseitin-encoded support `X`, a
//! small independent support `S` (the primary inputs), and output constraints
//! that leave a non-trivial number of witnesses.
//!
//! Every generator guarantees satisfiability by construction: it simulates
//! the circuit on a random input vector and derives the output constraints
//! from the values observed, so at least that input vector remains a witness.
//!
//! The [`table1_suite`] and [`table2_suite`] functions return the instance
//! lists used by the benchmark harness to regenerate the paper's tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unigen_cnf::CnfFormula;

use crate::builder::{BitVector, CircuitBuilder};
use crate::gate::NodeId;
use crate::netlist::Circuit;
use crate::tseitin;

/// A generated benchmark instance: a formula with its sampling set plus
/// provenance metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Human-readable instance name (the "Benchmark" column of the tables).
    pub name: String,
    /// The CNF(+xor) formula, with the sampling set recorded.
    pub formula: CnfFormula,
    /// Which paper family this instance mirrors.
    pub family: Family,
}

/// The paper benchmark family an instance mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Bit-blasted bounded-model-checking constraints (`case…`).
    BmcCase,
    /// ISCAS89-style circuits with parity observability conditions.
    IscasParity,
    /// Bit-vector squaring constraints (`Squaring…`).
    Squaring,
    /// Karatsuba multiplication constraints.
    Karatsuba,
    /// Sorting-network constraints (`Sort`).
    Sorter,
    /// Program-synthesis-style validation logic (`LoginService2`, …).
    LoginLike,
    /// Deep sequential chains with tiny supports (`LLReverse`, `TreeMax`).
    LongChain,
    /// Scale-free random k-SAT with power-law variable occurrence
    /// (`unigen-instgen`, after Ansótegui et al.).
    ScaleFree,
    /// Triangle-free binary CSPs direct-encoded to CNF (`unigen-instgen`,
    /// after Escamocher et al.).
    TriangleFree,
    /// Sgen-style small hard blocks (`unigen-instgen`, after Spence's
    /// `sgen`).
    SgenBlock,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::BmcCase => "bmc-case",
            Family::IscasParity => "iscas-parity",
            Family::Squaring => "squaring",
            Family::Karatsuba => "karatsuba",
            Family::Sorter => "sorter",
            Family::LoginLike => "login-like",
            Family::LongChain => "long-chain",
            Family::ScaleFree => "scale-free",
            Family::TriangleFree => "triangle-free",
            Family::SgenBlock => "sgen-block",
        };
        write!(f, "{name}")
    }
}

impl Benchmark {
    /// Number of CNF variables, the "|X|" / "#Variables" column.
    pub fn num_vars(&self) -> usize {
        self.formula.num_vars()
    }

    /// Size of the sampling set, the "|S|" column.
    pub fn sampling_set_size(&self) -> usize {
        self.formula
            .sampling_set()
            .map(|s| s.len())
            .unwrap_or_else(|| self.formula.num_vars())
    }
}

fn random_inputs<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Vec<bool> {
    (0..circuit.num_inputs()).map(|_| rng.gen()).collect()
}

/// Picks `count` distinct random elements of `items`.
fn choose_distinct<T: Copy, R: Rng + ?Sized>(items: &[T], count: usize, rng: &mut R) -> Vec<T> {
    let mut indices: Vec<usize> = (0..items.len()).collect();
    // Partial Fisher-Yates shuffle.
    let count = count.min(items.len());
    for i in 0..count {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices[..count].iter().map(|&i| items[i]).collect()
}

/// `case…`-style instance: a layered xor/and/or datapath over `num_inputs`
/// primary inputs of `depth` layers, with `num_parity` parity conditions over
/// randomly chosen internal signals.
pub fn parity_chain(
    name: &str,
    num_inputs: usize,
    depth: usize,
    num_parity: usize,
    seed: u64,
) -> Benchmark {
    assert!(num_inputs >= 2, "parity_chain needs at least two inputs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let inputs: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("in{i}"))).collect();

    let mut layer = inputs.clone();
    let mut all_signals: Vec<NodeId> = Vec::new();
    for level in 0..depth {
        let mut next_layer = Vec::with_capacity(layer.len());
        for i in 0..layer.len() {
            let a = layer[i];
            let c = layer[(i + 1 + level) % layer.len()];
            let gate = match (i + level) % 3 {
                0 => b.xor(a, c),
                1 => b.and(a, c),
                _ => b.or(a, c),
            };
            next_layer.push(gate);
            all_signals.push(gate);
        }
        layer = next_layer;
    }
    for (i, &out) in layer.iter().enumerate() {
        b.output(format!("out{i}"), out);
    }
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let mut enc = tseitin::encode(&circuit);
    for chunk_index in 0..num_parity {
        let subset = choose_distinct(&all_signals, 3 + chunk_index % 3, &mut rng);
        let rhs = subset.iter().fold(false, |acc, &id| acc ^ sim.value(id));
        enc.assert_parity(subset, rhs);
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::BmcCase,
    }
}

/// ISCAS89-like instance: a random combinational netlist over `num_inputs`
/// inputs with `num_gates` gates, plus `num_parity` parity conditions on
/// randomly chosen outputs — the construction the paper applies to the
/// `s526`/`s953`/`s1196`/`s1238` circuits.
pub fn iscas_like(
    name: &str,
    num_inputs: usize,
    num_gates: usize,
    num_parity: usize,
    seed: u64,
) -> Benchmark {
    assert!(num_inputs >= 2, "iscas_like needs at least two inputs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let inputs: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("pi{i}"))).collect();

    let mut signals: Vec<NodeId> = inputs.clone();
    for g in 0..num_gates {
        let a = signals[rng.gen_range(0..signals.len())];
        let c = signals[rng.gen_range(0..signals.len())];
        let gate = match rng.gen_range(0..6) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            _ => {
                let s = signals[rng.gen_range(0..signals.len())];
                b.mux(s, a, c)
            }
        };
        signals.push(gate);
        if g % 7 == 0 {
            b.output(format!("po{g}"), gate);
        }
    }
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let gate_signals: Vec<NodeId> = signals[num_inputs..].to_vec();
    let mut enc = tseitin::encode(&circuit);
    for i in 0..num_parity {
        let subset = choose_distinct(&gate_signals, 4 + i % 4, &mut rng);
        let rhs = subset.iter().fold(false, |acc, &id| acc ^ sim.value(id));
        enc.assert_parity(subset, rhs);
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::IscasParity,
    }
}

/// `Squaring…`-style instance: `z = x²` over a `bits`-wide input, with
/// `constrained_bits` output bits pinned to values consistent with a random
/// witness.
pub fn squaring(name: &str, bits: usize, constrained_bits: usize, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let x = b.input_word("x", bits);
    let square = b.multiply(&x, &x);
    b.output_word("square", &square);
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let mut enc = tseitin::encode(&circuit);
    let chosen = choose_distinct(square.bits(), constrained_bits, &mut rng);
    for node in chosen {
        enc.assert_node(node, sim.value(node));
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::Squaring,
    }
}

/// `Karatsuba`-style instance: `z = x · y` built with the Karatsuba
/// decomposition, with `constrained_bits` product bits pinned to a witness.
pub fn karatsuba(name: &str, bits: usize, constrained_bits: usize, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let x = b.input_word("x", bits);
    let y = b.input_word("y", bits);
    let product = b.karatsuba(&x, &y);
    b.output_word("product", &product);
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let mut enc = tseitin::encode(&circuit);
    let chosen = choose_distinct(product.bits(), constrained_bits, &mut rng);
    for node in chosen {
        enc.assert_node(node, sim.value(node));
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::Karatsuba,
    }
}

/// `Sort`-style instance: an odd-even transposition sorting network over
/// `lanes` words of `width` bits, with `constrained_bits` sorted-output bits
/// pinned to a witness.
pub fn sorter(
    name: &str,
    lanes: usize,
    width: usize,
    constrained_bits: usize,
    seed: u64,
) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let words: Vec<BitVector> = (0..lanes)
        .map(|i| b.input_word(&format!("w{i}"), width))
        .collect();
    let sorted = b.sorting_network(&words);
    for (i, word) in sorted.iter().enumerate() {
        b.output_word(&format!("s{i}"), word);
    }
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let all_output_bits: Vec<NodeId> = sorted.iter().flat_map(|w| w.bits().to_vec()).collect();
    let mut enc = tseitin::encode(&circuit);
    let chosen = choose_distinct(&all_output_bits, constrained_bits, &mut rng);
    for node in chosen {
        enc.assert_node(node, sim.value(node));
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::Sorter,
    }
}

/// `LoginService2`-style instance: cascaded field-validation logic. Each of
/// the `fields` input words must fall in a half-open range for the request to
/// be accepted, and the formula asserts acceptance. Witnesses are the
/// accepted stimuli — exactly the CRV scenario of the paper's introduction.
pub fn login_like(name: &str, fields: usize, width: usize, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let max_value = (1u64 << width) - 1;
    let mut checks: Vec<NodeId> = Vec::new();
    for i in 0..fields {
        let field = b.input_word(&format!("field{i}"), width);
        // Random non-empty admissible range [lo, hi).
        let lo = rng.gen_range(0..max_value / 2);
        let hi = rng.gen_range(lo + 1..=max_value);
        let lo_word = b.constant_word(lo, width);
        let hi_word = b.constant_word(hi, width);
        let not_too_small = {
            let lt = b.less_than(&field, &lo_word);
            b.not(lt)
        };
        let below_hi = b.less_than(&field, &hi_word);
        let in_range = b.and(not_too_small, below_hi);
        checks.push(in_range);
    }
    // Chain the checks through muxes to mimic sequential validation logic
    // (deepens the circuit without changing its function).
    let mut accept = checks[0];
    for &check in &checks[1..] {
        let false_const = b.constant(false);
        accept = b.mux(check, false_const, accept);
    }
    b.output("accept", accept);
    let circuit = b.finish();

    let mut enc = tseitin::encode(&circuit);
    enc.assert_node(accept, true);
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::LoginLike,
    }
}

/// `LLReverse`/`TreeMax`-style instance: a deep linear chain of word
/// transformations over a tiny input word, so the support `X` is roughly
/// `stages · width` while the independent support stays at `width` bits.
pub fn long_chain(
    name: &str,
    width: usize,
    stages: usize,
    constrained_bits: usize,
    seed: u64,
) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(name);
    let input = b.input_word("x", width);
    let mut word = input.clone();
    for stage in 0..stages {
        let constant = b.constant_word(rng.gen_range(1..(1 << width.min(16))), width);
        word = match stage % 3 {
            0 => {
                let sum = b.add(&word, &constant);
                b.truncate_or_extend(&sum, width)
            }
            1 => {
                // Bitwise rotation by one plus an xor with a constant.
                let rotated =
                    BitVector::new((0..width).map(|i| word.bit((i + 1) % width)).collect());
                BitVector::new(
                    (0..width)
                        .map(|i| b.xor(rotated.bit(i), constant.bit(i)))
                        .collect(),
                )
            }
            _ => {
                let diff = b.subtract(&word, &constant);
                b.truncate_or_extend(&diff, width)
            }
        };
    }
    b.output_word("y", &word);
    let circuit = b.finish();

    let witness = random_inputs(&circuit, &mut rng);
    let sim = circuit.simulate(&witness);
    let mut enc = tseitin::encode(&circuit);
    let chosen = choose_distinct(word.bits(), constrained_bits, &mut rng);
    for node in chosen {
        enc.assert_node(node, sim.value(node));
    }
    Benchmark {
        name: name.to_string(),
        formula: enc.into_formula(),
        family: Family::LongChain,
    }
}

/// The instance list used to regenerate Table 1 (one representative per
/// family, laptop-scale sizes).
pub fn table1_suite() -> Vec<Benchmark> {
    vec![
        parity_chain("case121-like", 16, 4, 5, 0x0121),
        iscas_like("s526-like", 14, 180, 5, 0x0526),
        iscas_like("s953-like", 16, 320, 6, 0x0953),
        squaring("squaring8-like", 8, 6, 0x0808),
        karatsuba("karatsuba10-like", 10, 8, 0x0a0a),
        sorter("sort4x4-like", 4, 4, 6, 0x5047),
        login_like("login3x6-like", 3, 6, 0x1061),
        long_chain("llreverse-like", 12, 60, 5, 0x11ef),
    ]
}

/// The extended instance list used to regenerate Table 2 (more instances per
/// family, still laptop-scale).
pub fn table2_suite() -> Vec<Benchmark> {
    let mut suite = table1_suite();
    suite.extend(vec![
        parity_chain("case110-like", 14, 3, 4, 0x0110),
        parity_chain("case35-like", 18, 5, 7, 0x0035),
        iscas_like("s1196-like", 18, 420, 7, 0x1196),
        iscas_like("s1238-like", 18, 450, 8, 0x1238),
        squaring("squaring10-like", 10, 8, 0x0a10),
        squaring("squaring7-like", 7, 5, 0x0707),
        karatsuba("karatsuba12-like", 12, 10, 0x0c0c),
        sorter("sort5x4-like", 5, 4, 8, 0x5055),
        login_like("login4x6-like", 4, 6, 0x1062),
        long_chain("treemax-like", 10, 90, 4, 0x73ee),
    ]);
    suite
}

/// The instance used for the uniformity study (Figure 1): small enough for
/// exact counting yet structured like the `case…` family. The paper's
/// `case110` has 16 384 witnesses; this stand-in has a few thousand,
/// adjustable through `num_inputs`/`num_parity`.
pub fn figure1_instance() -> Benchmark {
    parity_chain("case110-like", 14, 3, 4, 0x0110)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_satsolver::{SolveResult, Solver};

    fn assert_satisfiable_and_well_formed(benchmark: &Benchmark) {
        let sampling = benchmark
            .formula
            .sampling_set()
            .expect("sampling set recorded");
        assert!(!sampling.is_empty());
        assert!(
            sampling.len() < benchmark.formula.num_vars(),
            "{}: sampling set should be a strict subset of the support",
            benchmark.name
        );
        let mut solver = Solver::from_formula(&benchmark.formula);
        match solver.solve() {
            SolveResult::Sat(model) => assert!(benchmark.formula.evaluate(&model)),
            other => panic!("{} should be satisfiable, got {other:?}", benchmark.name),
        }
    }

    #[test]
    fn parity_chain_is_satisfiable() {
        assert_satisfiable_and_well_formed(&parity_chain("t", 10, 3, 3, 1));
    }

    #[test]
    fn iscas_like_is_satisfiable() {
        assert_satisfiable_and_well_formed(&iscas_like("t", 10, 80, 4, 2));
    }

    #[test]
    fn squaring_is_satisfiable() {
        assert_satisfiable_and_well_formed(&squaring("t", 6, 4, 3));
    }

    #[test]
    fn karatsuba_is_satisfiable() {
        assert_satisfiable_and_well_formed(&karatsuba("t", 6, 5, 4));
    }

    #[test]
    fn sorter_is_satisfiable() {
        assert_satisfiable_and_well_formed(&sorter("t", 3, 3, 4, 5));
    }

    #[test]
    fn login_like_is_satisfiable() {
        assert_satisfiable_and_well_formed(&login_like("t", 2, 5, 6));
    }

    #[test]
    fn long_chain_is_satisfiable() {
        assert_satisfiable_and_well_formed(&long_chain("t", 8, 20, 3, 7));
    }

    #[test]
    fn long_chain_support_dwarfs_sampling_set() {
        let benchmark = long_chain("t", 10, 50, 3, 8);
        assert!(
            benchmark.num_vars() > 20 * benchmark.sampling_set_size(),
            "|X| = {} should be ≫ |S| = {}",
            benchmark.num_vars(),
            benchmark.sampling_set_size()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = squaring("t", 6, 4, 99);
        let b = squaring("t", 6, 4, 99);
        assert_eq!(a.formula, b.formula);
        let c = squaring("t", 6, 4, 100);
        assert_ne!(a.formula, c.formula);
    }

    #[test]
    fn table_suites_have_distinct_names() {
        let suite = table2_suite();
        let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        assert!(suite.len() >= 15);
    }

    #[test]
    fn figure1_instance_is_exactly_countable_scale() {
        let benchmark = figure1_instance();
        assert!(benchmark.sampling_set_size() <= 16);
        assert_satisfiable_and_well_formed(&benchmark);
    }
}
