//! Tseitin encoding of circuits into CNF (+ xor clauses).
//!
//! Every circuit node is given one CNF variable; primary inputs are assigned
//! the **first** variables, so the sampling set recorded in the resulting
//! formula is exactly the set of primary inputs. Because every other variable
//! is functionally defined by the inputs, that set is an independent support
//! of the formula by construction — the situation the paper describes for
//! CNF obtained from CRV and BMC front ends ("the variables introduced by the
//! encoding form a dependent support").
//!
//! Gates are encoded with the standard Tseitin clauses; XOR/XNOR gates are
//! encoded as native xor clauses so that the solver's xor engine (and not a
//! clause blow-up) handles parity logic, mirroring how the paper's benchmarks
//! feed CryptoMiniSAT.

use unigen_cnf::{CnfFormula, Lit, Var, XorClause};

use crate::gate::{GateKind, NodeId};
use crate::netlist::{Circuit, Node};

/// The result of encoding a circuit: a growing formula plus the mapping from
/// circuit nodes to CNF variables.
///
/// After [`encode`] the formula contains only the gate-consistency clauses;
/// use the `assert_*` methods to constrain outputs (turning the circuit into
/// a constraint whose witnesses are the interesting input stimuli), then call
/// [`CircuitEncoding::into_formula`].
#[derive(Debug, Clone)]
pub struct CircuitEncoding {
    formula: CnfFormula,
    node_vars: Vec<Var>,
    num_inputs: usize,
}

/// Encodes a circuit into CNF with the Tseitin construction.
///
/// # Example
///
/// ```
/// use unigen_circuit::{tseitin, CircuitBuilder};
///
/// let mut b = CircuitBuilder::new("xor2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let circuit = b.finish();
///
/// let mut enc = tseitin::encode(&circuit);
/// enc.assert_node(z, true);
/// let formula = enc.into_formula();
/// // Two witnesses: x ≠ y.
/// assert_eq!(formula.enumerate_models_brute_force().len(), 2);
/// ```
pub fn encode(circuit: &Circuit) -> CircuitEncoding {
    let mut formula = CnfFormula::new(circuit.num_nodes());
    let mut node_vars = vec![Var::new(0); circuit.num_nodes()];

    // Assign variables: inputs first (variables 0..num_inputs), then the
    // remaining nodes in topological order.
    let mut next = 0usize;
    for &input in circuit.inputs() {
        node_vars[input.index()] = Var::new(next);
        next += 1;
    }
    let num_inputs = next;
    for (id, node) in circuit.iter() {
        if matches!(node, Node::Input { .. }) {
            continue;
        }
        node_vars[id.index()] = Var::new(next);
        next += 1;
    }
    debug_assert_eq!(next, circuit.num_nodes());

    formula
        .set_sampling_set((0..num_inputs).map(Var::new))
        .expect("input variables are within range");

    for (id, node) in circuit.iter() {
        let y = node_vars[id.index()];
        match node {
            Node::Input { .. } => {}
            Node::Const(value) => {
                formula
                    .add_clause([y.lit(*value)])
                    .expect("constant clause in range");
            }
            Node::Gate { kind, fanin } => {
                let fanin_vars: Vec<Var> = fanin.iter().map(|f| node_vars[f.index()]).collect();
                encode_gate(&mut formula, *kind, y, &fanin_vars);
            }
        }
    }

    CircuitEncoding {
        formula,
        node_vars,
        num_inputs,
    }
}

fn encode_gate(formula: &mut CnfFormula, kind: GateKind, y: Var, fanin: &[Var]) {
    let add = |formula: &mut CnfFormula, lits: Vec<Lit>| {
        formula.add_clause(lits).expect("gate clause in range");
    };
    match kind {
        GateKind::And | GateKind::Nand => {
            // y ↔ AND(fanin)   (for NAND, flip y's polarity).
            let y_lit = if kind == GateKind::And {
                y.positive()
            } else {
                y.negative()
            };
            for &a in fanin {
                add(formula, vec![!y_lit, a.positive()]);
            }
            let mut long: Vec<Lit> = fanin.iter().map(|&a| a.negative()).collect();
            long.push(y_lit);
            add(formula, long);
        }
        GateKind::Or | GateKind::Nor => {
            // y ↔ OR(fanin)   (for NOR, flip y's polarity).
            let y_lit = if kind == GateKind::Or {
                y.positive()
            } else {
                y.negative()
            };
            for &a in fanin {
                add(formula, vec![y_lit, a.negative()]);
            }
            let mut long: Vec<Lit> = fanin.iter().map(|&a| a.positive()).collect();
            long.push(!y_lit);
            add(formula, long);
        }
        GateKind::Xor | GateKind::Xnor => {
            // y ⊕ fanin… = 0 for XOR (y equals the parity), = 1 for XNOR.
            let mut vars = vec![y];
            vars.extend_from_slice(fanin);
            let rhs = kind == GateKind::Xnor;
            formula
                .add_xor_clause(XorClause::new(vars, rhs))
                .expect("gate xor in range");
        }
        GateKind::Not => {
            let a = fanin[0];
            add(formula, vec![y.negative(), a.negative()]);
            add(formula, vec![y.positive(), a.positive()]);
        }
        GateKind::Mux => {
            let (s, f, t) = (fanin[0], fanin[1], fanin[2]);
            // s = 1 ⇒ y = t
            add(formula, vec![s.negative(), t.negative(), y.positive()]);
            add(formula, vec![s.negative(), t.positive(), y.negative()]);
            // s = 0 ⇒ y = f
            add(formula, vec![s.positive(), f.negative(), y.positive()]);
            add(formula, vec![s.positive(), f.positive(), y.negative()]);
        }
    }
}

impl CircuitEncoding {
    /// Returns the CNF variable carrying the value of a circuit node.
    pub fn node_var(&self, id: NodeId) -> Var {
        self.node_vars[id.index()]
    }

    /// Returns the number of primary inputs (the size of the sampling set).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Constrains a node to a constant value.
    pub fn assert_node(&mut self, id: NodeId, value: bool) {
        let var = self.node_var(id);
        self.formula
            .add_clause([var.lit(value)])
            .expect("assertion clause in range");
    }

    /// Constrains two nodes to carry equal values.
    pub fn assert_equal(&mut self, a: NodeId, b: NodeId) {
        let (va, vb) = (self.node_var(a), self.node_var(b));
        self.formula
            .add_xor_clause(XorClause::new([va, vb], false))
            .expect("equality xor in range");
    }

    /// Adds a parity condition over a set of nodes: `⊕ nodes = rhs`.
    ///
    /// This is the "parity conditions on randomly chosen subsets of outputs"
    /// construction the paper applies to the ISCAS89 circuits.
    pub fn assert_parity<I>(&mut self, nodes: I, rhs: bool)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let vars: Vec<Var> = nodes.into_iter().map(|id| self.node_var(id)).collect();
        self.formula
            .add_xor_clause(XorClause::new(vars, rhs))
            .expect("parity xor in range");
    }

    /// Adds an arbitrary extra clause over circuit nodes, given as
    /// `(node, polarity)` pairs.
    pub fn assert_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = (NodeId, bool)>,
    {
        let lits: Vec<Lit> = lits
            .into_iter()
            .map(|(id, polarity)| self.node_var(id).lit(polarity))
            .collect();
        self.formula
            .add_clause(lits)
            .expect("constraint clause in range");
    }

    /// Finalises the encoding into a formula (sampling set = primary inputs).
    pub fn into_formula(self) -> CnfFormula {
        self.formula
    }

    /// Returns a reference to the formula built so far.
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use unigen_cnf::Model;

    /// Checks that the encoding is consistent with the simulator: for every
    /// input assignment, the (unique) extension to all Tseitin variables
    /// satisfies the formula, and the formula forces output variables to the
    /// simulated values.
    fn check_circuit(circuit: &Circuit) {
        let encoding = encode(circuit);
        let formula = encoding.formula().clone();
        let n_inputs = circuit.num_inputs();
        assert!(n_inputs <= 10, "test helper limited to 10 inputs");
        for mask in 0u64..(1 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| mask & (1 << i) != 0).collect();
            let sim = circuit.simulate(&inputs);
            // Build the model implied by the simulation.
            let mut values = vec![false; formula.num_vars()];
            for (id, _) in circuit.iter() {
                values[encoding.node_var(id).index()] = sim.value(id);
            }
            let model = Model::new(values);
            assert!(
                formula.evaluate(&model),
                "simulation of inputs {mask:b} does not satisfy the encoding"
            );
        }
    }

    #[test]
    fn encoding_matches_simulation_for_adder() {
        let mut b = CircuitBuilder::new("adder");
        let x = b.input_word("x", 3);
        let y = b.input_word("y", 3);
        let sum = b.add(&x, &y);
        b.output_word("sum", &sum);
        check_circuit(&b.finish());
    }

    #[test]
    fn encoding_matches_simulation_for_mux_tree() {
        let mut b = CircuitBuilder::new("mux_tree");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let d: Vec<_> = (0..4).map(|i| b.input(format!("d{i}"))).collect();
        let m0 = b.mux(s0, d[0], d[1]);
        let m1 = b.mux(s0, d[2], d[3]);
        let out = b.mux(s1, m0, m1);
        b.output("out", out);
        check_circuit(&b.finish());
    }

    #[test]
    fn encoding_matches_simulation_for_all_gate_kinds() {
        let mut b = CircuitBuilder::new("gates");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let g1 = b.nand(x, y);
        let g2 = b.nor(y, z);
        let g3 = b.xnor(g1, g2);
        let g4 = b.not(g3);
        let g5 = b.xor_many(&[x, y, z, g4]);
        let g6 = b.and_many(&[g1, g2, g5]);
        let g7 = b.or_many(&[g3, g6, x]);
        b.output("out", g7);
        check_circuit(&b.finish());
    }

    #[test]
    fn sampling_set_is_exactly_the_inputs() {
        let mut b = CircuitBuilder::new("s");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(x, y);
        b.output("g", g);
        let circuit = b.finish();
        let formula = encode(&circuit).into_formula();
        let set = formula.sampling_set().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set, &[Var::new(0), Var::new(1)]);
    }

    #[test]
    fn witness_count_matches_constrained_outputs() {
        // out = x AND y, constrained to 1 → exactly one witness.
        let mut b = CircuitBuilder::new("and_constraint");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(x, y);
        b.output("g", g);
        let circuit = b.finish();
        let mut enc = encode(&circuit);
        enc.assert_node(g, true);
        let formula = enc.into_formula();
        assert_eq!(formula.enumerate_models_brute_force().len(), 1);
    }

    #[test]
    fn parity_condition_halves_the_witness_count() {
        // Unconstrained 4-input circuit: every node forced by inputs, 16
        // witnesses. A parity condition over two internal signals roughly
        // halves that (exactly halves it here because the parity is a free
        // xor of inputs).
        let mut b = CircuitBuilder::new("parity");
        let inputs: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let g1 = b.xor(inputs[0], inputs[1]);
        let g2 = b.xor(inputs[2], inputs[3]);
        b.output("g1", g1);
        b.output("g2", g2);
        let circuit = b.finish();

        let unconstrained = encode(&circuit).into_formula();
        assert_eq!(unconstrained.enumerate_models_brute_force().len(), 16);

        let mut enc = encode(&circuit);
        enc.assert_parity([g1, g2], true);
        let constrained = enc.into_formula();
        assert_eq!(constrained.enumerate_models_brute_force().len(), 8);
    }

    #[test]
    fn assert_equal_links_two_nodes() {
        let mut b = CircuitBuilder::new("eq");
        let x = b.input("x");
        let y = b.input("y");
        let not_y = b.not(y);
        b.output("ny", not_y);
        let circuit = b.finish();
        let mut enc = encode(&circuit);
        enc.assert_equal(x, not_y);
        let formula = enc.into_formula();
        // Witnesses: x = ¬y, so 2 of the 4 input combinations.
        assert_eq!(formula.enumerate_models_brute_force().len(), 2);
    }

    #[test]
    fn assert_clause_adds_arbitrary_constraints() {
        let mut b = CircuitBuilder::new("clause");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.or(x, y);
        b.output("g", g);
        let circuit = b.finish();
        let mut enc = encode(&circuit);
        // Require ¬x ∨ ¬y (NAND) on top of the circuit definition.
        enc.assert_clause([(x, false), (y, false)]);
        let formula = enc.into_formula();
        assert_eq!(formula.enumerate_models_brute_force().len(), 3);
    }
}
