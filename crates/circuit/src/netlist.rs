//! Combinational netlists and their reference simulator.

use std::collections::HashMap;
use std::fmt;

use crate::gate::{GateKind, NodeId};

/// One node of a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A primary input with a human-readable name.
    Input {
        /// Name of the input signal.
        name: String,
    },
    /// A constant signal.
    Const(bool),
    /// A gate over previously created nodes.
    Gate {
        /// Logic function of the gate.
        kind: GateKind,
        /// Fan-in nodes (all created before this node, so the node order is
        /// a valid topological order).
        fanin: Vec<NodeId>,
    },
}

/// A combinational gate-level circuit.
///
/// Circuits are built through [`crate::CircuitBuilder`]; nodes are stored in
/// creation order, which is guaranteed to be a topological order because a
/// gate can only reference already-existing nodes. The struct carries named
/// outputs so benchmarks can constrain them symbolically.
///
/// # Example
///
/// ```
/// use unigen_circuit::CircuitBuilder;
///
/// let mut builder = CircuitBuilder::new("majority");
/// let a = builder.input("a");
/// let b = builder.input("b");
/// let c = builder.input("c");
/// let ab = builder.and(a, b);
/// let bc = builder.and(b, c);
/// let ca = builder.and(c, a);
/// let maj = builder.or_many(&[ab, bc, ca]);
/// builder.output("maj", maj);
/// let circuit = builder.finish();
///
/// assert_eq!(circuit.num_inputs(), 3);
/// assert!(circuit.simulate(&[true, true, false]).output("maj"));
/// assert!(!circuit.simulate(&[true, false, false]).output("maj"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Circuit {
    pub(crate) fn new(
        name: String,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<(String, NodeId)>,
    ) -> Self {
        Circuit {
            name,
            nodes,
            inputs,
            outputs,
        }
    }

    /// Returns the circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of nodes (inputs, constants and gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Returns the number of gates (nodes that are neither inputs nor
    /// constants).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Gate { .. }))
            .count()
    }

    /// Returns the primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Returns the named outputs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Returns the node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this circuit.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns an iterator over `(NodeId, &Node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Simulates the circuit on the given input values (aligned with
    /// [`Circuit::inputs`]).
    ///
    /// # Panics
    ///
    /// Panics if the number of input values differs from the number of
    /// primary inputs.
    pub fn simulate(&self, input_values: &[bool]) -> Simulation<'_> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            input_values.len()
        );
        let mut values = vec![false; self.nodes.len()];
        let input_map: HashMap<NodeId, bool> = self
            .inputs
            .iter()
            .copied()
            .zip(input_values.iter().copied())
            .collect();
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Input { .. } => input_map[&NodeId(i as u32)],
                Node::Const(b) => *b,
                Node::Gate { kind, fanin } => {
                    let fanin_values: Vec<bool> = fanin.iter().map(|f| values[f.index()]).collect();
                    kind.evaluate(&fanin_values)
                }
            };
        }
        Simulation {
            circuit: self,
            values,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit `{}`: {} inputs, {} gates, {} outputs",
            self.name,
            self.num_inputs(),
            self.num_gates(),
            self.outputs.len()
        )
    }
}

/// The value of every node after one [`Circuit::simulate`] call.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    circuit: &'a Circuit,
    values: Vec<bool>,
}

impl Simulation<'_> {
    /// Returns the value of an arbitrary node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Returns the value of a named output.
    ///
    /// # Panics
    ///
    /// Panics if no output with that name exists.
    pub fn output(&self, name: &str) -> bool {
        let (_, id) = self
            .circuit
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output named `{name}`"));
        self.values[id.index()]
    }

    /// Returns the values of all nodes in topological order.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn full_adder() -> Circuit {
        let mut b = CircuitBuilder::new("full_adder");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let s1 = b.xor(a, x);
        let sum = b.xor(s1, cin);
        let c1 = b.and(a, x);
        let c2 = b.and(s1, cin);
        let cout = b.or(c1, c2);
        b.output("sum", sum);
        b.output("cout", cout);
        b.finish()
    }

    #[test]
    fn full_adder_truth_table() {
        let circuit = full_adder();
        for mask in 0u32..8 {
            let a = mask & 1 != 0;
            let b = mask & 2 != 0;
            let cin = mask & 4 != 0;
            let sim = circuit.simulate(&[a, b, cin]);
            let expected = (a as u8) + (b as u8) + (cin as u8);
            assert_eq!(sim.output("sum"), expected & 1 == 1);
            assert_eq!(sim.output("cout"), expected >= 2);
        }
    }

    #[test]
    fn node_counts() {
        let circuit = full_adder();
        assert_eq!(circuit.num_inputs(), 3);
        assert_eq!(circuit.num_gates(), 5);
        assert_eq!(circuit.num_nodes(), 8);
        assert_eq!(circuit.outputs().len(), 2);
    }

    #[test]
    fn iteration_is_topological() {
        let circuit = full_adder();
        for (id, node) in circuit.iter() {
            if let Node::Gate { fanin, .. } = node {
                for f in fanin {
                    assert!(f.index() < id.index(), "fan-in must precede the gate");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_input_arity_panics() {
        let circuit = full_adder();
        let _ = circuit.simulate(&[true, false]);
    }

    #[test]
    #[should_panic]
    fn unknown_output_panics() {
        let circuit = full_adder();
        let _ = circuit.simulate(&[true, false, true]).output("nope");
    }

    #[test]
    fn display_summarises_structure() {
        let text = full_adder().to_string();
        assert!(text.contains("full_adder"));
        assert!(text.contains("3 inputs"));
    }
}
