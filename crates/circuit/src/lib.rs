//! Gate-level circuit substrate and CRV benchmark families.
//!
//! **Paper map:** stands in for the benchmark suite of Section 4
//! (evaluation) of *Balancing Scalability and Uniformity in SAT Witness
//! Generator* (DAC 2014) — bit-blasted BMC, ISCAS89-with-parity, bit-blasted
//! SMTLib and program-synthesis instances — and for the constrained-random
//! verification setting of Section 1, where the sampling set is the set of
//! primary inputs and is an independent support by construction.
//!
//! The paper evaluates UniGen on constraints that all originate from
//! hardware-flavoured sources: bit-blasted bounded-model-checking instances,
//! ISCAS89 circuits with parity conditions on randomly chosen outputs,
//! bit-blasted SMTLib arithmetic and program-synthesis constraints. Those
//! exact files are proprietary or unavailable, so this crate rebuilds the
//! *kind* of constraint they exercise:
//!
//! * [`Circuit`] — a combinational gate-level netlist (AND/OR/XOR/NOT/MUX/…)
//!   with named primary inputs and outputs and a cycle-free topological
//!   order, plus a reference simulator,
//! * [`CircuitBuilder`] and [`BitVector`] — a word-level construction API
//!   (ripple-carry adders, shift-add and Karatsuba multipliers, comparators,
//!   sorting networks) used to grow realistic arithmetic circuits,
//! * [`tseitin`] — the Tseitin encoder that turns a circuit plus output
//!   constraints into a [`unigen_cnf::CnfFormula`] whose **sampling set is
//!   the set of primary inputs** (by construction an independent support,
//!   exactly the situation the paper describes for CRV constraints),
//! * [`benchmarks`] — named instance families (`parity_chain`,
//!   `iscas_like`, `squaring`, `karatsuba`, `sorter`, `login_like`,
//!   `long_chain`) mirroring the rows of Tables 1 and 2.
//!
//! # Example
//!
//! ```
//! use unigen_circuit::{CircuitBuilder, tseitin};
//!
//! // z = (a AND b) XOR c, constrained to 1.
//! let mut builder = CircuitBuilder::new("demo");
//! let a = builder.input("a");
//! let b = builder.input("b");
//! let c = builder.input("c");
//! let ab = builder.and(a, b);
//! let z = builder.xor(ab, c);
//! builder.output("z", z);
//! let circuit = builder.finish();
//!
//! let mut encoding = tseitin::encode(&circuit);
//! encoding.assert_node(z, true);
//! let formula = encoding.into_formula();
//! assert_eq!(formula.sampling_set().unwrap().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod gate;
mod netlist;

pub mod benchmarks;
pub mod tseitin;

pub use builder::{BitVector, CircuitBuilder};
pub use gate::{GateKind, NodeId};
pub use netlist::{Circuit, Node};
