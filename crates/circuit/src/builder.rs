//! Word-level circuit construction.

use crate::gate::{GateKind, NodeId};
use crate::netlist::{Circuit, Node};

/// Incremental builder for [`Circuit`]s, with bit-level and word-level
/// operations.
///
/// The builder enforces the topological order of the netlist by construction:
/// every gate can only reference node identifiers that the builder has
/// already handed out.
///
/// # Example
///
/// ```
/// use unigen_circuit::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new("square");
/// let x = b.input_word("x", 4);
/// let square = b.multiply(&x, &x);
/// b.output_word("x2", &square);
/// let circuit = b.finish();
/// assert_eq!(circuit.num_inputs(), 4);
/// // 5² = 25
/// let sim = circuit.simulate(&[true, false, true, false]);
/// let value: u32 = circuit
///     .outputs()
///     .iter()
///     .enumerate()
///     .fold(0, |acc, (i, (_, id))| acc | ((sim.value(*id) as u32) << i));
/// assert_eq!(value, 25);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

/// A little-endian vector of circuit signals representing a machine word.
///
/// Bit 0 is the least-significant bit. Words are the unit the arithmetic
/// helpers of [`CircuitBuilder`] operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVector {
    bits: Vec<NodeId>,
}

impl BitVector {
    /// Wraps an explicit list of signals (least-significant bit first).
    pub fn new(bits: Vec<NodeId>) -> Self {
        BitVector { bits }
    }

    /// Returns the width of the word in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns the signals, least-significant bit first.
    pub fn bits(&self) -> &[NodeId] {
        &self.bits
    }

    /// Returns the signal of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> NodeId {
        self.bits[i]
    }
}

impl CircuitBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Returns the number of nodes created so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Creates a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Creates a word of `width` named primary inputs (`name[0]`,
    /// `name[1]`, …), least-significant bit first.
    pub fn input_word(&mut self, name: &str, width: usize) -> BitVector {
        BitVector::new(
            (0..width)
                .map(|i| self.input(format!("{name}[{i}]")))
                .collect(),
        )
    }

    /// Creates a constant signal.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Node::Const(value))
    }

    /// Creates a constant word of `width` bits holding `value`.
    pub fn constant_word(&mut self, value: u64, width: usize) -> BitVector {
        BitVector::new(
            (0..width)
                .map(|i| self.constant(value & (1 << i) != 0))
                .collect(),
        )
    }

    fn gate(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        assert!(
            kind.accepts_arity(fanin.len()),
            "{kind} gate does not accept {} operands",
            fanin.len()
        );
        for f in &fanin {
            assert!(
                f.index() < self.nodes.len(),
                "fan-in {f} does not exist yet"
            );
        }
        self.push(Node::Gate { kind, fanin })
    }

    /// Two-input AND gate.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::And, vec![a, b])
    }

    /// N-ary AND gate.
    pub fn and_many(&mut self, operands: &[NodeId]) -> NodeId {
        self.gate(GateKind::And, operands.to_vec())
    }

    /// Two-input OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Or, vec![a, b])
    }

    /// N-ary OR gate.
    pub fn or_many(&mut self, operands: &[NodeId]) -> NodeId {
        self.gate(GateKind::Or, operands.to_vec())
    }

    /// Two-input XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Xor, vec![a, b])
    }

    /// N-ary XOR (parity) gate.
    pub fn xor_many(&mut self, operands: &[NodeId]) -> NodeId {
        self.gate(GateKind::Xor, operands.to_vec())
    }

    /// Two-input NAND gate.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Nand, vec![a, b])
    }

    /// Two-input NOR gate.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Nor, vec![a, b])
    }

    /// Two-input XNOR (equivalence) gate.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Xnor, vec![a, b])
    }

    /// Inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.gate(GateKind::Not, vec![a])
    }

    /// Two-to-one multiplexer: `select ? if_true : if_false`.
    pub fn mux(&mut self, select: NodeId, if_false: NodeId, if_true: NodeId) -> NodeId {
        self.gate(GateKind::Mux, vec![select, if_false, if_true])
    }

    /// Declares a named single-bit output.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Declares a named word output (`name[0]`, `name[1]`, …).
    pub fn output_word(&mut self, name: &str, word: &BitVector) {
        for (i, &bit) in word.bits().iter().enumerate() {
            self.output(format!("{name}[{i}]"), bit);
        }
    }

    /// Finalises the builder into an immutable [`Circuit`].
    pub fn finish(self) -> Circuit {
        Circuit::new(self.name, self.nodes, self.inputs, self.outputs)
    }

    // ------------------------------------------------------------------
    // Word-level arithmetic
    // ------------------------------------------------------------------

    /// Ripple-carry addition of two equal-width words. Returns a word one bit
    /// wider than the operands (the extra bit is the carry out).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn add(&mut self, a: &BitVector, b: &BitVector) -> BitVector {
        assert_eq!(a.width(), b.width(), "addition requires equal widths");
        let mut carry = self.constant(false);
        let mut sum = Vec::with_capacity(a.width() + 1);
        for i in 0..a.width() {
            let (s, c) = self.full_adder(a.bit(i), b.bit(i), carry);
            sum.push(s);
            carry = c;
        }
        sum.push(carry);
        BitVector::new(sum)
    }

    /// A single full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let c1 = self.and(a, b);
        let c2 = self.and(axb, cin);
        let carry = self.or(c1, c2);
        (sum, carry)
    }

    /// Shift-and-add multiplication. Returns a word of width
    /// `a.width() + b.width()`.
    pub fn multiply(&mut self, a: &BitVector, b: &BitVector) -> BitVector {
        let out_width = a.width() + b.width();
        let mut accumulator = self.constant_word(0, out_width);
        for (shift, &b_bit) in b.bits().iter().enumerate() {
            // Partial product: (a << shift) AND b_bit, zero-extended.
            let mut partial = Vec::with_capacity(out_width);
            for i in 0..out_width {
                if i >= shift && i - shift < a.width() {
                    partial.push(self.and(a.bit(i - shift), b_bit));
                } else {
                    partial.push(self.constant(false));
                }
            }
            let partial = BitVector::new(partial);
            let wide = self.add(&accumulator, &partial);
            // Drop the final carry: the result cannot exceed out_width bits.
            accumulator = BitVector::new(wide.bits()[..out_width].to_vec());
        }
        accumulator
    }

    /// Karatsuba multiplication (recursive three-multiplication scheme),
    /// falling back to [`CircuitBuilder::multiply`] below 4 bits. Returns a
    /// word of width `2 * max(a.width(), b.width())`.
    pub fn karatsuba(&mut self, a: &BitVector, b: &BitVector) -> BitVector {
        let width = a.width().max(b.width());
        let a = self.zero_extend(a, width);
        let b = self.zero_extend(b, width);
        let product = self.karatsuba_rec(&a, &b);
        self.truncate_or_extend(&product, 2 * width)
    }

    fn karatsuba_rec(&mut self, a: &BitVector, b: &BitVector) -> BitVector {
        let width = a.width();
        debug_assert_eq!(width, b.width());
        if width < 4 {
            return self.multiply(a, b);
        }
        let half = width / 2;
        let a_lo = BitVector::new(a.bits()[..half].to_vec());
        let a_hi = BitVector::new(a.bits()[half..].to_vec());
        let b_lo = BitVector::new(b.bits()[..half].to_vec());
        let b_hi = BitVector::new(b.bits()[half..].to_vec());

        let lo = self.karatsuba_rec(&a_lo, &b_lo);
        let hi_width = a_hi.width();
        let a_hi_ext = self.zero_extend(&a_hi, hi_width);
        let b_hi_ext = self.zero_extend(&b_hi, hi_width);
        let hi = self.karatsuba_rec(&a_hi_ext, &b_hi_ext);

        // (a_lo + a_hi) and (b_lo + b_hi), both extended to a common width.
        let sum_width = half.max(hi_width) + 1;
        let a_lo_ext = self.zero_extend(&a_lo, sum_width);
        let a_hi_ext = self.zero_extend(&a_hi, sum_width);
        let b_lo_ext = self.zero_extend(&b_lo, sum_width);
        let b_hi_ext = self.zero_extend(&b_hi, sum_width);
        let a_sum_raw = self.add(&a_lo_ext, &a_hi_ext);
        let b_sum_raw = self.add(&b_lo_ext, &b_hi_ext);
        let a_sum = self.truncate_or_extend(&a_sum_raw, sum_width);
        let b_sum = self.truncate_or_extend(&b_sum_raw, sum_width);
        let middle_full = self.karatsuba_rec(&a_sum, &b_sum);

        // middle = middle_full - lo - hi  (computed via two's-complement
        // subtraction to keep everything purely combinational).
        let target = middle_full.width().max(lo.width()).max(hi.width()) + 1;
        let middle_full = self.truncate_or_extend(&middle_full, target);
        let lo_ext = self.truncate_or_extend(&lo, target);
        let hi_ext = self.truncate_or_extend(&hi, target);
        let tmp = self.subtract(&middle_full, &lo_ext);
        let middle = self.subtract(&tmp, &hi_ext);

        // result = lo + middle · 2^half + hi · 2^(2·half)
        let out_width = 2 * width;
        let lo_out = self.truncate_or_extend(&lo, out_width);
        let middle_shifted = self.shift_left(&middle, half, out_width);
        let hi_shifted = self.shift_left(&hi, 2 * half, out_width);
        let partial_raw = self.add(&lo_out, &middle_shifted);
        let partial = self.truncate_or_extend(&partial_raw, out_width);
        let total_raw = self.add(&partial, &hi_shifted);
        self.truncate_or_extend(&total_raw, out_width)
    }

    /// Two's-complement subtraction `a - b`, truncated to `a.width()` bits.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn subtract(&mut self, a: &BitVector, b: &BitVector) -> BitVector {
        assert_eq!(a.width(), b.width(), "subtraction requires equal widths");
        let not_b = BitVector::new(b.bits().iter().map(|&bit| self.not(bit)).collect());
        let mut carry = self.constant(true);
        let mut bits = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let (s, c) = self.full_adder(a.bit(i), not_b.bit(i), carry);
            bits.push(s);
            carry = c;
        }
        BitVector::new(bits)
    }

    /// Zero-extends (or returns unchanged) a word to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the word is wider than `width`.
    pub fn zero_extend(&mut self, word: &BitVector, width: usize) -> BitVector {
        assert!(
            word.width() <= width,
            "cannot zero-extend to a smaller width"
        );
        let mut bits = word.bits().to_vec();
        while bits.len() < width {
            bits.push(self.constant(false));
        }
        BitVector::new(bits)
    }

    /// Truncates or zero-extends a word to exactly `width` bits.
    pub fn truncate_or_extend(&mut self, word: &BitVector, width: usize) -> BitVector {
        if word.width() >= width {
            BitVector::new(word.bits()[..width].to_vec())
        } else {
            self.zero_extend(word, width)
        }
    }

    /// Logical left shift by a constant amount, producing a word of exactly
    /// `out_width` bits.
    pub fn shift_left(&mut self, word: &BitVector, amount: usize, out_width: usize) -> BitVector {
        let mut bits = Vec::with_capacity(out_width);
        for i in 0..out_width {
            if i >= amount && i - amount < word.width() {
                bits.push(word.bit(i - amount));
            } else {
                bits.push(self.constant(false));
            }
        }
        BitVector::new(bits)
    }

    /// Word equality comparator (`a == b`).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn equals(&mut self, a: &BitVector, b: &BitVector) -> NodeId {
        assert_eq!(a.width(), b.width(), "equality requires equal widths");
        let bit_eq: Vec<NodeId> = (0..a.width())
            .map(|i| self.xnor(a.bit(i), b.bit(i)))
            .collect();
        self.and_many(&bit_eq)
    }

    /// Unsigned less-than comparator (`a < b`).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn less_than(&mut self, a: &BitVector, b: &BitVector) -> NodeId {
        assert_eq!(a.width(), b.width(), "comparison requires equal widths");
        // Iterate from the most significant bit down, tracking "all higher
        // bits equal".
        let mut result = self.constant(false);
        let mut all_equal = self.constant(true);
        for i in (0..a.width()).rev() {
            let a_bit = a.bit(i);
            let b_bit = b.bit(i);
            let not_a = self.not(a_bit);
            let lt_here = self.and(not_a, b_bit);
            let contributes = self.and(all_equal, lt_here);
            result = self.or(result, contributes);
            let eq_here = self.xnor(a_bit, b_bit);
            all_equal = self.and(all_equal, eq_here);
        }
        result
    }

    /// Compare-and-swap of two words: returns `(min, max)`.
    pub fn compare_exchange(&mut self, a: &BitVector, b: &BitVector) -> (BitVector, BitVector) {
        let swap = self.less_than(b, a);
        let min = BitVector::new(
            (0..a.width())
                .map(|i| self.mux(swap, a.bit(i), b.bit(i)))
                .collect(),
        );
        let max = BitVector::new(
            (0..a.width())
                .map(|i| self.mux(swap, b.bit(i), a.bit(i)))
                .collect(),
        );
        (min, max)
    }

    /// Odd-even transposition sorting network over `words.len()` lanes.
    /// Returns the lanes in non-decreasing order.
    pub fn sorting_network(&mut self, words: &[BitVector]) -> Vec<BitVector> {
        let mut lanes: Vec<BitVector> = words.to_vec();
        let n = lanes.len();
        for round in 0..n {
            let start = round % 2;
            let mut i = start;
            while i + 1 < n {
                let (min, max) = self.compare_exchange(&lanes[i], &lanes[i + 1]);
                lanes[i] = min;
                lanes[i + 1] = max;
                i += 2;
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_value(
        circuit: &Circuit,
        sim: &crate::netlist::Simulation<'_>,
        word: &BitVector,
    ) -> u64 {
        let _ = circuit;
        word.bits()
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((sim.value(bit) as u64) << i))
    }

    fn input_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value & (1 << i) != 0).collect()
    }

    #[test]
    fn adder_matches_arithmetic() {
        let mut b = CircuitBuilder::new("add");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let sum = b.add(&x, &y);
        let circuit = b.finish();
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let mut inputs = input_bits(xv, 4);
                inputs.extend(input_bits(yv, 4));
                let sim = circuit.simulate(&inputs);
                assert_eq!(word_value(&circuit, &sim, &sum), xv + yv);
            }
        }
    }

    #[test]
    fn subtract_matches_wrapping_arithmetic() {
        let mut b = CircuitBuilder::new("sub");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let diff = b.subtract(&x, &y);
        let circuit = b.finish();
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let mut inputs = input_bits(xv, 4);
                inputs.extend(input_bits(yv, 4));
                let sim = circuit.simulate(&inputs);
                assert_eq!(
                    word_value(&circuit, &sim, &diff),
                    (xv.wrapping_sub(yv)) & 0xF
                );
            }
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let mut b = CircuitBuilder::new("mul");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let product = b.multiply(&x, &y);
        let circuit = b.finish();
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let mut inputs = input_bits(xv, 4);
                inputs.extend(input_bits(yv, 4));
                let sim = circuit.simulate(&inputs);
                assert_eq!(word_value(&circuit, &sim, &product), xv * yv);
            }
        }
    }

    #[test]
    fn karatsuba_matches_plain_multiplication() {
        let mut b = CircuitBuilder::new("karatsuba");
        let x = b.input_word("x", 6);
        let y = b.input_word("y", 6);
        let product = b.karatsuba(&x, &y);
        let circuit = b.finish();
        // Spot-check a grid of values (the full 4096-point product space is
        // covered by the coarser step to keep the test fast).
        for xv in (0..64u64).step_by(5) {
            for yv in (0..64u64).step_by(7) {
                let mut inputs = input_bits(xv, 6);
                inputs.extend(input_bits(yv, 6));
                let sim = circuit.simulate(&inputs);
                assert_eq!(
                    word_value(&circuit, &sim, &product),
                    xv * yv,
                    "karatsuba mismatch at {xv} * {yv}"
                );
            }
        }
    }

    #[test]
    fn comparators_match_integers() {
        let mut b = CircuitBuilder::new("cmp");
        let x = b.input_word("x", 3);
        let y = b.input_word("y", 3);
        let eq = b.equals(&x, &y);
        let lt = b.less_than(&x, &y);
        let circuit = b.finish();
        for xv in 0..8u64 {
            for yv in 0..8u64 {
                let mut inputs = input_bits(xv, 3);
                inputs.extend(input_bits(yv, 3));
                let sim = circuit.simulate(&inputs);
                assert_eq!(sim.value(eq), xv == yv);
                assert_eq!(sim.value(lt), xv < yv);
            }
        }
    }

    #[test]
    fn sorting_network_sorts() {
        let mut b = CircuitBuilder::new("sort");
        let words: Vec<BitVector> = (0..4).map(|i| b.input_word(&format!("w{i}"), 3)).collect();
        let sorted = b.sorting_network(&words);
        let circuit = b.finish();
        let cases = [[5u64, 1, 7, 3], [0, 0, 2, 1], [7, 6, 5, 4], [3, 3, 3, 3]];
        for case in cases {
            let mut inputs = Vec::new();
            for v in case {
                inputs.extend(input_bits(v, 3));
            }
            let sim = circuit.simulate(&inputs);
            let values: Vec<u64> = sorted
                .iter()
                .map(|w| word_value(&circuit, &sim, w))
                .collect();
            let mut expected = case.to_vec();
            expected.sort_unstable();
            assert_eq!(values, expected, "failed to sort {case:?}");
        }
    }

    #[test]
    fn constant_word_encodes_value() {
        let mut b = CircuitBuilder::new("const");
        let w = b.constant_word(0b1010, 4);
        let circuit = b.finish();
        let sim = circuit.simulate(&[]);
        assert_eq!(word_value(&circuit, &sim, &w), 0b1010);
    }

    #[test]
    #[should_panic]
    fn mismatched_widths_panic() {
        let mut b = CircuitBuilder::new("bad");
        let x = b.input_word("x", 3);
        let y = b.input_word("y", 4);
        let _ = b.add(&x, &y);
    }

    #[test]
    #[should_panic]
    fn foreign_node_id_panics() {
        let mut a = CircuitBuilder::new("a");
        let x = a.input("x");
        let y = a.input("y");
        let _ = a.and(x, y);
        let mut b = CircuitBuilder::new("b");
        // NodeId(1) does not exist in builder `b` yet.
        let z = b.input("z");
        let _ = b.and(z, y);
    }
}
