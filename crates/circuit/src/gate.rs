//! Gate kinds and node identifiers.

use std::fmt;

/// Identifier of a node (input, constant or gate) inside a [`crate::Circuit`].
///
/// Node identifiers are indices into the circuit's node table; they are only
/// meaningful for the circuit that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function computed by a gate.
///
/// `And`, `Or`, `Xor` and their negated forms accept an arbitrary fan-in of
/// at least one; `Not` takes exactly one operand and `Mux` exactly three
/// (`select`, `if_false`, `if_true`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Conjunction of all fan-in signals.
    And,
    /// Disjunction of all fan-in signals.
    Or,
    /// Parity of all fan-in signals.
    Xor,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Negated parity.
    Xnor,
    /// Negation of a single signal.
    Not,
    /// Two-to-one multiplexer: `fanin[0] ? fanin[2] : fanin[1]`.
    Mux,
}

impl GateKind {
    /// Evaluates the gate over its fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the gate's arity
    /// requirements (see the type-level documentation).
    pub fn evaluate(self, values: &[bool]) -> bool {
        match self {
            GateKind::And => {
                assert!(!values.is_empty(), "AND needs at least one operand");
                values.iter().all(|&v| v)
            }
            GateKind::Or => {
                assert!(!values.is_empty(), "OR needs at least one operand");
                values.iter().any(|&v| v)
            }
            GateKind::Xor => {
                assert!(!values.is_empty(), "XOR needs at least one operand");
                values.iter().fold(false, |acc, &v| acc ^ v)
            }
            GateKind::Nand => !GateKind::And.evaluate(values),
            GateKind::Nor => !GateKind::Or.evaluate(values),
            GateKind::Xnor => !GateKind::Xor.evaluate(values),
            GateKind::Not => {
                assert_eq!(values.len(), 1, "NOT takes exactly one operand");
                !values[0]
            }
            GateKind::Mux => {
                assert_eq!(values.len(), 3, "MUX takes exactly three operands");
                if values[0] {
                    values[2]
                } else {
                    values[1]
                }
            }
        }
    }

    /// Returns `true` if the kind accepts the given fan-in arity.
    pub fn accepts_arity(self, arity: usize) -> bool {
        match self {
            GateKind::Not => arity == 1,
            GateKind::Mux => arity == 3,
            _ => arity >= 1,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Xor => "XOR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Mux => "MUX",
        };
        write!(f, "{text}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_for_binary_gates() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(GateKind::And.evaluate(&[a, b]), a && b);
            assert_eq!(GateKind::Or.evaluate(&[a, b]), a || b);
            assert_eq!(GateKind::Xor.evaluate(&[a, b]), a ^ b);
            assert_eq!(GateKind::Nand.evaluate(&[a, b]), !(a && b));
            assert_eq!(GateKind::Nor.evaluate(&[a, b]), !(a || b));
            assert_eq!(GateKind::Xnor.evaluate(&[a, b]), !(a ^ b));
        }
    }

    #[test]
    fn not_and_mux() {
        assert!(GateKind::Not.evaluate(&[false]));
        assert!(!GateKind::Not.evaluate(&[true]));
        // MUX: select ? if_true : if_false
        assert!(!GateKind::Mux.evaluate(&[false, false, true]));
        assert!(GateKind::Mux.evaluate(&[true, false, true]));
    }

    #[test]
    fn wide_gates() {
        assert!(GateKind::And.evaluate(&[true; 5]));
        assert!(!GateKind::And.evaluate(&[true, true, false, true]));
        assert!(GateKind::Xor.evaluate(&[true, true, true]));
        assert!(!GateKind::Xor.evaluate(&[true, true, true, true]));
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Mux.accepts_arity(3));
        assert!(!GateKind::Mux.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(4));
        assert!(!GateKind::And.accepts_arity(0));
    }

    #[test]
    #[should_panic]
    fn empty_and_panics() {
        let _ = GateKind::And.evaluate(&[]);
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
