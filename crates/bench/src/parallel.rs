//! Thread-scaling throughput benchmark for the deterministic parallel batch
//! engine — the measurement behind `BENCH_parallel.json` and the CI
//! regression gate on it.
//!
//! For each instance the run prepares one `UniGen` sampler, then draws the
//! same batch (same `master_seed`) through the serial reference
//! (`WitnessSampler::sample_batch`), through the **service path** (a
//! persistent `SamplerService` with its work-stealing deque scheduler — the
//! production path behind `unigen_cli batch`, and what the CI gate
//! measures), and through the pre-service **static-chunk** scheduler
//! (`ParallelSampler::sample_batch_static_chunks`, recorded as an ablation
//! column) at each configured thread count. Every mode records samples/sec
//! and a fingerprint of the produced witness *sequence*; identical
//! fingerprints across all of them are the serial-equivalence half of the
//! gate — the engine's whole point is that scheduling changes throughput
//! and nothing else.

use std::time::Instant;

use unigen::{
    ParallelSampler, SampleOutcome, SampleRequest, SamplerService, ServiceConfig, UniGen,
    UniGenConfig, WitnessSampler,
};
use unigen_circuit::benchmarks::{self, Benchmark};
use unigen_cnf::Var;

/// Parameters of a thread-scaling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelBenchConfig {
    /// Samples drawn per instance per mode.
    pub samples: usize,
    /// Worker counts measured (the serial reference is measured separately).
    pub thread_counts: Vec<usize>,
    /// Master seed of every batch (the whole run is deterministic).
    pub master_seed: u64,
}

impl Default for ParallelBenchConfig {
    fn default() -> Self {
        ParallelBenchConfig {
            samples: 48,
            thread_counts: vec![1, 2, 4, 8],
            master_seed: 0xdac2014,
        }
    }
}

/// One timed batch: a thread count, its throughput, and the witness-sequence
/// fingerprint used for the serial-equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used (`0` denotes the serial reference).
    pub threads: usize,
    /// Wall-clock seconds for the whole batch (service path: submit to
    /// response, through the work-stealing deque scheduler).
    pub seconds: f64,
    /// Samples per second (attempted samples, successful or not) through the
    /// service path.
    pub samples_per_sec: f64,
    /// Samples that produced a witness.
    pub successes: usize,
    /// Order-sensitive fingerprint of the witness sequence produced by the
    /// service path.
    pub fingerprint: u64,
    /// Ablation column: samples/sec through the pre-service static-chunk
    /// scheduler at the same thread count (`None` for the serial reference
    /// point, which has no scheduler).
    pub static_samples_per_sec: Option<f64>,
    /// Fingerprint of the static-chunk run (`None` for the serial point);
    /// part of the serial-equivalence check.
    pub static_fingerprint: Option<u64>,
}

/// One instance's serial-vs-parallel throughput comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelComparison {
    /// Benchmark instance name.
    pub name: String,
    /// Number of CNF variables.
    pub num_vars: usize,
    /// Sampling-set size.
    pub sampling_set_size: usize,
    /// One-off preparation time (amortised over every batch).
    pub prep_seconds: f64,
    /// The serial reference measurement.
    pub serial: ThroughputPoint,
    /// One measurement per configured thread count.
    pub points: Vec<ThroughputPoint>,
}

impl ParallelComparison {
    /// `true` when every thread count — through both the service scheduler
    /// and the static-chunk ablation — reproduced the serial witness
    /// sequence bit for bit.
    pub fn deterministic(&self) -> bool {
        self.points.iter().all(|p| {
            p.fingerprint == self.serial.fingerprint
                && p.successes == self.serial.successes
                && p.static_fingerprint
                    .map_or(true, |f| f == self.serial.fingerprint)
        })
    }

    /// Throughput at `threads` workers divided by serial throughput.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        let point = self.points.iter().find(|p| p.threads == threads)?;
        if self.serial.samples_per_sec > 0.0 {
            Some(point.samples_per_sec / self.serial.samples_per_sec)
        } else {
            None
        }
    }

    /// The measurement at the largest configured thread count.
    pub fn at_max_threads(&self) -> &ThroughputPoint {
        self.points
            .iter()
            .max_by_key(|p| p.threads)
            .unwrap_or(&self.serial)
    }
}

/// The full report emitted as `BENCH_parallel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// The run parameters.
    pub config: ParallelBenchConfig,
    /// CPUs the measuring host exposed (thread scaling flattens at this
    /// value; the committed baseline records it so regressions are compared
    /// like for like).
    pub host_cpus: usize,
    /// Per-instance comparisons.
    pub instances: Vec<ParallelComparison>,
}

impl ParallelReport {
    /// Geometric mean over instances of samples/sec at the largest thread
    /// count — the number the CI gate tracks.
    pub fn geomean_samples_per_sec_at_max(&self) -> f64 {
        geomean(
            self.instances
                .iter()
                .map(|i| i.at_max_threads().samples_per_sec),
        )
    }

    /// Geometric mean over instances of the speedup at `threads` workers.
    pub fn geomean_speedup_at(&self, threads: usize) -> f64 {
        geomean(self.instances.iter().filter_map(|i| i.speedup_at(threads)))
    }

    /// Geometric mean over instances of *parallel efficiency* at the largest
    /// thread count: samples/sec through the pool divided by the same run's
    /// serial samples/sec.
    ///
    /// This is the number the CI gate compares against the committed
    /// baseline. Normalising by a same-host, same-run serial measurement
    /// makes the gate track regressions in the pool itself (partitioning,
    /// cloning, scheduling overhead) rather than raw-CPU-speed differences
    /// between the machine that recorded the baseline and the machine
    /// running CI. The ratio still depends on the *core count* (a multicore
    /// host records real speedup, a single-core host records pure overhead),
    /// which is why the baseline stores `host_cpus` and the gate only
    /// compares numerically when the core counts match — absolute
    /// samples/sec is recorded per point for visibility.
    pub fn geomean_parallel_efficiency_at_max(&self) -> f64 {
        let max = self.max_threads();
        geomean(self.instances.iter().filter_map(|i| i.speedup_at(max)))
    }

    /// Ablation: the same parallel-efficiency geomean computed for the
    /// pre-service **static-chunk** scheduler at the largest thread count.
    /// Comparing this against
    /// [`ParallelReport::geomean_parallel_efficiency_at_max`] isolates what
    /// the work-stealing deque scheduler costs (pure overhead on a uniform
    /// workload) or buys (absorbed skew on a retry-heavy one).
    pub fn geomean_static_efficiency_at_max(&self) -> f64 {
        let max = self.max_threads();
        geomean(self.instances.iter().filter_map(|i| {
            let point = i.points.iter().find(|p| p.threads == max)?;
            let static_rate = point.static_samples_per_sec?;
            (i.serial.samples_per_sec > 0.0).then(|| static_rate / i.serial.samples_per_sec)
        }))
    }

    /// `true` when every instance passed the serial-equivalence check.
    pub fn deterministic(&self) -> bool {
        self.instances.iter().all(|i| i.deterministic())
    }

    /// The largest configured thread count.
    pub fn max_threads(&self) -> usize {
        self.config.thread_counts.iter().copied().max().unwrap_or(1)
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values
        .filter(|v| *v > 0.0 && v.is_finite())
        .fold((0.0f64, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).exp()
}

/// Order-sensitive fingerprint of a batch's witness sequence: each position
/// contributes a hash of its index and its witness's **projection onto the
/// sampling set** (`⊥` outcomes contribute the index alone), xor-folded so
/// the check is cheap and the JSON stays one number per point.
///
/// The projection is what the determinism contract guarantees (distinctness,
/// uniformity and the Theorem 1 envelope are all defined on the sampling
/// set); hashing the full model would make the gate fire spuriously on any
/// future instance whose sampling set under-determines the auxiliary
/// variables, where the completion legitimately varies with worker count.
pub fn fingerprint_batch(outcomes: &[SampleOutcome], sampling_set: &[Var]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut acc = 0u64;
    for (index, outcome) in outcomes.iter().enumerate() {
        let mut hasher = DefaultHasher::new();
        index.hash(&mut hasher);
        if let Some(witness) = &outcome.witness {
            witness.project(sampling_set).values().hash(&mut hasher);
        }
        acc ^= hasher.finish();
    }
    acc
}

fn measure_batch(
    outcomes: Vec<SampleOutcome>,
    sampling_set: &[Var],
    threads: usize,
    seconds: f64,
) -> ThroughputPoint {
    let samples = outcomes.len().max(1);
    ThroughputPoint {
        threads,
        seconds,
        samples_per_sec: samples as f64 / seconds.max(1e-9),
        successes: outcomes.iter().filter(|o| o.is_success()).count(),
        fingerprint: fingerprint_batch(&outcomes, sampling_set),
        static_samples_per_sec: None,
        static_fingerprint: None,
    }
}

/// Runs the serial-vs-parallel comparison on one instance: the serial
/// reference, then at each thread count the service path (persistent
/// work-stealing pool; the gate number) and the static-chunk scheduler (the
/// ablation column).
pub fn measure_parallel_comparison(
    benchmark: &Benchmark,
    config: &ParallelBenchConfig,
) -> ParallelComparison {
    let sampler_config = UniGenConfig::default().with_seed(config.master_seed);
    let sampling_set = benchmark.formula.sampling_set_or_all();
    let prep_start = Instant::now();
    let prepared = UniGen::new(&benchmark.formula, sampler_config)
        .expect("benchmark instances are satisfiable and well-formed");
    let prep_seconds = prep_start.elapsed().as_secs_f64();

    // Serial reference: the trait's per-index-stream loop on one clone.
    let started = Instant::now();
    let outcomes = prepared
        .clone()
        .sample_batch(config.samples, config.master_seed);
    let serial = measure_batch(outcomes, &sampling_set, 0, started.elapsed().as_secs_f64());

    let pool = ParallelSampler::new(prepared.clone());
    let points = config
        .thread_counts
        .iter()
        .map(|&threads| {
            // Service path. The pool is persistent in production, so its
            // construction (thread spawn + one prototype clone per worker)
            // stays outside the timed region; the timed region is one
            // request's submit-to-response round trip.
            let service = SamplerService::new(
                prepared.clone(),
                ServiceConfig::default().with_workers(threads),
            );
            let started = Instant::now();
            let response = service
                .submit(SampleRequest::new(config.samples, config.master_seed))
                .wait();
            let mut point = measure_batch(
                response.outcomes,
                &sampling_set,
                threads,
                started.elapsed().as_secs_f64(),
            );
            drop(service);

            // Ablation: the pre-service static-chunk scheduler on the same
            // batch (per-call thread scope, no stealing).
            let pool = pool.clone().with_jobs(threads);
            let started = Instant::now();
            let outcomes = pool.sample_batch_static_chunks(config.samples, config.master_seed);
            let seconds = started.elapsed().as_secs_f64();
            point.static_samples_per_sec = Some(outcomes.len().max(1) as f64 / seconds.max(1e-9));
            point.static_fingerprint = Some(fingerprint_batch(&outcomes, &sampling_set));
            point
        })
        .collect();

    ParallelComparison {
        name: benchmark.name.clone(),
        num_vars: benchmark.num_vars(),
        sampling_set_size: benchmark.sampling_set_size(),
        prep_seconds,
        serial,
        points,
    }
}

/// Runs the comparison over a suite.
pub fn run_parallel_bench(suite: &[Benchmark], config: &ParallelBenchConfig) -> ParallelReport {
    ParallelReport {
        config: config.clone(),
        host_cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        instances: suite
            .iter()
            .map(|b| measure_parallel_comparison(b, config))
            .collect(),
    }
}

/// The instances used for the committed throughput baseline: hashed-mode
/// UniGen workloads (so every sample pays for real hashing + enumeration
/// work) spanning the structurally distinct families, sized so the whole
/// run finishes in seconds.
pub fn parallel_bench_suite() -> Vec<Benchmark> {
    vec![
        benchmarks::parity_chain("case121-like", 16, 4, 4, 0x0121),
        benchmarks::iscas_like("s526-like", 14, 180, 4, 0x0526),
        benchmarks::squaring("squaring10-like", 10, 2, 0x0a10),
        benchmarks::login_like("login3x6-like", 3, 6, 0x1061),
    ]
    .into_iter()
    .chain(crate::corpus::parallel_corpus_rows())
    .collect()
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn json_point(point: &ThroughputPoint) -> String {
    let static_column = match point.static_samples_per_sec {
        Some(rate) => json_number(rate),
        None => "null".to_string(),
    };
    format!(
        "{{\"threads\": {}, \"seconds\": {}, \"samples_per_sec\": {}, \"successes\": {}, \"fingerprint\": {}, \"static_samples_per_sec\": {}}}",
        point.threads,
        json_number(point.seconds),
        json_number(point.samples_per_sec),
        point.successes,
        point.fingerprint,
        static_column
    )
}

/// Renders the report as the machine-readable `BENCH_parallel.json` document
/// (hand-rolled JSON; instance names are plain ASCII).
pub fn render_parallel_json(report: &ParallelReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"parallel_batch_throughput\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"samples\": {}, \"thread_counts\": [{}], \"master_seed\": {}}},\n",
        report.config.samples,
        report
            .config
            .thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        report.config.master_seed
    ));
    out.push_str(&format!("  \"host_cpus\": {},\n", report.host_cpus));
    out.push_str(&format!(
        "  \"deterministic\": {},\n",
        report.deterministic()
    ));
    out.push_str(&format!(
        "  \"geomean_samples_per_sec_at_max_threads\": {},\n",
        json_number(report.geomean_samples_per_sec_at_max())
    ));
    out.push_str(&format!(
        "  \"geomean_parallel_efficiency_at_max_threads\": {},\n",
        json_number(report.geomean_parallel_efficiency_at_max())
    ));
    out.push_str(&format!(
        "  \"geomean_static_chunk_efficiency_at_max_threads\": {},\n",
        json_number(report.geomean_static_efficiency_at_max())
    ));
    out.push_str(&format!(
        "  \"geomean_speedup_at_4_threads\": {},\n",
        json_number(report.geomean_speedup_at(4))
    ));
    out.push_str("  \"instances\": [\n");
    for (i, instance) in report.instances.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"num_vars\": {}, \"sampling_set\": {}, \"prep_seconds\": {}, \"deterministic\": {},\n",
            instance.name,
            instance.num_vars,
            instance.sampling_set_size,
            json_number(instance.prep_seconds),
            instance.deterministic()
        ));
        out.push_str(&format!(
            "     \"serial\": {},\n",
            json_point(&instance.serial)
        ));
        out.push_str("     \"points\": [");
        for (j, point) in instance.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_point(point));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < report.instances.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts one of the top-level numbers from a previously written
/// `BENCH_parallel.json`. Hand-rolled to match the hand-rolled writer; the
/// workspace deliberately has no JSON dependency.
fn parse_baseline_number(json: &str, key: &str) -> Option<f64> {
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the committed `geomean_parallel_efficiency_at_max_threads` — the
/// machine-portable baseline the CI gate compares a fresh run against.
pub fn parse_baseline_efficiency(json: &str) -> Option<f64> {
    parse_baseline_number(json, "\"geomean_parallel_efficiency_at_max_threads\":")
}

/// Extracts the committed `geomean_samples_per_sec_at_max_threads`
/// (informational: absolute throughput on the host that recorded the
/// baseline, whose CPU count is in `host_cpus`).
pub fn parse_baseline_throughput(json: &str) -> Option<f64> {
    parse_baseline_number(json, "\"geomean_samples_per_sec_at_max_threads\":")
}

/// Extracts the committed `host_cpus` — the CPU count of the machine that
/// recorded the baseline. Parallel efficiency is only comparable between
/// hosts with the same core count (a multicore baseline records real
/// speedup a single-core CI runner can never reach), so the gate compares
/// numerically only when this matches the measuring host.
pub fn parse_baseline_host_cpus(json: &str) -> Option<usize> {
    parse_baseline_number(json, "\"host_cpus\":").map(|v| v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ParallelBenchConfig {
        ParallelBenchConfig {
            samples: 6,
            thread_counts: vec![1, 2],
            master_seed: 11,
        }
    }

    #[test]
    fn comparison_is_deterministic_across_thread_counts() {
        let benchmark = benchmarks::parity_chain("par-smoke", 8, 2, 2, 3);
        let comparison = measure_parallel_comparison(&benchmark, &tiny_config());
        assert!(comparison.deterministic(), "{comparison:?}");
        assert_eq!(comparison.points.len(), 2);
        assert!(comparison.serial.samples_per_sec > 0.0);
        // Both schedulers were measured at every thread count, and the
        // static-chunk ablation matched the serial sequence too.
        for point in &comparison.points {
            assert!(point.static_samples_per_sec.unwrap() > 0.0);
            assert_eq!(
                point.static_fingerprint,
                Some(comparison.serial.fingerprint)
            );
        }
        assert!(comparison.serial.static_samples_per_sec.is_none());
    }

    #[test]
    fn report_json_round_trips_the_gate_number() {
        let benchmark = benchmarks::parity_chain("par-json", 8, 2, 2, 4);
        let report = run_parallel_bench(std::slice::from_ref(&benchmark), &tiny_config());
        let json = render_parallel_json(&report);
        assert!(json.contains("\"parallel_batch_throughput\""));
        assert!(json.contains("\"par-json\""));
        assert!(json.contains("\"deterministic\": true"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        let gate = parse_baseline_efficiency(&json).expect("gate number parses back");
        assert!((gate - report.geomean_parallel_efficiency_at_max()).abs() < 1e-3);
        let throughput = parse_baseline_throughput(&json).expect("absolute number parses back");
        assert!((throughput - report.geomean_samples_per_sec_at_max()).abs() < 1e-3);
        // The ablation column made it into the document, and the gate key
        // is not a substring of it (the hand-rolled parser matches keys by
        // substring search).
        assert!(json.contains("\"geomean_static_chunk_efficiency_at_max_threads\""));
        assert!(json.contains("\"static_samples_per_sec\""));
        assert!(report.geomean_static_efficiency_at_max() > 0.0);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_projects() {
        use unigen_cnf::Model;
        let sampling = [Var::new(0), Var::new(1)];
        let a = SampleOutcome::of_witness(Model::new(vec![true, false, false]), Default::default());
        let b = SampleOutcome::of_witness(Model::new(vec![false, true, false]), Default::default());
        assert_ne!(
            fingerprint_batch(&[a.clone(), b.clone()], &sampling),
            fingerprint_batch(&[b.clone(), a.clone()], &sampling)
        );
        // A differing *non-sampling* variable must not change the
        // fingerprint: the contract covers the projection only.
        let a_other_completion =
            SampleOutcome::of_witness(Model::new(vec![true, false, true]), Default::default());
        assert_eq!(
            fingerprint_batch(std::slice::from_ref(&a), &sampling),
            fingerprint_batch(&[a_other_completion], &sampling)
        );
    }

    #[test]
    fn baseline_parsing_is_robust() {
        assert_eq!(
            parse_baseline_throughput("{\"geomean_samples_per_sec_at_max_threads\": 123.5,\n"),
            Some(123.5)
        );
        assert_eq!(
            parse_baseline_efficiency("{\"geomean_parallel_efficiency_at_max_threads\": 0.953,\n"),
            Some(0.953)
        );
        assert_eq!(parse_baseline_host_cpus("\"host_cpus\": 8,\n"), Some(8));
        assert_eq!(parse_baseline_throughput("{}"), None);
        assert_eq!(parse_baseline_efficiency("{}"), None);
        assert_eq!(parse_baseline_host_cpus("{}"), None);
    }

    #[test]
    fn geomean_ignores_non_positive_values() {
        assert_eq!(geomean([].into_iter()), 0.0);
        let g = geomean([2.0, 8.0].into_iter());
        assert!((g - 4.0).abs() < 1e-9);
        let g = geomean([4.0, 0.0, f64::INFINITY].into_iter());
        assert!((g - 4.0).abs() < 1e-9);
    }
}
