//! Benchmark rows drawn from the adversarial generator corpus
//! (`unigen-instgen`): one representative instance per family, at fixed
//! seeds, sized for each suite's workload. The golden-corpus pinning test
//! in `unigen-instgen` guarantees these rows are bit-identical across PRs
//! and hosts.

use unigen_circuit::benchmarks::{Benchmark, Family};
use unigen_cnf::Var;
use unigen_instgen::{InstanceGenerator, ScaleFreeConfig, SgenConfig, TriangleFreeConfig};

fn row(generator: &dyn InstanceGenerator, family: Family, seed: u64) -> Benchmark {
    Benchmark {
        name: format!("{}-s{seed}", generator.name()),
        formula: generator.generate(seed),
        family,
    }
}

/// Corpus rows for the incremental-vs-scratch BSAT comparison: sized so a
/// hash cell costs a measurable fraction of a millisecond, and including
/// the hard-unsat lane (every cell is a refutation — the regime where a
/// persistent solver's retained knowledge matters most).
pub fn incremental_corpus_rows() -> Vec<Benchmark> {
    // Satisfiable below-threshold scale-free instance, projected onto its
    // 20 heaviest (power-law head) variables: the sampling set keeps the
    // operating-width scan bounded while every cell enumerates through the
    // full 120-variable formula.
    let mut scale_free = row(
        &ScaleFreeConfig {
            num_vars: 120,
            num_clauses: 300,
            clause_len: 3,
            exponent_quarters: 2,
        },
        Family::ScaleFree,
        1,
    );
    scale_free
        .formula
        .set_sampling_set((0..20).map(Var::new))
        .expect("sampling set within range");
    scale_free.name.push_str("-p20");
    vec![
        scale_free,
        row(
            &TriangleFreeConfig {
                csp_vars: 16,
                domain: 3,
                edges: 20,
                forbidden_per_edge: 3,
            },
            Family::TriangleFree,
            3,
        ),
        row(
            &SgenConfig {
                blocks: 8,
                unsat: true,
            },
            Family::SgenBlock,
            3,
        ),
    ]
}

/// Corpus rows for the thread-scaling throughput benchmark: satisfiable by
/// construction or by pinned seed (UniGen preparation must succeed) and
/// with witness counts that keep UniGen in hashed mode, so every sample
/// exercises a real hash-and-enumerate pipeline on the workers.
pub fn parallel_corpus_rows() -> Vec<Benchmark> {
    vec![
        row(
            &ScaleFreeConfig {
                num_vars: 16,
                num_clauses: 40,
                clause_len: 3,
                exponent_quarters: 3,
            },
            Family::ScaleFree,
            2,
        ),
        row(
            &TriangleFreeConfig {
                csp_vars: 7,
                domain: 3,
                edges: 7,
                forbidden_per_edge: 3,
            },
            Family::TriangleFree,
            0,
        ),
        row(
            &SgenConfig {
                blocks: 3,
                unsat: false,
            },
            Family::SgenBlock,
            1,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen::{PreparedMode, UniGen, UniGenConfig};

    #[test]
    fn parallel_rows_prepare_in_hashed_mode() {
        for bench in parallel_corpus_rows() {
            let prepared = UniGen::new(&bench.formula, UniGenConfig::default())
                .unwrap_or_else(|e| panic!("{}: UniGen preparation failed: {e:?}", bench.name));
            assert!(
                matches!(prepared.prepared_mode(), PreparedMode::Hashed { .. }),
                "{}: expected hashed mode, got {:?}",
                bench.name,
                prepared.prepared_mode()
            );
        }
    }

    #[test]
    fn incremental_rows_cover_all_three_families() {
        let rows = incremental_corpus_rows();
        assert_eq!(rows.len(), 3);
        let families: Vec<_> = rows.iter().map(|b| b.family).collect();
        assert!(families.contains(&Family::ScaleFree));
        assert!(families.contains(&Family::TriangleFree));
        assert!(families.contains(&Family::SgenBlock));
        // The sgen lane must really be the hard-unsat variant.
        let sgen = rows
            .iter()
            .find(|b| b.family == Family::SgenBlock)
            .expect("sgen row");
        let mut solver = unigen_satsolver::Solver::from_formula(&sgen.formula);
        assert!(
            matches!(solver.solve(), unigen_satsolver::SolveResult::Unsat),
            "the incremental sgen row must be unsatisfiable"
        );
    }
}
