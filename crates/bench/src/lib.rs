//! Benchmark harness for regenerating the paper's tables and figure.
//!
//! The binaries in this crate print laptop-scale versions of the paper's
//! evaluation artefacts:
//!
//! * `table1` — runtime/success/xor-length comparison of UniGen vs UniWit
//!   over one representative instance per family (Table 1),
//! * `table2` — the extended comparison (Table 2 in the appendix),
//! * `figure1` — the count-of-counts uniformity comparison of UniGen against
//!   the ideal sampler US (Figure 1), plus summary distances,
//!
//! while the Criterion benches under `benches/` time the individual steps
//! (per-sample cost, ApproxMC, and the two ablations discussed in
//! EXPERIMENTS.md). The [`harness`] module holds the shared measurement and
//! formatting code, and the [`parallel`] module the thread-scaling
//! throughput benchmark behind `BENCH_parallel.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod harness;
pub mod parallel;
